//! Dynamic clustering strategies (§3.2).
//!
//! A [`MergePolicy`] is consulted by the online
//! [`ClusterEngine`](crate::cluster::ClusterEngine) exactly at the point §2.3
//! identifies as "the point of intersection of the two algorithms": when an
//! event turns out to be a *cluster receive*, the policy decides whether the
//! receiver's and sender's clusters merge (making the event an ordinary,
//! projectable event) or stay apart (leaving the event a full-width cluster
//! receive).
//!
//! Implementations may only look at events once and can never un-merge — the
//! constraints §1.2 places on dynamic clustering.

mod merge_first;
mod merge_nth;

pub use merge_first::MergeOnFirst;
pub use merge_nth::MergeOnNth;

use crate::cluster::membership::ClusterSets;

/// Decides whether two clusters merge when a cluster receive occurs between
/// them.
pub trait MergePolicy {
    /// A cluster receive occurred on a process of the cluster rooted at
    /// `receiver_root`, from a process of the cluster rooted at
    /// `sender_root`. Return `true` to merge the two clusters.
    ///
    /// Implementations are responsible for enforcing their own maximum
    /// cluster size; the engine merges unconditionally when `true` is
    /// returned.
    fn on_cluster_receive(
        &mut self,
        receiver_root: u32,
        sender_root: u32,
        sets: &ClusterSets,
    ) -> bool;

    /// Called after the engine performs a merge, so policies with per-pair
    /// bookkeeping can fold state from the two old roots into the new root.
    fn after_merge(&mut self, old_root_a: u32, old_root_b: u32, new_root: u32) {
        let _ = (old_root_a, old_root_b, new_root);
    }
}

/// Never merge: every process stays a singleton cluster and every
/// cross-process receive is a cluster receive. Control case; with a fixed
/// encoding this collapses to (almost) Fidge/Mattern behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverMerge;

impl MergePolicy for NeverMerge {
    fn on_cluster_receive(&mut self, _r: u32, _s: u32, _sets: &ClusterSets) -> bool {
        false
    }
}

/// The policy behind the static two-pass mode: clusters are pre-determined
/// ([`ClusterSets::from_partition`]) and never change, so every cluster
/// receive is non-mergeable by definition (§3.2's "the static clustering
/// algorithm might be used … two passes over the event data").
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticClusters;

impl MergePolicy for StaticClusters {
    fn on_cluster_receive(&mut self, _r: u32, _s: u32, _sets: &ClusterSets) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_merge_always_declines() {
        let sets = ClusterSets::singletons(4);
        let mut p = NeverMerge;
        assert!(!p.on_cluster_receive(0, 1, &sets));
        let mut s = StaticClusters;
        assert!(!s.on_cluster_receive(2, 3, &sets));
    }
}
