//! Dynamic clustering strategies (§3.2).
//!
//! A [`MergePolicy`] is consulted by the online
//! [`ClusterEngine`](crate::cluster::ClusterEngine) exactly at the point §2.3
//! identifies as "the point of intersection of the two algorithms": when an
//! event turns out to be a *cluster receive*, the policy decides whether the
//! receiver's and sender's clusters merge (making the event an ordinary,
//! projectable event) or stay apart (leaving the event a full-width cluster
//! receive).
//!
//! Implementations may only look at events once and can never un-merge — the
//! constraints §1.2 places on dynamic clustering.

mod merge_first;
mod merge_nth;

pub use merge_first::MergeOnFirst;
pub use merge_nth::MergeOnNth;

use crate::cluster::adaptive::{AdaptiveEngine, AdaptiveParams};
use crate::cluster::membership::ClusterSets;
use crate::cluster::{ClusterEngine, ClusterTimestamps};
use cts_model::Trace;

/// Decides whether two clusters merge when a cluster receive occurs between
/// them.
pub trait MergePolicy {
    /// A cluster receive occurred on a process of the cluster rooted at
    /// `receiver_root`, from a process of the cluster rooted at
    /// `sender_root`. Return `true` to merge the two clusters.
    ///
    /// Implementations are responsible for enforcing their own maximum
    /// cluster size; the engine merges unconditionally when `true` is
    /// returned.
    fn on_cluster_receive(
        &mut self,
        receiver_root: u32,
        sender_root: u32,
        sets: &ClusterSets,
    ) -> bool;

    /// Called after the engine performs a merge, so policies with per-pair
    /// bookkeeping can fold state from the two old roots into the new root.
    fn after_merge(&mut self, old_root_a: u32, old_root_b: u32, new_root: u32) {
        let _ = (old_root_a, old_root_b, new_root);
    }
}

/// Never merge: every process stays a singleton cluster and every
/// cross-process receive is a cluster receive. Control case; with a fixed
/// encoding this collapses to (almost) Fidge/Mattern behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverMerge;

impl MergePolicy for NeverMerge {
    fn on_cluster_receive(&mut self, _r: u32, _s: u32, _sets: &ClusterSets) -> bool {
        false
    }
}

/// The policy behind the static two-pass mode: clusters are pre-determined
/// ([`ClusterSets::from_partition`]) and never change, so every cluster
/// receive is non-mergeable by definition (§3.2's "the static clustering
/// algorithm might be used … two passes over the event data").
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticClusters;

impl MergePolicy for StaticClusters {
    fn on_cluster_receive(&mut self, _r: u32, _s: u32, _sets: &ClusterSets) -> bool {
        false
    }
}

/// A dynamic strategy selected by text, e.g. on a command line: the grammar
/// is `<name>:<maxCS>` with `merge1st`, `mergeNth` (optional `@τ` threshold
/// suffix on the size, default τ=5), `never` (whose `:<maxCS>` only
/// sizes the encoding — clusters stay singletons), and `adaptive`
/// (optional `@τ` merge threshold and `/m` migrate-after suffixes, e.g.
/// `adaptive:8@0.5/3` — merge-on-Nth plus drift-triggered migration). This
/// is what `cts-loadgen --replay-as` parses to re-cluster a replayed
/// interval under a strategy other than the one that served it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StrategySpec {
    MergeOnFirst { max_cs: usize },
    MergeOnNth { max_cs: usize, threshold: f64 },
    NeverMerge { max_cs: usize },
    Adaptive { params: AdaptiveParams },
}

impl StrategySpec {
    /// Short label for reports, mirroring the analysis crate's naming.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::MergeOnFirst { max_cs } => format!("merge-1st:{max_cs}"),
            StrategySpec::MergeOnNth { max_cs, threshold } => {
                format!("merge-nth-t{threshold}:{max_cs}")
            }
            StrategySpec::NeverMerge { max_cs } => format!("never-merge:{max_cs}"),
            StrategySpec::Adaptive { params } => format!(
                "adaptive-t{}-m{}:{}",
                params.merge_threshold, params.migrate_after, params.max_cluster_size
            ),
        }
    }

    /// The maximum cluster size the spec names (used to size the encoding).
    pub fn max_cluster_size(&self) -> usize {
        match *self {
            StrategySpec::MergeOnFirst { max_cs }
            | StrategySpec::MergeOnNth { max_cs, .. }
            | StrategySpec::NeverMerge { max_cs } => max_cs,
            StrategySpec::Adaptive { params } => params.max_cluster_size,
        }
    }

    /// Timestamp a complete trace under this strategy.
    pub fn run(&self, trace: &Trace) -> ClusterTimestamps {
        match *self {
            StrategySpec::MergeOnFirst { max_cs } => {
                ClusterEngine::run(trace, MergeOnFirst::new(max_cs))
            }
            StrategySpec::MergeOnNth { max_cs, threshold } => ClusterEngine::run(
                trace,
                MergeOnNth::new(trace.num_processes(), max_cs, threshold),
            ),
            StrategySpec::NeverMerge { .. } => ClusterEngine::run(trace, NeverMerge),
            StrategySpec::Adaptive { params } => AdaptiveEngine::run(trace, params),
        }
    }
}

impl std::str::FromStr for StrategySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<StrategySpec, String> {
        let (name, size) = match s.split_once(':') {
            Some((name, size)) => (name, Some(size)),
            None => (s, None),
        };
        let parse_size = |text: &str| -> Result<usize, String> {
            match text.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!(
                    "bad max cluster size {text:?} in strategy spec {s:?}"
                )),
            }
        };
        match name {
            "merge1st" | "merge-1st" => {
                let size = size.ok_or_else(|| format!("{s:?}: merge1st needs :<maxCS>"))?;
                Ok(StrategySpec::MergeOnFirst {
                    max_cs: parse_size(size)?,
                })
            }
            "mergeNth" | "merge-nth" => {
                let size = size.ok_or_else(|| format!("{s:?}: mergeNth needs :<maxCS>[@tau]"))?;
                let (size, threshold) = match size.split_once('@') {
                    Some((size, tau)) => {
                        let tau: f64 = tau
                            .parse()
                            .map_err(|_| format!("bad threshold {tau:?} in strategy spec {s:?}"))?;
                        if tau.is_nan() || tau < 0.0 {
                            return Err(format!("threshold must be non-negative in {s:?}"));
                        }
                        (size, tau)
                    }
                    None => (size, 5.0),
                };
                Ok(StrategySpec::MergeOnNth {
                    max_cs: parse_size(size)?,
                    threshold,
                })
            }
            "never" | "never-merge" => Ok(StrategySpec::NeverMerge {
                max_cs: match size {
                    Some(size) => parse_size(size)?,
                    None => 1,
                },
            }),
            "adaptive" => {
                let size =
                    size.ok_or_else(|| format!("{s:?}: adaptive needs :<maxCS>[@tau][/m]"))?;
                let (size, migrate_after) = match size.split_once('/') {
                    Some((size, m)) => {
                        let m: u32 = m.parse().ok().filter(|&m| m >= 1).ok_or_else(|| {
                            format!("bad migrate-after {m:?} in strategy spec {s:?}")
                        })?;
                        (size, m)
                    }
                    None => (size, AdaptiveParams::new(1).migrate_after),
                };
                let (size, threshold) = match size.split_once('@') {
                    Some((size, tau)) => {
                        let tau: f64 = tau
                            .parse()
                            .map_err(|_| format!("bad threshold {tau:?} in strategy spec {s:?}"))?;
                        if tau.is_nan() || tau < 0.0 {
                            return Err(format!("threshold must be non-negative in {s:?}"));
                        }
                        (size, tau)
                    }
                    None => (size, AdaptiveParams::new(1).merge_threshold),
                };
                let mut params = AdaptiveParams::new(parse_size(size)?);
                params.merge_threshold = threshold;
                params.migrate_after = migrate_after;
                Ok(StrategySpec::Adaptive { params })
            }
            other => Err(format!(
                "unknown strategy {other:?} (expected merge1st, mergeNth, never, or adaptive)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_merge_always_declines() {
        let sets = ClusterSets::singletons(4);
        let mut p = NeverMerge;
        assert!(!p.on_cluster_receive(0, 1, &sets));
        let mut s = StaticClusters;
        assert!(!s.on_cluster_receive(2, 3, &sets));
    }

    #[test]
    fn strategy_spec_grammar() {
        assert_eq!(
            "merge1st:4".parse::<StrategySpec>(),
            Ok(StrategySpec::MergeOnFirst { max_cs: 4 })
        );
        assert_eq!(
            "mergeNth:8@10".parse::<StrategySpec>(),
            Ok(StrategySpec::MergeOnNth {
                max_cs: 8,
                threshold: 10.0
            })
        );
        assert_eq!(
            "mergeNth:8".parse::<StrategySpec>(),
            Ok(StrategySpec::MergeOnNth {
                max_cs: 8,
                threshold: 5.0
            })
        );
        assert_eq!(
            "never".parse::<StrategySpec>(),
            Ok(StrategySpec::NeverMerge { max_cs: 1 })
        );
        assert_eq!(
            "never:2".parse::<StrategySpec>(),
            Ok(StrategySpec::NeverMerge { max_cs: 2 })
        );
        assert!("merge1st".parse::<StrategySpec>().is_err());
        assert!("merge1st:0".parse::<StrategySpec>().is_err());
        assert!("mergeNth:4@-1".parse::<StrategySpec>().is_err());
        assert!("kmedoid:4".parse::<StrategySpec>().is_err());
        let defaults = AdaptiveParams::new(8);
        assert_eq!(
            "adaptive:8".parse::<StrategySpec>(),
            Ok(StrategySpec::Adaptive { params: defaults })
        );
        assert_eq!(
            "adaptive:8@0.25/5".parse::<StrategySpec>(),
            Ok(StrategySpec::Adaptive {
                params: AdaptiveParams {
                    merge_threshold: 0.25,
                    migrate_after: 5,
                    ..defaults
                }
            })
        );
        assert!("adaptive".parse::<StrategySpec>().is_err());
        assert!("adaptive:8/0".parse::<StrategySpec>().is_err());
        assert!("adaptive:8@-1".parse::<StrategySpec>().is_err());
    }

    #[test]
    fn strategy_spec_runs_every_variant() {
        use cts_model::{Event, EventId, EventIndex, EventKind, ProcessId};
        let id = |p: u32, i: u32| EventId::new(ProcessId(p), EventIndex(i));
        let trace = Trace::from_delivery_order(
            "spec",
            2,
            vec![
                Event::new(id(0, 1), EventKind::Send { to: ProcessId(1) }),
                Event::new(id(1, 1), EventKind::Receive { from: id(0, 1) }),
            ],
        )
        .expect("valid delivery order");
        for spec in ["merge1st:2", "mergeNth:2@0", "never", "adaptive:2"] {
            let spec: StrategySpec = spec.parse().expect("valid spec");
            let cts = spec.run(&trace);
            assert_eq!(cts.stamps().len(), 2, "{}", spec.label());
        }
    }
}
