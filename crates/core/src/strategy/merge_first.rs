//! Merge-on-1st-communication: the original Ward/Taylor dynamic strategy.

use super::MergePolicy;
use crate::cluster::membership::ClusterSets;

/// Merge the two clusters on the **first** cluster receive between them,
/// whenever the merged size fits within `max_cluster_size`.
///
/// This is the only dynamic strategy evaluated prior to this paper. It can
/// produce excellent space reduction, but only if `max_cluster_size` happens
/// to suit the computation — the sensitivity the paper's Figure 4 exhibits
/// and its §3.2 criticizes.
#[derive(Clone, Copy, Debug)]
pub struct MergeOnFirst {
    max_cluster_size: usize,
}

impl MergeOnFirst {
    /// Strategy with the given maximum cluster size.
    pub fn new(max_cluster_size: usize) -> MergeOnFirst {
        assert!(max_cluster_size >= 1, "cluster size must be positive");
        MergeOnFirst { max_cluster_size }
    }

    /// The configured maximum cluster size.
    pub fn max_cluster_size(&self) -> usize {
        self.max_cluster_size
    }
}

impl MergePolicy for MergeOnFirst {
    fn on_cluster_receive(
        &mut self,
        receiver_root: u32,
        sender_root: u32,
        sets: &ClusterSets,
    ) -> bool {
        sets.size_of_root(receiver_root) + sets.size_of_root(sender_root) <= self.max_cluster_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::ProcessId;

    #[test]
    fn merges_while_size_allows() {
        let mut sets = ClusterSets::singletons(4);
        let mut pol = MergeOnFirst::new(2);
        assert!(pol.on_cluster_receive(0, 1, &sets));
        let (ra, rb) = (sets.find(ProcessId(0)), sets.find(ProcessId(1)));
        sets.merge(ra, rb);
        // {0,1} + {2} = 3 > 2: refused.
        let r01 = sets.find(ProcessId(0));
        let r2 = sets.find(ProcessId(2));
        assert!(!pol.on_cluster_receive(r01, r2, &sets));
        // {2} + {3} still fits.
        let r3 = sets.find(ProcessId(3));
        assert!(pol.on_cluster_receive(r2, r3, &sets));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        MergeOnFirst::new(0);
    }
}
