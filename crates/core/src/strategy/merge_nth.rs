//! Merge-on-Nth-communication: the paper's new dynamic strategy (§3.2).
//!
//! A matrix tracks the number of cluster receives observed so far between
//! every pair of current clusters. On each cluster receive the count is
//! incremented and normalized by the combined size of the two clusters (the
//! same normalization as the static algorithm); the clusters merge when the
//! normalized count **exceeds** the threshold. With a threshold of 0 the
//! strategy degenerates to merge-on-1st-communication.

use super::MergePolicy;
use crate::cluster::membership::ClusterSets;

/// Merge two clusters once their normalized cluster-receive count passes a
/// threshold, subject to a maximum merged size.
#[derive(Clone, Debug)]
pub struct MergeOnNth {
    max_cluster_size: usize,
    threshold: f64,
    /// Symmetric cluster-receive counts between clusters, indexed by
    /// union-find root: `counts[ra * n + rb]`. Folded on merge.
    counts: Vec<u64>,
    n: usize,
}

impl MergeOnNth {
    /// Strategy with a maximum merged cluster size and a normalized
    /// cluster-receive threshold (the paper evaluates thresholds 5 and 10).
    pub fn new(num_processes: u32, max_cluster_size: usize, threshold: f64) -> MergeOnNth {
        assert!(max_cluster_size >= 1, "cluster size must be positive");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        let n = num_processes as usize;
        MergeOnNth {
            max_cluster_size,
            threshold,
            counts: vec![0; n * n],
            n,
        }
    }

    /// The configured maximum cluster size.
    pub fn max_cluster_size(&self) -> usize {
        self.max_cluster_size
    }

    /// The configured normalized threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Accumulated cluster-receive count between two current roots.
    pub fn pair_count(&self, ra: u32, rb: u32) -> u64 {
        self.counts[ra as usize * self.n + rb as usize]
    }
}

impl MergePolicy for MergeOnNth {
    fn on_cluster_receive(
        &mut self,
        receiver_root: u32,
        sender_root: u32,
        sets: &ClusterSets,
    ) -> bool {
        let (ra, rb) = (receiver_root as usize, sender_root as usize);
        self.counts[ra * self.n + rb] += 1;
        self.counts[rb * self.n + ra] = self.counts[ra * self.n + rb];
        let combined = sets.size_of_root(receiver_root) + sets.size_of_root(sender_root);
        if combined > self.max_cluster_size {
            return false;
        }
        let normalized = self.counts[ra * self.n + rb] as f64 / combined as f64;
        normalized > self.threshold
    }

    fn after_merge(&mut self, old_root_a: u32, old_root_b: u32, new_root: u32) {
        // Fold the dead root's row/column into the surviving root so future
        // normalized counts see the union's history.
        let dead = if new_root == old_root_a {
            old_root_b
        } else {
            old_root_a
        } as usize;
        let live = new_root as usize;
        debug_assert_ne!(dead, live);
        for x in 0..self.n {
            if x == live || x == dead {
                continue;
            }
            let c = self.counts[dead * self.n + x];
            self.counts[live * self.n + x] += c;
            self.counts[x * self.n + live] = self.counts[live * self.n + x];
            self.counts[dead * self.n + x] = 0;
            self.counts[x * self.n + dead] = 0;
        }
        self.counts[live * self.n + dead] = 0;
        self.counts[dead * self.n + live] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::ProcessId;

    #[test]
    fn threshold_zero_degenerates_to_merge_on_first() {
        let sets = ClusterSets::singletons(3);
        let mut pol = MergeOnNth::new(3, 2, 0.0);
        // First CR: count 1, normalized 0.5 > 0 → merge immediately.
        assert!(pol.on_cluster_receive(0, 1, &sets));
    }

    #[test]
    fn merges_only_after_enough_communication() {
        let sets = ClusterSets::singletons(2);
        // Threshold 1.0 with two singletons: need count/2 > 1, i.e. count 3.
        let mut pol = MergeOnNth::new(2, 2, 1.0);
        assert!(!pol.on_cluster_receive(0, 1, &sets));
        assert!(!pol.on_cluster_receive(0, 1, &sets));
        assert!(pol.on_cluster_receive(0, 1, &sets));
        assert_eq!(pol.pair_count(0, 1), 3);
    }

    #[test]
    fn size_limit_blocks_merge_but_still_counts() {
        let mut sets = ClusterSets::singletons(3);
        let (ra, rb) = (sets.find(ProcessId(0)), sets.find(ProcessId(1)));
        let (new_root, _) = sets.merge(ra, rb);
        let mut pol = MergeOnNth::new(3, 2, 0.0);
        let r2 = sets.find(ProcessId(2));
        assert!(!pol.on_cluster_receive(new_root, r2, &sets));
        assert_eq!(pol.pair_count(new_root, r2), 1);
    }

    #[test]
    fn after_merge_folds_counts() {
        let sets = ClusterSets::singletons(4);
        let mut pol = MergeOnNth::new(4, 4, 100.0); // never merges by itself
        pol.on_cluster_receive(0, 2, &sets);
        pol.on_cluster_receive(1, 2, &sets);
        pol.on_cluster_receive(1, 2, &sets);
        // Suppose the engine merged 0 and 1 into root 0.
        pol.after_merge(0, 1, 0);
        assert_eq!(pol.pair_count(0, 2), 3);
        assert_eq!(pol.pair_count(1, 2), 0);
        // Symmetry maintained.
        assert_eq!(pol.pair_count(2, 0), 3);
    }
}
