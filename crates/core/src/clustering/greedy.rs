//! The paper's static clustering algorithm (Figure 3): greedy pairwise
//! merging by **normalized** communication count.
//!
//! Starting from singletons, repeatedly merge the pair of clusters with the
//! highest `communication(ci, cj) / (|ci| + |cj|)` whose merged size does not
//! exceed `max_cs`, until no mergeable pair communicates at all. Synchronous
//! communications were already counted twice when the [`CommMatrix`] was
//! built, as §3.1 requires.
//!
//! The loop body re-scans all pairs, giving the O(N³) bound the paper quotes
//! ("since this is a static algorithm, this performance is acceptable").
//! Ties are broken toward the first pair in (i, j) order, making the result
//! deterministic.

use super::Clustering;
use cts_model::{comm::CommMatrix, ProcessId};

/// One merge step taken by the greedy algorithm, for inspection and tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GreedyStep {
    /// Slots (initial process ids of the cluster representatives) merged.
    pub left: u32,
    pub right: u32,
    /// The normalized communication count that won this round.
    pub normalized_count: f64,
}

/// The full merge history of one greedy run.
pub type GreedyTrace = Vec<GreedyStep>;

struct GreedyState {
    /// Member lists; `None` once merged away.
    clusters: Vec<Option<Vec<ProcessId>>>,
    /// Symmetric inter-cluster communication counts over slots.
    counts: Vec<u64>,
    n: usize,
}

impl GreedyState {
    fn new(m: &CommMatrix) -> GreedyState {
        let n = m.num_processes();
        let mut counts = vec![0u64; n * n];
        for p in 0..n {
            for q in (p + 1)..n {
                let c = m.count(ProcessId(p as u32), ProcessId(q as u32));
                counts[p * n + q] = c;
                counts[q * n + p] = c;
            }
        }
        GreedyState {
            clusters: (0..n).map(|p| Some(vec![ProcessId(p as u32)])).collect(),
            counts,
            n,
        }
    }

    #[inline]
    fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.n + j]
    }

    fn size(&self, i: usize) -> usize {
        self.clusters[i].as_ref().map(Vec::len).unwrap_or(0)
    }

    /// Merge slot `j` into slot `i`, folding communication counts.
    fn merge(&mut self, i: usize, j: usize) {
        let moved = self.clusters[j].take().expect("merge of dead slot");
        self.clusters[i]
            .as_mut()
            .expect("merge into dead slot")
            .extend(moved);
        for x in 0..self.n {
            if x == i || x == j {
                continue;
            }
            let c = self.count(j, x);
            self.counts[i * self.n + x] += c;
            self.counts[x * self.n + i] += c;
            self.counts[j * self.n + x] = 0;
            self.counts[x * self.n + j] = 0;
        }
        self.counts[i * self.n + j] = 0;
        self.counts[j * self.n + i] = 0;
    }

    fn into_clustering(self) -> Clustering {
        let mut groups: Vec<Vec<ProcessId>> = self.clusters.into_iter().flatten().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        Clustering::new(groups).expect("greedy state is a partition")
    }
}

fn run(m: &CommMatrix, max_cs: usize, normalize: bool) -> (Clustering, GreedyTrace) {
    assert!(max_cs >= 1, "max cluster size must be positive");
    let mut st = GreedyState::new(m);
    let mut log = GreedyTrace::new();
    loop {
        // Lines 2–14 of Figure 3: scan all pairs for the best normalized
        // communication count.
        let mut cr_max = 0.0f64;
        let mut best: Option<(usize, usize)> = None;
        for i in 0..st.n {
            if st.clusters[i].is_none() {
                continue;
            }
            for j in (i + 1)..st.n {
                if st.clusters[j].is_none() {
                    continue;
                }
                let combined = st.size(i) + st.size(j);
                if combined > max_cs {
                    continue; // line 7
                }
                let cr_ij = st.count(i, j);
                let cr = if normalize {
                    cr_ij as f64 / combined as f64 // line 10
                } else {
                    cr_ij as f64
                };
                if cr > cr_max {
                    cr_max = cr;
                    best = Some((i, j));
                }
            }
        }
        match best {
            Some((i, j)) => {
                log.push(GreedyStep {
                    left: i as u32,
                    right: j as u32,
                    normalized_count: cr_max,
                });
                st.merge(i, j); // lines 15–18
            }
            None => break, // line 19: CRMax == 0
        }
    }
    (st.into_clustering(), log)
}

/// Figure 3 of the paper: greedy pairwise clustering with normalized
/// communication counts, bounded by `max_cs`.
pub fn greedy_pairwise(m: &CommMatrix, max_cs: usize) -> Clustering {
    run(m, max_cs, true).0
}

/// Ablation variant: select the pair with the greatest **raw** pairwise
/// communication ("a naive approach… probably a poor choice", §3.1). Large
/// clusters attract more raw communication purely by size, so this tends to
/// grow one cluster greedily.
pub fn greedy_pairwise_unnormalized(m: &CommMatrix, max_cs: usize) -> Clustering {
    run(m, max_cs, false).0
}

/// As [`greedy_pairwise`], additionally returning the merge history.
pub fn greedy_pairwise_with_trace(m: &CommMatrix, max_cs: usize) -> (Clustering, GreedyTrace) {
    run(m, max_cs, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Two tight pairs (0,1) and (2,3) with a weak link between them.
    fn two_pairs() -> CommMatrix {
        let mut m = CommMatrix::zero(4);
        m.add(p(0), p(1), 10);
        m.add(p(2), p(3), 8);
        m.add(p(1), p(2), 1);
        m
    }

    #[test]
    fn merges_tight_pairs_first() {
        let (c, log) = greedy_pairwise_with_trace(&two_pairs(), 4);
        // First merge is (0,1): 10/2 = 5 beats 8/2 = 4 and 1/2.
        assert_eq!((log[0].left, log[0].right), (0, 1));
        assert!((log[0].normalized_count - 5.0).abs() < 1e-12);
        assert_eq!((log[1].left, log[1].right), (2, 3));
        // Finally the weak link joins everything (1/4 > 0).
        assert_eq!(log.len(), 3);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn max_size_is_respected() {
        let c = greedy_pairwise(&two_pairs(), 2);
        assert_eq!(c.max_cluster_size(), 2);
        // (0,1) and (2,3) merged; the weak link cannot (size 4 > 2).
        assert_eq!(c.num_clusters(), 2);
        c.validate(4).unwrap();
    }

    #[test]
    fn non_communicating_processes_stay_singleton() {
        let mut m = CommMatrix::zero(3);
        m.add(p(0), p(1), 5);
        let c = greedy_pairwise(&m, 3);
        assert_eq!(c.num_clusters(), 2);
        let a = c.assignment(3);
        assert_eq!(a[0], a[1]);
        assert_ne!(a[0], a[2]);
    }

    #[test]
    fn normalization_prefers_dense_small_pairs() {
        // Cluster growth trap: chain where raw counts would glue everything
        // to one hub.
        let mut m = CommMatrix::zero(5);
        m.add(p(0), p(1), 6); // hub edge
        m.add(p(0), p(2), 6); // hub edge
        m.add(p(3), p(4), 5); // tight small pair
        let (_, log) = greedy_pairwise_with_trace(&m, 3);
        // Normalized: 6/2=3 vs 5/2=2.5, hub edge first; then {0,1}+{2} is
        // 6/3=2 vs {3,4} 5/2=2.5 — the small pair wins round 2.
        assert_eq!((log[1].left, log[1].right), (3, 4));
    }

    #[test]
    fn unnormalized_differs_when_size_bias_matters() {
        let mut m = CommMatrix::zero(4);
        m.add(p(0), p(1), 4);
        m.add(p(2), p(3), 3);
        m.add(p(1), p(2), 5);
        // Raw: first merge (1,2) with 5. Normalized: also 5/2 — same first
        // pick; but afterwards raw picks {1,2}+{0} (4) over... construct a
        // proper divergence:
        let norm = greedy_pairwise(&m, 2);
        let raw = greedy_pairwise_unnormalized(&m, 2);
        // With max 2, both must pick (1,2) then stop (others blocked):
        assert_eq!(norm.assignment(4), raw.assignment(4));
        // Divergence at max 4:
        let mut m2 = CommMatrix::zero(4);
        m2.add(p(0), p(1), 10);
        m2.add(p(2), p(3), 9);
        m2.add(p(0), p(2), 12);
        let (_, nlog) = greedy_pairwise_with_trace(&m2, 2);
        assert_eq!((nlog[0].left, nlog[0].right), (0, 2)); // 12/2 wins
    }

    #[test]
    fn result_is_always_a_partition() {
        let mut m = CommMatrix::zero(10);
        for i in 0..9u32 {
            m.add(p(i), p(i + 1), (i as u64 % 3) + 1);
        }
        for max_cs in 1..=10 {
            let c = greedy_pairwise(&m, max_cs);
            c.validate(10).unwrap();
            assert!(c.max_cluster_size() <= max_cs.max(1));
        }
    }
}
