//! Offline (static) clustering algorithms over a trace's communication
//! structure (§3.1 of the paper).
//!
//! A [`Clustering`] is a partition of the process set. The paper's static
//! algorithm is [`greedy_pairwise`]; [`contiguous`] is the fixed-contiguous
//! baseline of the earlier Ward/Taylor evaluations, and [`kmedoid`] is the
//! approach §3.1 considered and rejected (kept here for the ablation
//! experiments that demonstrate *why* it was rejected).

mod greedy;
mod kmed;

pub use greedy::{
    greedy_pairwise, greedy_pairwise_unnormalized, greedy_pairwise_with_trace, GreedyStep,
    GreedyTrace,
};
pub use kmed::kmedoid;

/// Free-function form of [`Clustering::contiguous`], convenient as a
/// clusterer callback.
pub fn contiguous_of(n: u32, max_cs: usize) -> Clustering {
    Clustering::contiguous(n, max_cs)
}

use cts_model::ProcessId;
use std::fmt;

/// Errors from [`Clustering::new`] / [`Clustering::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusteringError {
    /// A process appears in two clusters (or twice in one).
    Duplicate(ProcessId),
    /// A process id is out of range for the declared process count.
    OutOfRange(ProcessId),
    /// Some process in `0..n` appears in no cluster.
    Missing(ProcessId),
    /// A cluster has no members.
    EmptyCluster,
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::Duplicate(p) => write!(f, "process {p} in two clusters"),
            ClusteringError::OutOfRange(p) => write!(f, "process {p} out of range"),
            ClusteringError::Missing(p) => write!(f, "process {p} missing from partition"),
            ClusteringError::EmptyCluster => write!(f, "empty cluster"),
        }
    }
}

impl std::error::Error for ClusteringError {}

/// A partition of the process set into clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Vec<ProcessId>>,
}

impl Clustering {
    /// Build from explicit member lists; rejects empty clusters and duplicate
    /// processes (full partition coverage is checked by
    /// [`validate`](Self::validate), which needs `n`).
    pub fn new(clusters: Vec<Vec<ProcessId>>) -> Result<Clustering, ClusteringError> {
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            if c.is_empty() {
                return Err(ClusteringError::EmptyCluster);
            }
            for &m in c {
                if !seen.insert(m) {
                    return Err(ClusteringError::Duplicate(m));
                }
            }
        }
        Ok(Clustering { clusters })
    }

    /// Validate that this is a partition of exactly `0..n`.
    pub fn validate(&self, n: u32) -> Result<(), ClusteringError> {
        let mut seen = vec![false; n as usize];
        for c in &self.clusters {
            for &m in c {
                if m.0 >= n {
                    return Err(ClusteringError::OutOfRange(m));
                }
                if seen[m.idx()] {
                    return Err(ClusteringError::Duplicate(m));
                }
                seen[m.idx()] = true;
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(ClusteringError::Missing(ProcessId(i as u32)));
        }
        Ok(())
    }

    /// The member lists.
    pub fn clusters(&self) -> &[Vec<ProcessId>] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `assignment[p]` = index of the cluster containing process `p`.
    pub fn assignment(&self, n: u32) -> Vec<u32> {
        let mut a = vec![u32::MAX; n as usize];
        for (ci, c) in self.clusters.iter().enumerate() {
            for &m in c {
                a[m.idx()] = ci as u32;
            }
        }
        a
    }

    /// Every process in its own cluster.
    pub fn singletons(n: u32) -> Clustering {
        Clustering {
            clusters: (0..n).map(|p| vec![ProcessId(p)]).collect(),
        }
    }

    /// Fixed contiguous clusters of at most `max_cs` processes: `{0..c-1},
    /// {c..2c-1}, …` — the clustering used in the original Ward/Taylor
    /// evaluation, sensitive to process numbering by construction.
    pub fn contiguous(n: u32, max_cs: usize) -> Clustering {
        assert!(max_cs >= 1, "cluster size must be positive");
        let clusters = (0..n)
            .step_by(max_cs)
            .map(|start| {
                (start..(start + max_cs as u32).min(n))
                    .map(ProcessId)
                    .collect()
            })
            .collect();
        Clustering { clusters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn new_rejects_duplicates_and_empties() {
        assert_eq!(
            Clustering::new(vec![vec![p(0)], vec![p(0)]]),
            Err(ClusteringError::Duplicate(p(0)))
        );
        assert_eq!(
            Clustering::new(vec![vec![]]),
            Err(ClusteringError::EmptyCluster)
        );
    }

    #[test]
    fn validate_checks_coverage_and_range() {
        let c = Clustering::new(vec![vec![p(0), p(2)]]).unwrap();
        assert_eq!(c.validate(3), Err(ClusteringError::Missing(p(1))));
        assert_eq!(c.validate(2), Err(ClusteringError::OutOfRange(p(2))));
        let full = Clustering::new(vec![vec![p(0), p(2)], vec![p(1)]]).unwrap();
        assert_eq!(full.validate(3), Ok(()));
    }

    #[test]
    fn contiguous_blocks() {
        let c = Clustering::contiguous(7, 3);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.clusters()[0], vec![p(0), p(1), p(2)]);
        assert_eq!(c.clusters()[2], vec![p(6)]);
        assert_eq!(c.max_cluster_size(), 3);
        c.validate(7).unwrap();
    }

    #[test]
    fn assignment_maps_back() {
        let c = Clustering::new(vec![vec![p(1), p(2)], vec![p(0)]]).unwrap();
        assert_eq!(c.assignment(3), vec![1, 0, 0]);
    }

    #[test]
    fn singletons_cover_everything() {
        let c = Clustering::singletons(5);
        assert_eq!(c.num_clusters(), 5);
        c.validate(5).unwrap();
        assert_eq!(c.max_cluster_size(), 1);
    }
}
