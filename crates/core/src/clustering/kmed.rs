//! k-medoid clustering of processes — the approach §3.1 evaluated and
//! rejected.
//!
//! Kept as an ablation: it selects the *number* of clusters rather than
//! bounding their *size*, so "many processes were grouped within a single
//! cluster, while the remaining clusters were sparse", which defeats the
//! cluster timestamp. The experiments in `cts-analysis` reproduce that
//! observation.

use super::Clustering;
use cts_model::{comm::CommMatrix, ProcessId};

/// Dissimilarity between two processes: communication makes processes close.
#[inline]
fn dist(m: &CommMatrix, p: ProcessId, q: ProcessId) -> f64 {
    if p == q {
        0.0
    } else {
        1.0 / (1.0 + m.count(p, q) as f64)
    }
}

/// Partition the processes into (at most) `k` clusters around medoids,
/// PAM-style: seed medoids with the `k` most communicative processes, then
/// alternate assignment and medoid update until stable (or `max_iters`).
///
/// Note what this deliberately does **not** do: bound cluster sizes. That is
/// the paper's criticism of the method.
pub fn kmedoid(m: &CommMatrix, k: usize, max_iters: usize) -> Clustering {
    let n = m.num_processes();
    assert!(k >= 1, "need at least one medoid");
    let k = k.min(n);

    // Seed: the k processes with the highest total communication volume,
    // which is deterministic and mirrors "central" processes.
    let mut volume: Vec<(u64, u32)> = (0..n)
        .map(|p| {
            let v: u64 = (0..n)
                .map(|q| m.count(ProcessId(p as u32), ProcessId(q as u32)))
                .sum();
            (v, p as u32)
        })
        .collect();
    volume.sort_unstable_by(|a, b| b.cmp(a));
    let mut medoids: Vec<u32> = volume.iter().take(k).map(|&(_, p)| p).collect();
    medoids.sort_unstable();

    let mut assign = vec![0u32; n];
    for _ in 0..max_iters {
        // Assignment step: each process to its nearest medoid (ties toward
        // the lowest medoid id, which is what produces the lopsided clusters
        // the paper observed on weakly-connected processes).
        for (p, slot) in assign.iter_mut().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_m = 0u32;
            for (mi, &med) in medoids.iter().enumerate() {
                let d = dist(m, ProcessId(p as u32), ProcessId(med));
                if d < best {
                    best = d;
                    best_m = mi as u32;
                }
            }
            *slot = best_m;
        }
        // Update step: medoid = member minimizing intra-cluster distance sum.
        let mut changed = false;
        for (mi, med) in medoids.iter_mut().enumerate() {
            let members: Vec<u32> = (0..n as u32)
                .filter(|&p| assign[p as usize] == mi as u32)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut best_cost = f64::INFINITY;
            let mut best_p = *med;
            for &cand in &members {
                let cost: f64 = members
                    .iter()
                    .map(|&q| dist(m, ProcessId(cand), ProcessId(q)))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best_p = cand;
                }
            }
            if best_p != *med {
                *med = best_p;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final assignment with the settled medoids.
    let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); medoids.len()];
    for p in 0..n {
        let mut best = f64::INFINITY;
        let mut best_m = 0usize;
        for (mi, &med) in medoids.iter().enumerate() {
            let d = dist(m, ProcessId(p as u32), ProcessId(med));
            if d < best {
                best = d;
                best_m = mi;
            }
        }
        groups[best_m].push(ProcessId(p as u32));
    }
    groups.retain(|g| !g.is_empty());
    Clustering::new(groups).expect("kmedoid produces a partition")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn separates_two_obvious_groups() {
        let mut m = CommMatrix::zero(6);
        // group A: 0,1,2 densely connected; group B: 3,4,5.
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            m.add(p(a), p(b), 10);
        }
        for (a, b) in [(3, 4), (3, 5), (4, 5)] {
            m.add(p(a), p(b), 10);
        }
        let c = kmedoid(&m, 2, 20);
        c.validate(6).unwrap();
        assert_eq!(c.num_clusters(), 2);
        let a = c.assignment(6);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[2]);
        assert_eq!(a[3], a[4]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn produces_unbalanced_clusters_on_hub_patterns() {
        // A scatter-gather hub: process 0 talks to everyone, the workers talk
        // to nobody else. k-medoid lumps every worker with the hub — the
        // degenerate outcome §3.1 describes.
        let mut m = CommMatrix::zero(9);
        for w in 1..9u32 {
            m.add(p(0), p(w), 5);
        }
        let c = kmedoid(&m, 3, 20);
        c.validate(9).unwrap();
        assert!(
            c.max_cluster_size() >= 7,
            "expected one dominant cluster, got sizes {:?}",
            c.clusters().iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn k_capped_by_n() {
        let m = CommMatrix::zero(3);
        let c = kmedoid(&m, 10, 5);
        c.validate(3).unwrap();
        assert!(c.num_clusters() <= 3);
    }
}
