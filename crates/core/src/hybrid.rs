//! The collect-then-cluster hybrid (§5, future work, first variant):
//! "collect a significant number of events before performing a static
//! clustering and subsequent timestamp operation. Such an approach will
//! require a mechanism for precedence determination for those events that
//! have yet to receive a cluster timestamp."
//!
//! Our mechanism for the un-clustered prefix is the degenerate cluster
//! timestamp itself: during the prefix every process is a singleton cluster,
//! so every cross-process receive is a cluster receive carrying its full
//! Fidge/Mattern stamp — precedence works throughout, at full-width cost for
//! the prefix only. At the pivot the Figure 3 clustering of the prefix's
//! communication is imposed (clusters only ever grow, so all invariants
//! hold), and the remainder of the computation is stamped at projected width.

use crate::cluster::engine::{ClusterEngine, ClusterTimestamps};
use crate::clustering::{greedy_pairwise, Clustering};
use crate::strategy::NeverMerge;
use cts_model::{comm::CommMatrix, EventKind, Trace};

/// Outcome of a hybrid run: the clustering chosen at the pivot and the full
/// timestamp structure.
pub struct HybridResult {
    /// The clustering computed from the prefix.
    pub clustering: Clustering,
    /// Timestamps for the entire trace (prefix at full width, rest projected).
    pub timestamps: ClusterTimestamps,
    /// Number of events observed before the pivot.
    pub prefix_len: usize,
}

/// Run the hybrid pipeline: observe `prefix_len` events with singleton
/// clusters, cluster the prefix's communication with the Figure 3 greedy
/// algorithm under `max_cs`, then continue statically.
pub fn hybrid_pipeline(trace: &Trace, prefix_len: usize, max_cs: usize) -> HybridResult {
    let n = trace.num_processes();
    let prefix_len = prefix_len.min(trace.num_events());
    let mut eng = ClusterEngine::new(n, NeverMerge);
    let mut prefix_comm = CommMatrix::zero(n as usize);
    for (pos, &ev) in trace.events().iter().enumerate() {
        if pos == prefix_len {
            let clustering = greedy_pairwise(&prefix_comm, max_cs);
            eng.merge_partition(&clustering);
        }
        if pos < prefix_len {
            match ev.kind {
                EventKind::Receive { from } => prefix_comm.add(ev.process(), from.process, 1),
                EventKind::Sync { peer } => prefix_comm.add(ev.process(), peer.process, 1),
                _ => {}
            }
        }
        eng.accept(ev);
    }
    // Pivot at end-of-trace if the prefix covered everything.
    let clustering = if prefix_len >= trace.num_events() {
        let c = greedy_pairwise(&prefix_comm, max_cs);
        eng.merge_partition(&c);
        c
    } else {
        eng.final_partition_snapshot()
    };
    HybridResult {
        clustering,
        timestamps: eng.finish(),
        prefix_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::space::{Encoding, SpaceReport};
    use crate::two_pass::static_pipeline;
    use cts_model::{Oracle, ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn grouped_trace(rounds: usize) -> Trace {
        let mut b = TraceBuilder::new(6);
        for _ in 0..rounds {
            for g in 0..3u32 {
                let (x, y) = (2 * g, 2 * g + 1);
                let s = b.send(p(x), p(y)).unwrap();
                b.receive(p(y), s).unwrap();
            }
        }
        b.finish_complete("grouped").unwrap()
    }

    #[test]
    fn hybrid_precedence_is_exact() {
        let t = grouped_trace(6);
        for prefix in [0, 7, t.num_events(), t.num_events() + 10] {
            let h = hybrid_pipeline(&t, prefix, 2);
            let oracle = Oracle::compute(&t);
            for e in t.all_event_ids() {
                for f in t.all_event_ids() {
                    assert_eq!(
                        h.timestamps.precedes(&t, e, f),
                        oracle.happened_before(&t, e, f),
                        "prefix {prefix}: {e} -> {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_finds_the_same_clusters_as_static() {
        let t = grouped_trace(6);
        let h = hybrid_pipeline(&t, 12, 2);
        let (static_clustering, _) = static_pipeline(&t, 2);
        assert_eq!(h.clustering.assignment(6), static_clustering.assignment(6));
    }

    #[test]
    fn hybrid_costs_between_static_and_never_merge() {
        let t = grouped_trace(8);
        let enc = Encoding::Fixed {
            fm_width: 300,
            cluster_width: 2,
        };
        let (_, st) = static_pipeline(&t, 2);
        let static_ratio = SpaceReport::measure(&st, enc).ratio;
        let h_small = hybrid_pipeline(&t, 6, 2);
        let r_small = SpaceReport::measure(&h_small.timestamps, enc).ratio;
        let h_all = hybrid_pipeline(&t, t.num_events(), 2);
        let r_all = SpaceReport::measure(&h_all.timestamps, enc).ratio;
        assert!(static_ratio <= r_small + 1e-12);
        assert!(r_small <= r_all + 1e-12);
    }
}
