//! The Fidge/Mattern vector timestamp, computed centrally (§2.2).
//!
//! In the monitoring-entity setting the timestamps are not carried on
//! messages; the entity computes them as events arrive in delivery order. The
//! stamp of an event is the element-wise maximum of its immediate
//! predecessors' stamps with the event's own component set to its sequence
//! number. (See DESIGN.md for why we follow the paper's Figure 2 rather than
//! its misprinted equations (1)–(2).)
//!
//! Two APIs are provided:
//!
//! - [`FmEngine`]: the *online* computation. It retains only what a future
//!   event can still need — the per-process frontier, stamps of in-flight
//!   sends, and half-completed synchronous pairs — so memory is O(N² +
//!   in-flight·N), not O(E·N).
//! - [`FmStore`]: stamps for *every* event of a trace, in one flat
//!   allocation. This is the "pre-computed and stored" baseline of §1.1 and
//!   the reference the cluster timestamps are validated against.

use crate::clock::VectorClock;
use cts_model::{Event, EventId, EventIndex, EventKind, ProcessId, Trace};
use std::collections::HashMap;

/// Online centralized Fidge/Mattern computation.
///
/// Feed events in a valid delivery order via [`accept`](Self::accept); each
/// call returns the event's stamp.
///
/// `Clone` captures the full engine state, so a live consumer (the
/// `cts-daemon` snapshotter) can fork a frozen copy mid-stream.
#[derive(Clone)]
pub struct FmEngine {
    n: usize,
    /// Last stamp of each process (the frontier); zero clock before the
    /// process's first event.
    frontier: Vec<VectorClock>,
    /// Stamps of sends whose receive has not yet arrived.
    in_flight: HashMap<EventId, VectorClock>,
    /// Combined stamp computed at the first half of a sync pair, keyed by the
    /// *second* half's id.
    pending_sync: HashMap<EventId, VectorClock>,
    /// Events accepted per process, to detect sync first/second halves and to
    /// validate delivery order.
    seen: Vec<u32>,
}

impl FmEngine {
    /// New engine over `n` processes.
    pub fn new(n: u32) -> FmEngine {
        FmEngine {
            n: n as usize,
            frontier: (0..n).map(|_| VectorClock::zero(n as usize)).collect(),
            in_flight: HashMap::new(),
            pending_sync: HashMap::new(),
            seen: vec![0; n as usize],
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Stamps currently retained for in-flight messages (diagnostics).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Accept the next event in delivery order and return its stamp.
    ///
    /// Panics if the event violates delivery order (wrong per-process
    /// sequence, receive before send); use [`cts_model::TraceBuilder`] to
    /// construct valid orders.
    pub fn accept(&mut self, ev: Event) -> VectorClock {
        let p = ev.process();
        assert_eq!(
            ev.index().0,
            self.seen[p.idx()] + 1,
            "event {:?} out of per-process order",
            ev.id
        );
        self.seen[p.idx()] += 1;

        let stamp = match ev.kind {
            EventKind::Internal => self.advance_own(p, ev.index()),
            EventKind::Send { .. } => {
                let stamp = self.advance_own(p, ev.index());
                self.in_flight.insert(ev.id, stamp.clone());
                stamp
            }
            EventKind::Receive { from } => {
                let msg = self
                    .in_flight
                    .remove(&from)
                    .expect("receive before its send: invalid delivery order");
                let mut stamp = self.advance_own(p, ev.index());
                stamp.max_assign(&msg);
                stamp
            }
            EventKind::Sync { peer } => {
                if let Some(combined) = self.pending_sync.remove(&ev.id) {
                    // Second half: the first half already computed the pair's
                    // shared stamp.
                    combined
                } else {
                    // First half: combine both processes' histories and stamp
                    // both halves identically.
                    let q = peer.process;
                    let mut combined = self.advance_own(p, ev.index());
                    combined.max_assign(&self.frontier[q.idx()]);
                    combined.set(q, peer.index.0);
                    self.pending_sync.insert(peer, combined.clone());
                    self.frontier[q.idx()] = combined.clone();
                    combined
                }
            }
        };
        self.frontier[p.idx()] = stamp.clone();
        stamp
    }

    /// `frontier[p]` with `p`'s component bumped to `idx` — the contribution
    /// of the same-process predecessor.
    fn advance_own(&self, p: ProcessId, idx: EventIndex) -> VectorClock {
        let mut c = self.frontier[p.idx()].clone();
        c.set(p, idx.0);
        c
    }
}

/// All Fidge/Mattern stamps of a trace, stored flat (one `u32` per process per
/// event — the §1.1 "pre-computed and stored" structure).
pub struct FmStore {
    n: usize,
    /// Row `delivery_pos` holds that event's stamp.
    data: Vec<u32>,
}

impl FmStore {
    /// Compute stamps for an entire trace.
    pub fn compute(trace: &Trace) -> FmStore {
        let n = trace.num_processes() as usize;
        let mut engine = FmEngine::new(trace.num_processes());
        let mut data = Vec::with_capacity(n * trace.num_events());
        for &ev in trace.events() {
            let stamp = engine.accept(ev);
            data.extend_from_slice(stamp.as_slice());
        }
        FmStore { n, data }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Stamp of the event at a delivery position.
    #[inline]
    pub fn stamp_at(&self, pos: usize) -> &[u32] {
        &self.data[pos * self.n..(pos + 1) * self.n]
    }

    /// Stamp of an event.
    #[inline]
    pub fn stamp(&self, trace: &Trace, id: EventId) -> &[u32] {
        self.stamp_at(trace.delivery_pos(id))
    }

    /// The Fidge/Mattern precedence test (constant time):
    /// `e → f ⇔ e ≠ f ∧ FM(f)[p_e] ≥ index(e)`.
    #[inline]
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        self.stamp(trace, f)[e.process.idx()] >= e.index.0
    }

    /// Are two events concurrent?
    pub fn concurrent(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        e != f && !self.precedes(trace, e, f) && !self.precedes(trace, f, e)
    }

    /// Bytes this store occupies (the §1.1 space argument), assuming 32-bit
    /// elements with no fixed-width padding.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn id(pr: u32, i: u32) -> EventId {
        EventId::new(p(pr), EventIndex(i))
    }

    /// The paper's Figure 2 computation, exactly (0-based process ids:
    /// paper P1→P0, P2→P1, P3→P2). Messages: A→D, B→G, E→C, H→F; I unary.
    fn figure2() -> Trace {
        let mut b = TraceBuilder::new(3);
        let a = b.send(p(0), p(1)).unwrap(); // A
        let bb = b.send(p(0), p(2)).unwrap(); // B
        b.receive(p(1), a).unwrap(); // D
        let e = b.send(p(1), p(0)).unwrap(); // E
        b.receive(p(0), e).unwrap(); // C
        b.receive(p(2), bb).unwrap(); // G
        let h = b.send(p(2), p(1)).unwrap(); // H
        b.receive(p(1), h).unwrap(); // F
        b.internal(p(2)).unwrap(); // I
        b.finish_complete("figure2").unwrap()
    }

    #[test]
    fn figure2_stamps_match_paper() {
        let t = figure2();
        let fm = FmStore::compute(&t);
        let expect = |e: EventId, v: &[u32]| {
            assert_eq!(fm.stamp(&t, e), v, "stamp of {e}");
        };
        expect(id(0, 1), &[1, 0, 0]); // A
        expect(id(0, 2), &[2, 0, 0]); // B
        expect(id(0, 3), &[3, 2, 0]); // C
        expect(id(1, 1), &[1, 1, 0]); // D
        expect(id(1, 2), &[1, 2, 0]); // E
        expect(id(1, 3), &[2, 3, 2]); // F
        expect(id(2, 1), &[2, 0, 1]); // G
        expect(id(2, 2), &[2, 0, 2]); // H
        expect(id(2, 3), &[2, 0, 3]); // I
    }

    #[test]
    fn engine_and_store_agree() {
        let t = figure2();
        let fm = FmStore::compute(&t);
        let mut eng = FmEngine::new(t.num_processes());
        for (pos, &ev) in t.events().iter().enumerate() {
            assert_eq!(eng.accept(ev).as_slice(), fm.stamp_at(pos));
        }
    }

    #[test]
    fn precedence_matches_oracle_on_figure2() {
        let t = figure2();
        let fm = FmStore::compute(&t);
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    fm.precedes(&t, e, f),
                    o.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn sync_halves_share_stamp_and_are_mutual() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let (x, y) = b.sync(p(1), p(2)).unwrap();
        b.internal(p(2)).unwrap();
        let t = b.finish_complete("sync").unwrap();
        let fm = FmStore::compute(&t);
        assert_eq!(fm.stamp(&t, x), fm.stamp(&t, y));
        assert_eq!(fm.stamp(&t, x), &[1, 2, 1]);
        assert!(fm.precedes(&t, x, y) && fm.precedes(&t, y, x));
        // P2's follow-up sees P0's send through the sync.
        assert!(fm.precedes(&t, id(0, 1), id(2, 2)));
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(fm.precedes(&t, e, f), o.happened_before(&t, e, f));
            }
        }
    }

    #[test]
    fn engine_releases_in_flight_stamps() {
        let mut b = TraceBuilder::new(2);
        let s1 = b.send(p(0), p(1)).unwrap();
        let s2 = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s1).unwrap();
        b.receive(p(1), s2).unwrap();
        let t = b.finish_complete("t").unwrap();
        let mut eng = FmEngine::new(2);
        eng.accept(t.at(0));
        eng.accept(t.at(1));
        assert_eq!(eng.in_flight_len(), 2);
        eng.accept(t.at(2));
        eng.accept(t.at(3));
        assert_eq!(eng.in_flight_len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of per-process order")]
    fn engine_rejects_out_of_order() {
        let mut eng = FmEngine::new(2);
        eng.accept(Event::new(id(0, 2), EventKind::Internal));
    }

    #[test]
    fn store_bytes_accounting() {
        let t = figure2();
        let fm = FmStore::compute(&t);
        assert_eq!(fm.bytes(), 9 * 3 * 4);
    }
}
