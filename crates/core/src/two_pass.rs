//! The two-pass static pipeline (§3.2, first paragraph): pass one clusters
//! the event data, pass two timestamps it.

use crate::cluster::engine::{run_static, ClusterTimestamps};
use crate::clustering::{greedy_pairwise, Clustering};
use cts_model::{comm::CommMatrix, Trace};

/// Run the full static pipeline of §4's "cluster timestamps using the static
/// clustering algorithm": count communication occurrences, cluster greedily
/// (Figure 3) under `max_cs`, then timestamp the trace against the fixed
/// clustering. Returns both the clustering and the timestamps.
pub fn static_pipeline(trace: &Trace, max_cs: usize) -> (Clustering, ClusterTimestamps) {
    let matrix = CommMatrix::from_trace(trace);
    let clustering = greedy_pairwise(&matrix, max_cs);
    let cts = run_static(trace, &clustering);
    (clustering, cts)
}

/// As [`static_pipeline`] but with a caller-supplied clusterer (contiguous,
/// k-medoid, unnormalized greedy, …) for the ablation experiments.
pub fn static_pipeline_with(
    trace: &Trace,
    cluster_fn: impl FnOnce(&CommMatrix) -> Clustering,
) -> (Clustering, ClusterTimestamps) {
    let matrix = CommMatrix::from_trace(trace);
    let clustering = cluster_fn(&matrix);
    let cts = run_static(trace, &clustering);
    (clustering, cts)
}

/// Static timestamping against a pre-counted communication matrix — sweep
/// drivers compute the matrix once per trace and recluster per cluster size.
pub fn run_static_with_matrix(
    trace: &Trace,
    matrix: &CommMatrix,
    cluster_fn: impl FnOnce(&CommMatrix) -> Clustering,
) -> ClusterTimestamps {
    run_static(trace, &cluster_fn(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::space::{Encoding, SpaceReport};
    use cts_model::{Oracle, ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn locality_trace() -> Trace {
        // Three groups of two with heavy intra-group traffic and a couple of
        // stray inter-group messages.
        let mut b = TraceBuilder::new(6);
        for round in 0..4 {
            for g in 0..3u32 {
                let (a, c) = (2 * g, 2 * g + 1);
                let s = b.send(p(a), p(c)).unwrap();
                b.receive(p(c), s).unwrap();
            }
            if round == 1 {
                let s = b.send(p(1), p(2)).unwrap();
                b.receive(p(2), s).unwrap();
            }
        }
        b.finish_complete("locality").unwrap()
    }

    #[test]
    fn pipeline_recovers_the_groups() {
        let t = locality_trace();
        let (clustering, cts) = static_pipeline(&t, 2);
        let a = clustering.assignment(6);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[2], a[3]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[2]);
        // Only the stray message crosses clusters.
        assert_eq!(cts.num_cluster_receives(), 1);
        let oracle = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(cts.precedes(&t, e, f), oracle.happened_before(&t, e, f));
            }
        }
    }

    #[test]
    fn good_clustering_beats_bad_clustering() {
        let t = locality_trace();
        let (_, good) = static_pipeline(&t, 2);
        let (_, bad) = static_pipeline_with(&t, |_| {
            Clustering::new(vec![vec![p(0), p(2)], vec![p(1), p(4)], vec![p(3), p(5)]]).unwrap()
        });
        let enc = Encoding::Fixed {
            fm_width: 300,
            cluster_width: 2,
        };
        let rg = SpaceReport::measure(&good, enc);
        let rb = SpaceReport::measure(&bad, enc);
        assert!(rg.ratio < rb.ratio, "good {} !< bad {}", rg.ratio, rb.ratio);
    }
}
