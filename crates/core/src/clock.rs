//! Vector clocks: the raw integer vectors underlying all timestamps here.

use cts_model::ProcessId;
use std::fmt;
use std::ops::Index;

/// A fixed-width vector clock over `N` processes.
///
/// Component `q` counts how many events of process `q` are in the causal past
/// of the stamped event (inclusive of the event itself on its own process).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    v: Box<[u32]>,
}

impl VectorClock {
    /// The zero clock of width `n`.
    pub fn zero(n: usize) -> VectorClock {
        VectorClock {
            v: vec![0; n].into_boxed_slice(),
        }
    }

    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<u32>) -> VectorClock {
        VectorClock {
            v: v.into_boxed_slice(),
        }
    }

    /// Clock width (number of processes).
    #[inline]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Is this the zero-width clock?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Component for process `q`.
    #[inline]
    pub fn get(&self, q: ProcessId) -> u32 {
        self.v[q.idx()]
    }

    /// Set component for process `q`.
    #[inline]
    pub fn set(&mut self, q: ProcessId, val: u32) {
        self.v[q.idx()] = val;
    }

    /// Element-wise maximum: `self = max(self, other)`.
    ///
    /// This is the only O(N) operation on the Fidge/Mattern hot path; it is
    /// written as a plain zipped loop so it auto-vectorizes.
    #[inline]
    pub fn max_assign(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(other.v.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Does `self <= other` hold component-wise?
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.v.iter().zip(other.v.iter()).all(|(a, b)| a <= b)
    }

    /// Raw components.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.v
    }

    /// Project onto an ordered list of processes: the result's `i`-th
    /// component is this clock's component for `members[i]`.
    ///
    /// This is exactly the *projection of the Fidge/Mattern timestamp over
    /// the processes in the cluster* of §2.3.
    pub fn project(&self, members: &[ProcessId]) -> Box<[u32]> {
        members.iter().map(|&q| self.v[q.idx()]).collect()
    }

    /// Sum of components (used by differential-encoding baselines).
    pub fn component_sum(&self) -> u64 {
        self.v.iter().map(|&x| x as u64).sum()
    }
}

impl Index<usize> for VectorClock {
    type Output = u32;
    #[inline]
    fn index(&self, i: usize) -> &u32 {
        &self.v[i]
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.v.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn zero_and_set_get() {
        let mut c = VectorClock::zero(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(p(1)), 0);
        c.set(p(1), 7);
        assert_eq!(c.get(p(1)), 7);
        assert_eq!(c.as_slice(), &[0, 7, 0]);
    }

    #[test]
    fn max_assign_is_componentwise() {
        let mut a = VectorClock::from_vec(vec![1, 5, 0]);
        let b = VectorClock::from_vec(vec![3, 2, 0]);
        a.max_assign(&b);
        assert_eq!(a.as_slice(), &[3, 5, 0]);
    }

    #[test]
    fn domination() {
        let a = VectorClock::from_vec(vec![1, 2]);
        let b = VectorClock::from_vec(vec![1, 3]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn projection_follows_member_order() {
        let c = VectorClock::from_vec(vec![10, 20, 30, 40]);
        let proj = c.project(&[p(3), p(1)]);
        assert_eq!(&*proj, &[40, 20]);
    }

    #[test]
    fn debug_format() {
        let c = VectorClock::from_vec(vec![1, 2, 3]);
        assert_eq!(format!("{c:?}"), "(1,2,3)");
    }

    #[test]
    fn component_sum() {
        let c = VectorClock::from_vec(vec![1, 2, 3]);
        assert_eq!(c.component_sum(), 6);
    }
}
