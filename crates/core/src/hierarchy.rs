//! Multi-level hierarchical cluster timestamps.
//!
//! §2.3: "Clusters in turn are grouped hierarchically into clusters of
//! clusters, and so on recursively, until one large cluster encompasses the
//! entire computation. … though in this paper, we are just exploring two
//! levels of clusters." This module implements the general scheme for any
//! number of levels, in the static (two-pass) setting:
//!
//! - a [`NestedClustering`] is a chain of partitions, each refining the next,
//!   with level-`k` clusters bounded by a per-level size cap; it is built by
//!   applying the Figure 3 greedy algorithm *recursively* — first over
//!   processes, then over the resulting clusters, and so on;
//! - every event is classified by the **smallest level whose cluster contains
//!   its receive source**: level 0 means an ordinary event (projection onto
//!   its innermost cluster); level `k > 0` means a *level-`k` cluster
//!   receive*, which stores a projection onto its level-`k` cluster and is
//!   recorded in the process's level-`k` gateway chain. Only top-level
//!   receives carry full Fidge/Mattern stamps;
//! - precedence recurses outward: a projected stamp that does not cover the
//!   query process routes through the greatest recorded gateway per member
//!   process *at any higher level*, whose stamp covers strictly more
//!   processes — the recursion terminates at the full-width top level.

use crate::clock::VectorClock;
use crate::cluster::space::Encoding;
use crate::clustering::Clustering;
use crate::fm::FmEngine;
use cts_model::comm::CommMatrix;
use cts_model::{EventId, ProcessId, Trace};

/// A chain of nested partitions. Level 0 is the finest; the implicit top
/// level is the whole process set.
#[derive(Clone, Debug)]
pub struct NestedClustering {
    /// `levels[k][p]` = cluster id of process `p` at level `k`.
    assignment: Vec<Vec<u32>>,
    /// `members[k][c]` = sorted processes of cluster `c` at level `k`.
    members: Vec<Vec<Vec<ProcessId>>>,
}

impl NestedClustering {
    /// Build by recursive greedy clustering: level 0 bounded by
    /// `level_caps[0]` *processes*, level 1 by `level_caps[1]`, and so on.
    /// Caps must be increasing; the top (whole computation) is implicit.
    pub fn build(matrix: &CommMatrix, level_caps: &[usize]) -> NestedClustering {
        assert!(!level_caps.is_empty(), "need at least one level");
        for w in level_caps.windows(2) {
            assert!(w[0] < w[1], "level caps must strictly increase");
        }
        let n = matrix.num_processes() as u32;
        let mut assignment = Vec::with_capacity(level_caps.len());
        let mut members = Vec::with_capacity(level_caps.len());
        for &cap in level_caps {
            let clustering = crate::clustering::greedy_pairwise(matrix, cap);
            // Enforce nesting: merge the previous level's clusters into this
            // level's groups — a cluster goes to the group its first member
            // landed in; stragglers of the same lower cluster follow it.
            let raw = clustering.assignment(n);
            let level_assign: Vec<u32> = match assignment.last() {
                None => raw,
                Some(prev) => {
                    let prev: &Vec<u32> = prev;
                    // Each previous-level cluster votes with its first member.
                    let mut vote: std::collections::HashMap<u32, u32> = Default::default();
                    for p in 0..n as usize {
                        vote.entry(prev[p]).or_insert(raw[p]);
                    }
                    (0..n as usize).map(|p| vote[&prev[p]]).collect()
                }
            };
            let mut groups: std::collections::BTreeMap<u32, Vec<ProcessId>> = Default::default();
            for p in 0..n {
                groups
                    .entry(level_assign[p as usize])
                    .or_default()
                    .push(ProcessId(p));
            }
            // Renumber densely.
            let mut dense_assign = vec![0u32; n as usize];
            let mut dense_members = Vec::new();
            for (_, mut g) in groups {
                g.sort_unstable();
                let id = dense_members.len() as u32;
                for &m in &g {
                    dense_assign[m.idx()] = id;
                }
                dense_members.push(g);
            }
            assignment.push(dense_assign);
            members.push(dense_members);
        }
        NestedClustering {
            assignment,
            members,
        }
    }

    /// Build from explicit per-level partitions (tests). Each level must
    /// refine the next.
    pub fn from_partitions(n: u32, levels: &[Clustering]) -> NestedClustering {
        let mut assignment = Vec::new();
        let mut members = Vec::new();
        for level in levels {
            level.validate(n).expect("valid partition");
            assignment.push(level.assignment(n));
            let mut ms: Vec<Vec<ProcessId>> = level.clusters().to_vec();
            for m in &mut ms {
                m.sort_unstable();
            }
            members.push(ms);
        }
        let nc = NestedClustering {
            assignment,
            members,
        };
        nc.assert_nested(n);
        nc
    }

    fn assert_nested(&self, n: u32) {
        for k in 1..self.assignment.len() {
            for p in 0..n as usize {
                for q in 0..n as usize {
                    if self.assignment[k - 1][p] == self.assignment[k - 1][q] {
                        assert_eq!(
                            self.assignment[k][p],
                            self.assignment[k][q],
                            "level {k} must coarsen level {}",
                            k - 1
                        );
                    }
                }
            }
        }
    }

    /// Number of explicit levels (the whole-computation top is implicit).
    pub fn num_levels(&self) -> usize {
        self.assignment.len()
    }

    /// The cluster id of `p` at level `k`.
    #[inline]
    pub fn cluster_of(&self, k: usize, p: ProcessId) -> u32 {
        self.assignment[k][p.idx()]
    }

    /// Sorted members of cluster `c` at level `k`.
    #[inline]
    pub fn cluster_members(&self, k: usize, c: u32) -> &[ProcessId] {
        &self.members[k][c as usize]
    }

    /// The smallest level whose cluster around `p` contains `q`, or `None`
    /// if only the implicit top level does.
    pub fn common_level(&self, p: ProcessId, q: ProcessId) -> Option<usize> {
        (0..self.num_levels()).find(|&k| self.assignment[k][p.idx()] == self.assignment[k][q.idx()])
    }
}

/// A stamp in the multi-level structure: a projection at some level, or the
/// full vector at the (implicit) top.
#[derive(Clone, Debug)]
enum HStamp {
    /// Projection onto the event's level-`level` cluster.
    Projected { level: u8, clock: Box<[u32]> },
    /// Top-level cluster receive: full Fidge/Mattern stamp.
    Full { clock: VectorClock },
}

/// A recorded gateway: an event of some process whose stamp covers a
/// level-`level` (or full) scope.
#[derive(Clone, Copy, Debug)]
struct Gateway {
    index: u32,
    pos: u32,
}

/// Static multi-level hierarchical cluster timestamps for a trace.
pub struct HierarchicalTimestamps {
    nesting: NestedClustering,
    stamps: Vec<HStamp>,
    /// `gateways[k][p]` = events of `p` whose stamp scope is level `> k`
    /// (i.e. usable to escape a level-`k` projection), ascending by index.
    gateways: Vec<Vec<Vec<Gateway>>>,
    /// Cluster receives per level (level index ≥ 1; top-level receives are
    /// the last entry).
    receives_by_level: Vec<usize>,
}

impl HierarchicalTimestamps {
    /// Two-pass static construction against a nested clustering.
    pub fn build(trace: &Trace, nesting: NestedClustering) -> HierarchicalTimestamps {
        let n = trace.num_processes();
        let num_levels = nesting.num_levels();
        let mut fm = FmEngine::new(n);
        let mut stamps = Vec::with_capacity(trace.num_events());
        let mut gateways = vec![vec![Vec::new(); n as usize]; num_levels];
        let mut receives_by_level = vec![0usize; num_levels + 1];
        for ev in trace.events() {
            let stamp = fm.accept(*ev);
            let p = ev.process();
            // Classification: smallest level containing the source.
            let class = match ev.kind.receive_source() {
                None => Some(0),
                Some(src) => nesting.common_level(p, src.process),
            };
            let pos = stamps.len() as u32;
            match class {
                Some(level) => {
                    if level > 0 {
                        receives_by_level[level] += 1;
                    }
                    let c = nesting.cluster_of(level, p);
                    let proj = stamp.project(nesting.cluster_members(level, c));
                    // This event can serve as a gateway out of any level
                    // below `level`.
                    for per_proc in gateways.iter_mut().take(level) {
                        per_proc[p.idx()].push(Gateway {
                            index: ev.index().0,
                            pos,
                        });
                    }
                    stamps.push(HStamp::Projected {
                        level: level as u8,
                        clock: proj,
                    });
                }
                None => {
                    // Top-level cluster receive: full stamp, gateway for all
                    // levels.
                    receives_by_level[num_levels] += 1;
                    for per_proc in gateways.iter_mut().take(num_levels) {
                        per_proc[p.idx()].push(Gateway {
                            index: ev.index().0,
                            pos,
                        });
                    }
                    stamps.push(HStamp::Full { clock: stamp });
                }
            }
        }
        HierarchicalTimestamps {
            nesting,
            stamps,
            gateways,
            receives_by_level,
        }
    }

    /// Convenience: recursive greedy nesting + build.
    pub fn build_greedy(trace: &Trace, level_caps: &[usize]) -> HierarchicalTimestamps {
        let matrix = CommMatrix::from_trace(trace);
        HierarchicalTimestamps::build(trace, NestedClustering::build(&matrix, level_caps))
    }

    /// Cluster receives per level (index 1..=L; index L = full-width).
    pub fn receives_by_level(&self) -> &[usize] {
        &self.receives_by_level
    }

    /// The stamp's knowledge of process `q` at a delivery position, if its
    /// scope covers `q` (diagnostics and tests).
    pub fn component(&self, pos: usize, owner: ProcessId, q: ProcessId) -> Option<u32> {
        match &self.stamps[pos] {
            HStamp::Full { clock } => Some(clock.get(q)),
            HStamp::Projected { level, clock } => {
                let c = self.nesting.cluster_of(*level as usize, owner);
                let members = self.nesting.cluster_members(*level as usize, c);
                members.binary_search(&q).ok().map(|i| clock[i])
            }
        }
    }

    /// The exact precedence test, recursing outward through gateway levels.
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        self.knows(trace.delivery_pos(f), f.process, e)
    }

    /// Does the stamp at `pos` (owned by `owner`) dominate event `e`?
    fn knows(&self, pos: usize, owner: ProcessId, e: EventId) -> bool {
        match &self.stamps[pos] {
            HStamp::Full { clock } => clock.get(e.process) >= e.index.0,
            HStamp::Projected { level, clock } => {
                let level = *level as usize;
                let c = self.nesting.cluster_of(level, owner);
                let members = self.nesting.cluster_members(level, c);
                if let Ok(i) = members.binary_search(&e.process) {
                    return clock[i] >= e.index.0;
                }
                // Route through the greatest gateway (scope > level) of each
                // member process within this stamp's knowledge.
                for (i, &q) in members.iter().enumerate() {
                    let known = clock[i];
                    if known == 0 {
                        continue;
                    }
                    let list = &self.gateways[level][q.idx()];
                    let j = list.partition_point(|g| g.index <= known);
                    if j == 0 {
                        continue;
                    }
                    let gw = list[j - 1];
                    if self.knows(gw.pos as usize, q, e) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Total stored elements under an encoding policy. For `Fixed`, projected
    /// stamps at level `k` are charged `level_caps[k]`-ish via their actual
    /// projection width (the paper's fixed-width argument applies per level).
    pub fn total_elements(&self, enc: Encoding) -> u64 {
        self.stamps
            .iter()
            .map(|s| match (s, enc) {
                (HStamp::Full { clock }, Encoding::Actual { .. }) => clock.len() as u64,
                (HStamp::Full { .. }, Encoding::Fixed { fm_width, .. }) => fm_width as u64,
                (HStamp::Projected { clock, .. }, _) => clock.len() as u64,
            })
            .sum()
    }

    /// Ratio versus a fixed-width Fidge/Mattern baseline.
    pub fn ratio(&self, enc: Encoding) -> f64 {
        let fm_per_event = match enc {
            Encoding::Fixed { fm_width, .. } => fm_width as u64,
            Encoding::Actual { n } => n as u64,
        };
        self.total_elements(enc) as f64 / (fm_per_event * self.stamps.len() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Three tiers of locality: pairs → quads → everyone. 8 processes.
    fn tiered_trace(rounds: usize) -> Trace {
        let mut b = TraceBuilder::new(8);
        for r in 0..rounds {
            // Tight pairs (0,1) (2,3) (4,5) (6,7): every round.
            for g in 0..4u32 {
                let s = b.send(p(2 * g), p(2 * g + 1)).unwrap();
                b.receive(p(2 * g + 1), s).unwrap();
            }
            // Quads {0..3} {4..7}: every other round.
            if r % 2 == 0 {
                let s = b.send(p(1), p(2)).unwrap();
                b.receive(p(2), s).unwrap();
                let s = b.send(p(5), p(6)).unwrap();
                b.receive(p(6), s).unwrap();
            }
            // Global: rarely.
            if r % 4 == 0 {
                let s = b.send(p(3), p(4)).unwrap();
                b.receive(p(4), s).unwrap();
            }
        }
        b.finish_complete("tiered").unwrap()
    }

    fn check_exact(t: &Trace, h: &HierarchicalTimestamps) {
        let oracle = Oracle::compute(t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    h.precedes(t, e, f),
                    oracle.happened_before(t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn nested_build_recovers_tiers() {
        let t = tiered_trace(8);
        let m = CommMatrix::from_trace(&t);
        let nc = NestedClustering::build(&m, &[2, 4]);
        assert_eq!(nc.num_levels(), 2);
        // Level 0: the pairs.
        assert_eq!(nc.cluster_of(0, p(0)), nc.cluster_of(0, p(1)));
        assert_ne!(nc.cluster_of(0, p(1)), nc.cluster_of(0, p(2)));
        // Level 1: the quads.
        assert_eq!(nc.cluster_of(1, p(0)), nc.cluster_of(1, p(3)));
        assert_ne!(nc.cluster_of(1, p(0)), nc.cluster_of(1, p(4)));
        // Common levels.
        assert_eq!(nc.common_level(p(0), p(1)), Some(0));
        assert_eq!(nc.common_level(p(0), p(3)), Some(1));
        assert_eq!(nc.common_level(p(0), p(7)), None);
    }

    #[test]
    fn two_level_precedence_is_exact() {
        let t = tiered_trace(8);
        let h = HierarchicalTimestamps::build_greedy(&t, &[2, 4]);
        check_exact(&t, &h);
    }

    #[test]
    fn one_level_degenerates_to_flat_clusters() {
        let t = tiered_trace(6);
        let h = HierarchicalTimestamps::build_greedy(&t, &[2]);
        check_exact(&t, &h);
        // Level classification: receives between pairs are top-level.
        assert!(h.receives_by_level()[1] > 0);
    }

    #[test]
    fn three_levels_are_exact_and_cheaper_at_the_top() {
        let t = tiered_trace(12);
        let h2 = HierarchicalTimestamps::build_greedy(&t, &[2, 4]);
        let h1 = HierarchicalTimestamps::build_greedy(&t, &[2]);
        check_exact(&t, &h2);
        let enc = Encoding::Actual { n: 8 };
        // The extra level turns full-width (8) receives into width-4
        // projections, so total elements cannot increase.
        assert!(
            h2.total_elements(enc) <= h1.total_elements(enc),
            "{} > {}",
            h2.total_elements(enc),
            h1.total_elements(enc)
        );
        // And the top level sees fewer full-width receives.
        let top2 = *h2.receives_by_level().last().unwrap();
        let top1 = *h1.receives_by_level().last().unwrap();
        assert!(top2 <= top1);
    }

    #[test]
    fn explicit_partitions_must_nest() {
        let fine = Clustering::new(vec![vec![p(0), p(1)], vec![p(2), p(3)]]).unwrap();
        let coarse = Clustering::new(vec![vec![p(0), p(1), p(2), p(3)]]).unwrap();
        let nc = NestedClustering::from_partitions(4, &[fine.clone(), coarse]);
        assert_eq!(nc.num_levels(), 2);
        let bad_coarse = Clustering::new(vec![vec![p(0), p(2)], vec![p(1), p(3)]]).unwrap();
        let res =
            std::panic::catch_unwind(|| NestedClustering::from_partitions(4, &[fine, bad_coarse]));
        assert!(res.is_err(), "non-nesting partitions must be rejected");
    }

    #[test]
    fn sync_events_respect_hierarchy() {
        let mut b = TraceBuilder::new(4);
        for _ in 0..3 {
            b.sync(p(0), p(1)).unwrap();
            b.sync(p(2), p(3)).unwrap();
            b.sync(p(1), p(2)).unwrap();
        }
        let t = b.finish_complete("sync-tiers").unwrap();
        let h = HierarchicalTimestamps::build_greedy(&t, &[2]);
        check_exact(&t, &h);
    }
}
