//! # cts-core — cluster timestamps and clustering strategies
//!
//! The primary contribution of *Clustering Strategies for Cluster Timestamps*
//! (Ward, Huang & Taylor, ICPP 2004), implemented from scratch:
//!
//! - [`fm`]: the Fidge/Mattern vector timestamp, computed centrally in the
//!   monitoring entity (§2.2) — both an online engine and a full store;
//! - [`cluster`]: the self-organizing hierarchical cluster timestamp (§2.3):
//!   projected stamps for intra-cluster events, full stamps for cluster
//!   receives, exact precedence queries routed through per-process
//!   cluster-receive chains, and space accounting under the paper's
//!   fixed-vector encoding assumptions;
//! - [`strategy`]: the dynamic clustering strategies (§3.2) —
//!   merge-on-1st-communication and the paper's new
//!   merge-on-Nth-communication with normalized thresholds;
//! - [`clustering`]: the static clustering algorithms (§3.1) — the Figure 3
//!   greedy pairwise algorithm, the fixed-contiguous baseline, and the
//!   rejected k-medoid approach kept for ablations;
//! - [`two_pass`]: the static cluster-then-timestamp pipeline;
//! - [`hybrid`]: the paper's future-work variant — collect a prefix of
//!   events, cluster statically, then continue dynamically.
//!
//! Every precedence algorithm in this crate is exact: property tests validate
//! them against the ground-truth transitive closure in `cts-model`.
//!
//! ## Quick example
//!
//! ```
//! use cts_core::cluster::{ClusterEngine, Encoding, SpaceReport};
//! use cts_core::strategy::MergeOnFirst;
//! use cts_model::{ProcessId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new(2);
//! let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
//! let r = b.receive(ProcessId(1), s).unwrap();
//! let trace = b.finish("example");
//!
//! let cts = ClusterEngine::run(&trace, MergeOnFirst::new(2));
//! assert!(cts.precedes(&trace, s.event(), r));
//! let report = SpaceReport::measure(&cts, Encoding::paper_default(2, 2));
//! assert!(report.ratio < 1.0);
//! ```

pub mod clock;
pub mod cluster;
pub mod clustering;
pub mod fm;
pub mod hierarchy;
pub mod hybrid;
pub mod strategy;
pub mod two_pass;

pub use clock::VectorClock;
pub use cluster::{ClusterEngine, ClusterStamp, ClusterTimestamps, Encoding, SpaceReport};
pub use clustering::Clustering;
pub use fm::{FmEngine, FmStore};
pub use strategy::{MergeOnFirst, MergeOnNth, MergePolicy, NeverMerge, StrategySpec};
