//! Cluster membership: a union-find over processes with immutable version
//! snapshots.
//!
//! The self-organizing cluster timestamp needs two things from its cluster
//! bookkeeping: (a) fast *current* membership queries and merges while events
//! stream in, and (b) a permanent record of the cluster **as it was** when
//! each event was stamped, because an event's projected timestamp is indexed
//! by the member list of its cluster at stamping time. We get (a) from a
//! size-united, path-compressed union-find and (b) from append-only version
//! snapshots: every merge allocates a new [`ClusterVersionId`] with a sorted
//! member list, and old versions are never mutated. A computation over `N`
//! processes creates at most `2N − 1` versions.

use crate::clustering::Clustering;
use cts_model::ProcessId;

/// Identifier of an immutable cluster snapshot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterVersionId(pub u32);

/// Union-find over processes plus immutable version snapshots.
#[derive(Clone, Debug)]
pub struct ClusterSets {
    parent: Vec<u32>,
    /// For roots: the current version id of the root's cluster. Garbage for
    /// non-roots.
    version_at_root: Vec<u32>,
    /// Sorted member lists, append-only.
    versions: Vec<Box<[ProcessId]>>,
}

impl ClusterSets {
    /// Every process in its own singleton cluster (the initial state of all
    /// dynamic strategies).
    pub fn singletons(n: u32) -> ClusterSets {
        ClusterSets {
            parent: (0..n).collect(),
            version_at_root: (0..n).collect(),
            versions: (0..n)
                .map(|p| vec![ProcessId(p)].into_boxed_slice())
                .collect(),
        }
    }

    /// Initialize from a pre-determined partition (the static, two-pass
    /// mode: cluster first, timestamp second).
    pub fn from_partition(n: u32, clustering: &Clustering) -> ClusterSets {
        clustering
            .validate(n)
            .expect("clustering must be a partition of 0..n");
        let mut sets = ClusterSets {
            parent: vec![0; n as usize],
            version_at_root: vec![0; n as usize],
            versions: Vec::with_capacity(clustering.num_clusters()),
        };
        for members in clustering.clusters() {
            let root = members[0].0;
            let vid = sets.versions.len() as u32;
            for &m in members {
                sets.parent[m.idx()] = root;
            }
            sets.version_at_root[root as usize] = vid;
            let mut sorted = members.to_vec();
            sorted.sort_unstable();
            sets.versions.push(sorted.into_boxed_slice());
        }
        sets
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.parent.len()
    }

    /// Union-find root of `p`'s cluster, with path compression.
    pub fn find(&mut self, p: ProcessId) -> u32 {
        let mut x = p.0;
        while self.parent[x as usize] != x {
            // Path halving: point to grandparent as we walk.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Root without mutation (no compression) — for read-only contexts.
    pub fn find_readonly(&self, p: ProcessId) -> u32 {
        let mut x = p.0;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Current version of the cluster containing `p`.
    pub fn current_version(&mut self, p: ProcessId) -> ClusterVersionId {
        let r = self.find(p);
        ClusterVersionId(self.version_at_root[r as usize])
    }

    /// Current version of the cluster rooted at `root`.
    pub fn version_of_root(&self, root: u32) -> ClusterVersionId {
        ClusterVersionId(self.version_at_root[root as usize])
    }

    /// Are `p` and `q` currently in the same cluster?
    pub fn same_cluster(&mut self, p: ProcessId, q: ProcessId) -> bool {
        self.find(p) == self.find(q)
    }

    /// Size of the cluster rooted at `root`.
    pub fn size_of_root(&self, root: u32) -> usize {
        self.versions[self.version_at_root[root as usize] as usize].len()
    }

    /// Member list of a version snapshot (sorted by process id).
    #[inline]
    pub fn members(&self, v: ClusterVersionId) -> &[ProcessId] {
        &self.versions[v.0 as usize]
    }

    /// Size of a version snapshot.
    #[inline]
    pub fn size(&self, v: ClusterVersionId) -> usize {
        self.members(v).len()
    }

    /// Position of `q` in the member list of `v`, if present. This is the
    /// index of `q`'s component in a timestamp projected over `v`.
    #[inline]
    pub fn position(&self, v: ClusterVersionId, q: ProcessId) -> Option<usize> {
        self.members(v).binary_search(&q).ok()
    }

    /// Does version `v` contain process `q`?
    #[inline]
    pub fn contains(&self, v: ClusterVersionId, q: ProcessId) -> bool {
        self.position(v, q).is_some()
    }

    /// Merge the clusters rooted at `ra` and `rb`; returns `(new_root,
    /// new_version)`. The two roots must be distinct, current roots.
    pub fn merge(&mut self, ra: u32, rb: u32) -> (u32, ClusterVersionId) {
        assert_ne!(ra, rb, "merging a cluster with itself");
        debug_assert_eq!(self.parent[ra as usize], ra);
        debug_assert_eq!(self.parent[rb as usize], rb);
        let (big, small) = if self.size_of_root(ra) >= self.size_of_root(rb) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let va = self.version_at_root[big as usize] as usize;
        let vb = self.version_at_root[small as usize] as usize;
        // Sorted merge of the two member lists.
        let (a, b) = (&self.versions[va], &self.versions[vb]);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] < b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        let vid = ClusterVersionId(self.versions.len() as u32);
        self.versions.push(merged.into_boxed_slice());
        self.parent[small as usize] = big;
        self.version_at_root[big as usize] = vid.0;
        (big, vid)
    }

    /// Number of distinct current clusters.
    pub fn num_clusters(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] == i as u32)
            .count()
    }

    /// Snapshot of the current partition as a [`Clustering`].
    pub fn current_partition(&self) -> Clustering {
        let n = self.parent.len();
        let mut groups: Vec<Vec<ProcessId>> = Vec::new();
        let mut slot: Vec<Option<usize>> = vec![None; n];
        for p in 0..n {
            let r = self.find_readonly(ProcessId(p as u32)) as usize;
            let g = *slot[r].get_or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(ProcessId(p as u32));
        }
        Clustering::new(groups).expect("union-find yields a partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn singletons_start_separate() {
        let mut s = ClusterSets::singletons(4);
        assert_eq!(s.num_clusters(), 4);
        for i in 0..4 {
            let v = s.current_version(p(i));
            assert_eq!(s.members(v), &[p(i)]);
            assert_eq!(s.size(v), 1);
        }
        assert!(!s.same_cluster(p(0), p(1)));
    }

    #[test]
    fn merge_creates_new_immutable_version() {
        let mut s = ClusterSets::singletons(4);
        let v0 = s.current_version(p(0));
        let (r, v01) = {
            let ra = s.find(p(0));
            let rb = s.find(p(1));
            s.merge(ra, rb)
        };
        assert_eq!(s.members(v01), &[p(0), p(1)]);
        // Old snapshot unchanged.
        assert_eq!(s.members(v0), &[p(0)]);
        assert!(s.same_cluster(p(0), p(1)));
        assert_eq!(s.num_clusters(), 3);
        assert_eq!(s.version_of_root(r), v01);
    }

    #[test]
    fn merged_member_lists_stay_sorted() {
        let mut s = ClusterSets::singletons(6);
        let (ra, rb) = (s.find(p(5)), s.find(p(1)));
        s.merge(ra, rb);
        let (ra, rb) = (s.find(p(3)), s.find(p(5)));
        let (_, v) = s.merge(ra, rb);
        assert_eq!(s.members(v), &[p(1), p(3), p(5)]);
        assert_eq!(s.position(v, p(3)), Some(1));
        assert_eq!(s.position(v, p(0)), None);
        assert!(s.contains(v, p(5)));
        assert!(!s.contains(v, p(2)));
    }

    #[test]
    fn partition_roundtrip() {
        let clustering =
            Clustering::new(vec![vec![p(0), p(2)], vec![p(1)], vec![p(3), p(4)]]).unwrap();
        let mut s = ClusterSets::from_partition(5, &clustering);
        assert_eq!(s.num_clusters(), 3);
        assert!(s.same_cluster(p(0), p(2)));
        assert!(!s.same_cluster(p(0), p(1)));
        let back = s.current_partition();
        assert_eq!(back.assignment(5), clustering.assignment(5));
    }

    #[test]
    fn version_count_is_bounded() {
        let mut s = ClusterSets::singletons(8);
        for i in 1..8 {
            let (ra, rb) = (s.find(p(0)), s.find(p(i)));
            s.merge(ra, rb);
        }
        assert_eq!(s.num_clusters(), 1);
        // n singletons + (n-1) merges = 2n - 1 versions.
        let v = s.current_version(p(0));
        assert_eq!(v.0 as usize, 2 * 8 - 2); // last version id
        assert_eq!(s.size(v), 8);
    }

    #[test]
    #[should_panic(expected = "merging a cluster with itself")]
    fn self_merge_panics() {
        let mut s = ClusterSets::singletons(2);
        let r = s.find(p(0));
        s.merge(r, r);
    }
}
