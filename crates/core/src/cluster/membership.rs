//! Cluster membership: a slot map over processes with immutable version
//! snapshots.
//!
//! The self-organizing cluster timestamp needs two things from its cluster
//! bookkeeping: (a) fast *current* membership queries, merges, and (since the
//! adaptive strategy) single-process migrations while events stream in, and
//! (b) a permanent record of the cluster **as it was** when each event was
//! stamped, because an event's projected timestamp is indexed by the member
//! list of its cluster at stamping time. We get (a) from a direct
//! process→slot map (`find` is O(1); slots are stable identities that outlive
//! any particular member, so a cluster survives its original anchor process
//! migrating away) and (b) from append-only version snapshots: every merge
//! allocates one new [`ClusterVersionId`] with a sorted member list, every
//! migration allocates two (shrunk source, grown destination), and old
//! versions are never mutated. A merge-only computation over `N` processes
//! creates at most `2N − 1` versions; each migration adds two more.

use crate::clustering::Clustering;
use cts_model::ProcessId;

/// Identifier of an immutable cluster snapshot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterVersionId(pub u32);

/// Process→slot map plus immutable version snapshots. A *slot* (what the
/// merge-only API historically called a *root*) is a stable cluster identity:
/// merges retire the smaller side's slot, migrations move one process between
/// two live slots.
#[derive(Clone, Debug)]
pub struct ClusterSets {
    /// Current slot of each process.
    slot_of: Vec<u32>,
    /// For live slots: the current version id of the slot's cluster. Garbage
    /// for retired (empty) slots.
    version_at_slot: Vec<u32>,
    /// Sorted member lists, append-only.
    versions: Vec<Box<[ProcessId]>>,
}

impl ClusterSets {
    /// Every process in its own singleton cluster (the initial state of all
    /// dynamic strategies).
    pub fn singletons(n: u32) -> ClusterSets {
        ClusterSets {
            slot_of: (0..n).collect(),
            version_at_slot: (0..n).collect(),
            versions: (0..n)
                .map(|p| vec![ProcessId(p)].into_boxed_slice())
                .collect(),
        }
    }

    /// Initialize from a pre-determined partition (the static, two-pass
    /// mode: cluster first, timestamp second).
    pub fn from_partition(n: u32, clustering: &Clustering) -> ClusterSets {
        clustering
            .validate(n)
            .expect("clustering must be a partition of 0..n");
        let mut sets = ClusterSets {
            slot_of: vec![0; n as usize],
            version_at_slot: vec![0; n as usize],
            versions: Vec::with_capacity(clustering.num_clusters()),
        };
        for members in clustering.clusters() {
            let slot = members[0].0;
            let vid = sets.versions.len() as u32;
            for &m in members {
                sets.slot_of[m.idx()] = slot;
            }
            sets.version_at_slot[slot as usize] = vid;
            let mut sorted = members.to_vec();
            sorted.sort_unstable();
            sets.versions.push(sorted.into_boxed_slice());
        }
        sets
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.slot_of.len()
    }

    /// Slot (cluster identity) of `p`. Kept `&mut` for signature
    /// compatibility with the union-find era; the lookup is O(1) and does
    /// not mutate.
    pub fn find(&mut self, p: ProcessId) -> u32 {
        self.slot_of[p.idx()]
    }

    /// Slot of `p` without requiring `&mut` — for read-only contexts.
    pub fn find_readonly(&self, p: ProcessId) -> u32 {
        self.slot_of[p.idx()]
    }

    /// Current version of the cluster containing `p`.
    pub fn current_version(&mut self, p: ProcessId) -> ClusterVersionId {
        let r = self.find(p);
        ClusterVersionId(self.version_at_slot[r as usize])
    }

    /// Current version of the cluster occupying `root`.
    pub fn version_of_root(&self, root: u32) -> ClusterVersionId {
        ClusterVersionId(self.version_at_slot[root as usize])
    }

    /// Are `p` and `q` currently in the same cluster?
    pub fn same_cluster(&mut self, p: ProcessId, q: ProcessId) -> bool {
        self.find(p) == self.find(q)
    }

    /// Size of the cluster occupying `root`.
    pub fn size_of_root(&self, root: u32) -> usize {
        self.versions[self.version_at_slot[root as usize] as usize].len()
    }

    /// Member list of a version snapshot (sorted by process id).
    #[inline]
    pub fn members(&self, v: ClusterVersionId) -> &[ProcessId] {
        &self.versions[v.0 as usize]
    }

    /// Size of a version snapshot.
    #[inline]
    pub fn size(&self, v: ClusterVersionId) -> usize {
        self.members(v).len()
    }

    /// Position of `q` in the member list of `v`, if present. This is the
    /// index of `q`'s component in a timestamp projected over `v`.
    #[inline]
    pub fn position(&self, v: ClusterVersionId, q: ProcessId) -> Option<usize> {
        self.members(v).binary_search(&q).ok()
    }

    /// Does version `v` contain process `q`?
    #[inline]
    pub fn contains(&self, v: ClusterVersionId, q: ProcessId) -> bool {
        self.position(v, q).is_some()
    }

    /// Merge the clusters at slots `ra` and `rb`; returns `(surviving_slot,
    /// new_version)`. The two slots must be distinct, live slots.
    pub fn merge(&mut self, ra: u32, rb: u32) -> (u32, ClusterVersionId) {
        assert_ne!(ra, rb, "merging a cluster with itself");
        debug_assert!(self.slot_is_live(ra), "merge from retired slot {ra}");
        debug_assert!(self.slot_is_live(rb), "merge from retired slot {rb}");
        let (big, small) = if self.size_of_root(ra) >= self.size_of_root(rb) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let va = self.version_at_slot[big as usize] as usize;
        let vb = self.version_at_slot[small as usize] as usize;
        // Sorted merge of the two member lists.
        let (a, b) = (&self.versions[va], &self.versions[vb]);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] < b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        for &m in self.versions[vb].iter() {
            self.slot_of[m.idx()] = big;
        }
        let vid = ClusterVersionId(self.versions.len() as u32);
        self.versions.push(merged.into_boxed_slice());
        self.version_at_slot[big as usize] = vid.0;
        (big, vid)
    }

    /// Move one process `q` from its current cluster into the cluster at
    /// slot `to`. Allocates two fresh versions — the shrunk source and the
    /// grown destination — and returns `(source_version, dest_version)`.
    /// The destination must be a live slot distinct from `q`'s own; if `q`
    /// was the last member of its source cluster, the source version is
    /// empty and its slot retires.
    pub fn migrate(&mut self, q: ProcessId, to: u32) -> (ClusterVersionId, ClusterVersionId) {
        let from = self.slot_of[q.idx()];
        assert_ne!(from, to, "migrating a process into its own cluster");
        debug_assert!(self.slot_is_live(to), "migrating into retired slot {to}");
        let vf = self.version_at_slot[from as usize] as usize;
        let shrunk: Vec<ProcessId> = self.versions[vf]
            .iter()
            .copied()
            .filter(|&m| m != q)
            .collect();
        let src_vid = ClusterVersionId(self.versions.len() as u32);
        self.versions.push(shrunk.into_boxed_slice());
        self.version_at_slot[from as usize] = src_vid.0;

        let vt = self.version_at_slot[to as usize] as usize;
        let dest = &self.versions[vt];
        let at = dest.partition_point(|&m| m < q);
        let mut grown = Vec::with_capacity(dest.len() + 1);
        grown.extend_from_slice(&dest[..at]);
        grown.push(q);
        grown.extend_from_slice(&dest[at..]);
        let dst_vid = ClusterVersionId(self.versions.len() as u32);
        self.versions.push(grown.into_boxed_slice());
        self.version_at_slot[to as usize] = dst_vid.0;
        self.slot_of[q.idx()] = to;
        (src_vid, dst_vid)
    }

    fn slot_is_live(&self, slot: u32) -> bool {
        self.slot_of.contains(&slot)
    }

    /// Number of distinct current clusters.
    pub fn num_clusters(&self) -> usize {
        let mut seen = vec![false; self.version_at_slot.len()];
        let mut count = 0;
        for &s in &self.slot_of {
            if !seen[s as usize] {
                seen[s as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Snapshot of the current partition as a [`Clustering`].
    pub fn current_partition(&self) -> Clustering {
        let n = self.slot_of.len();
        let mut groups: Vec<Vec<ProcessId>> = Vec::new();
        let mut slot: Vec<Option<usize>> = vec![None; self.version_at_slot.len()];
        for p in 0..n {
            let r = self.slot_of[p] as usize;
            let g = *slot[r].get_or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(ProcessId(p as u32));
        }
        Clustering::new(groups).expect("slot map yields a partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn singletons_start_separate() {
        let mut s = ClusterSets::singletons(4);
        assert_eq!(s.num_clusters(), 4);
        for i in 0..4 {
            let v = s.current_version(p(i));
            assert_eq!(s.members(v), &[p(i)]);
            assert_eq!(s.size(v), 1);
        }
        assert!(!s.same_cluster(p(0), p(1)));
    }

    #[test]
    fn merge_creates_new_immutable_version() {
        let mut s = ClusterSets::singletons(4);
        let v0 = s.current_version(p(0));
        let (r, v01) = {
            let ra = s.find(p(0));
            let rb = s.find(p(1));
            s.merge(ra, rb)
        };
        assert_eq!(s.members(v01), &[p(0), p(1)]);
        // Old snapshot unchanged.
        assert_eq!(s.members(v0), &[p(0)]);
        assert!(s.same_cluster(p(0), p(1)));
        assert_eq!(s.num_clusters(), 3);
        assert_eq!(s.version_of_root(r), v01);
    }

    #[test]
    fn merged_member_lists_stay_sorted() {
        let mut s = ClusterSets::singletons(6);
        let (ra, rb) = (s.find(p(5)), s.find(p(1)));
        s.merge(ra, rb);
        let (ra, rb) = (s.find(p(3)), s.find(p(5)));
        let (_, v) = s.merge(ra, rb);
        assert_eq!(s.members(v), &[p(1), p(3), p(5)]);
        assert_eq!(s.position(v, p(3)), Some(1));
        assert_eq!(s.position(v, p(0)), None);
        assert!(s.contains(v, p(5)));
        assert!(!s.contains(v, p(2)));
    }

    #[test]
    fn partition_roundtrip() {
        let clustering =
            Clustering::new(vec![vec![p(0), p(2)], vec![p(1)], vec![p(3), p(4)]]).unwrap();
        let mut s = ClusterSets::from_partition(5, &clustering);
        assert_eq!(s.num_clusters(), 3);
        assert!(s.same_cluster(p(0), p(2)));
        assert!(!s.same_cluster(p(0), p(1)));
        let back = s.current_partition();
        assert_eq!(back.assignment(5), clustering.assignment(5));
    }

    #[test]
    fn version_count_is_bounded() {
        let mut s = ClusterSets::singletons(8);
        for i in 1..8 {
            let (ra, rb) = (s.find(p(0)), s.find(p(i)));
            s.merge(ra, rb);
        }
        assert_eq!(s.num_clusters(), 1);
        // n singletons + (n-1) merges = 2n - 1 versions.
        let v = s.current_version(p(0));
        assert_eq!(v.0 as usize, 2 * 8 - 2); // last version id
        assert_eq!(s.size(v), 8);
    }

    #[test]
    #[should_panic(expected = "merging a cluster with itself")]
    fn self_merge_panics() {
        let mut s = ClusterSets::singletons(2);
        let r = s.find(p(0));
        s.merge(r, r);
    }

    #[test]
    fn migrate_moves_one_process_between_live_slots() {
        let mut s = ClusterSets::singletons(5);
        let (ra, rb) = (s.find(p(0)), s.find(p(1)));
        let (ab, _) = s.merge(ra, rb);
        let (rc, rd) = (s.find(p(3)), s.find(p(4)));
        let (cd, _) = s.merge(rc, rd);
        let before_src = s.version_of_root(ab);
        let (src_v, dst_v) = s.migrate(p(1), cd);
        assert_eq!(s.members(src_v), &[p(0)]);
        assert_eq!(s.members(dst_v), &[p(1), p(3), p(4)]);
        // Old snapshots unchanged.
        assert_eq!(s.members(before_src), &[p(0), p(1)]);
        assert!(s.same_cluster(p(1), p(3)));
        assert!(!s.same_cluster(p(0), p(1)));
        assert_eq!(s.num_clusters(), 3);
        assert_eq!(s.position(dst_v, p(1)), Some(0));
    }

    #[test]
    fn migrate_last_member_retires_source_slot() {
        let mut s = ClusterSets::singletons(3);
        let (ra, rb) = (s.find(p(0)), s.find(p(1)));
        let (ab, _) = s.merge(ra, rb);
        let (src_v, dst_v) = s.migrate(p(2), ab);
        assert!(s.members(src_v).is_empty());
        assert_eq!(s.members(dst_v), &[p(0), p(1), p(2)]);
        assert_eq!(s.num_clusters(), 1);
        let part = s.current_partition();
        assert_eq!(part.num_clusters(), 1);
    }

    #[test]
    fn cluster_survives_anchor_departure() {
        // The slot keeps working even when the process whose id named it
        // migrates away (the union-find representation could not do this).
        let mut s = ClusterSets::singletons(4);
        let (ra, rb) = (s.find(p(0)), s.find(p(1)));
        let (r01, _) = s.merge(ra, rb);
        assert_eq!(r01, 0);
        let lone = s.find(p(3));
        s.migrate(p(0), lone);
        // Slot 0 now holds only P1; merging into it still works.
        assert_eq!(s.find(p(1)), 0);
        let rc = s.find(p(2));
        let (_, v) = s.merge(0, rc);
        assert_eq!(s.members(v), &[p(1), p(2)]);
        assert!(s.same_cluster(p(0), p(3)));
    }

    #[test]
    #[should_panic(expected = "migrating a process into its own cluster")]
    fn self_migrate_panics() {
        let mut s = ClusterSets::singletons(2);
        let r = s.find(p(0));
        s.migrate(p(0), r);
    }
}
