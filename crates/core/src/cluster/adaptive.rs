//! Online adaptive re-clustering: merge-on-Nth *plus* drift-triggered
//! process migration, producing the standard [`ClusterTimestamps`].
//!
//! ## Drift detection
//!
//! Each process carries a fixed-point (Q16) EWMA of its blocked
//! cluster-receive ratio, clocked by its **own** event index so the value is
//! a deterministic function of the delivered prefix regardless of how other
//! processes' events interleave. The EWMA is updated lazily: observing a
//! blocked cluster receive at own-index `i` first decays the average across
//! the `i − last` silent events (signal 0) and then folds in the receive
//! (signal 1). When the EWMA crosses [`AdaptiveParams::drift_threshold_q16`]
//! *and* the process has accumulated [`AdaptiveParams::migrate_after`]
//! blocked receives from one particular foreign cluster, it migrates there.
//!
//! ## Why migration stays exact (the three rules)
//!
//! The base engine's precedence argument (the covering invariant: any
//! knowledge a projected stamp has of processes outside its cluster version
//! is dominated by a recorded full stamp at some member) relies on clusters
//! only growing. Migration of `p` out of cluster `A` into `B` breaks it in
//! exactly three places, each closed by one rule:
//!
//! 1. **The migrating process** is anchored by the triggering blocked
//!    cluster receive itself — a recorded full stamp at `p` whose index
//!    bounds everything `p` knew pre-migration.
//! 2. **Remaining members of `A`** hold *standing* knowledge of `p` that
//!    their post-migration projections (over the shrunk version) can no
//!    longer express. Each gets a **pending marker**: its next delivered
//!    event is forced to a recorded full stamp, covering that knowledge.
//! 3. **In-flight messages**: a send performed *before* the migration but
//!    delivered *after* it can smuggle uncovered knowledge of the departed
//!    process into an intra-cluster receive (which would project without
//!    recording anything). The engine tracks `lmc[q]` — `q`'s own event
//!    index at its last membership change — and forces any receive whose
//!    source `(q, j)` is inside the receiver's current cluster with
//!    `j ≤ lmc[q]` to a recorded full stamp (the **stale-source rule**).
//!
//! Growth on the destination side needs nothing: like a merge, members of
//! `B` only ever gain direct components. Together the rules re-establish the
//! covering invariant after every migration, so `precedes` and
//! `materialized_clock` on the result are exact — the differential oracle
//! the daemon's test harness enforces.

use super::engine::ClusterTimestamps;
use super::membership::ClusterSets;
use super::stamp::ClusterStamp;
use crate::fm::FmEngine;
use cts_model::{Event, ProcessId, Trace};
use std::collections::HashMap;

/// Q16 fixed-point one.
const Q16_ONE: u64 = 1 << 16;

/// Tuning knobs of the adaptive strategy. All decisions derived from these
/// are deterministic functions of the delivered prefix (fixed-point EWMA, no
/// floats on the drift path), so an offline re-run reproduces the online
/// engine bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveParams {
    /// Hard cap on cluster size for both merges and migrations.
    pub max_cluster_size: usize,
    /// Merge when a slot pair's CR count, normalized by the combined size,
    /// exceeds this (the merge-on-Nth rule).
    pub merge_threshold: f64,
    /// Blocked CRs from one foreign cluster before migrating toward it.
    pub migrate_after: u32,
    /// Q16 blocked-CR-ratio EWMA level that counts as drift.
    pub drift_threshold_q16: u32,
    /// EWMA smoothing: alpha = 2^-shift.
    pub ewma_shift: u32,
    /// Minimum own events between two migrations of the same process.
    pub cooldown: u32,
}

impl AdaptiveParams {
    /// Defaults used by the `adaptive:<maxCS>` strategy spec.
    pub fn new(max_cluster_size: usize) -> AdaptiveParams {
        AdaptiveParams {
            max_cluster_size,
            merge_threshold: 0.5,
            migrate_after: 3,
            drift_threshold_q16: (Q16_ONE / 4) as u32,
            ewma_shift: 3,
            cooldown: 16,
        }
    }
}

/// Drift-detection and migration-decision state, separated from the
/// stamping rules so the sharded daemon can keep it behind its own lock
/// (decisions serialize there; the stamping state rides the shared
/// cluster-set snapshot instead).
#[derive(Clone, Debug, Default)]
pub struct DriftDecider {
    /// CR counts between slot pairs (merge bookkeeping).
    pair_counts: HashMap<(u32, u32), u64>,
    /// Per process: blocked CRs from each foreign slot since last reset.
    affinity: Vec<HashMap<u32, u32>>,
    /// Q16 EWMA of the blocked-CR ratio, clocked by own event index.
    ewma_q16: Vec<u32>,
    /// Own event index of the last EWMA observation.
    ewma_at: Vec<u32>,
    /// Own event index at the process's last migration (cooldown).
    migrated_at: Vec<u32>,
}

/// Multiply two Q16 values.
#[inline]
fn q16_mul(a: u64, b: u64) -> u64 {
    (a * b) >> 16
}

/// `base^exp` for a Q16 `base`, by binary exponentiation (exact, portable).
fn q16_pow(mut base: u64, mut exp: u32) -> u64 {
    let mut acc = Q16_ONE;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = q16_mul(acc, base);
        }
        base = q16_mul(base, base);
        exp >>= 1;
    }
    acc
}

impl DriftDecider {
    pub fn new(n: u32) -> DriftDecider {
        DriftDecider {
            pair_counts: HashMap::new(),
            affinity: vec![HashMap::new(); n as usize],
            ewma_q16: vec![0; n as usize],
            ewma_at: vec![0; n as usize],
            migrated_at: vec![0; n as usize],
        }
    }

    /// Merge decision for a cluster receive between two slots. Bumps the
    /// pair count; merging also requires the combined size to fit.
    pub fn should_merge(
        &mut self,
        my_slot: u32,
        their_slot: u32,
        combined: usize,
        params: &AdaptiveParams,
    ) -> bool {
        let key = (my_slot.min(their_slot), my_slot.max(their_slot));
        let count = self.pair_counts.entry(key).or_insert(0);
        *count += 1;
        combined <= params.max_cluster_size
            && (*count as f64 / combined as f64) > params.merge_threshold
    }

    /// Fold bookkeeping after a merge retired `dead_slot`.
    pub fn note_merge(&mut self, dead_slot: u32) {
        self.pair_counts
            .retain(|&(a, b), _| a != dead_slot && b != dead_slot);
    }

    /// A blocked (non-mergeable) cluster receive at `p` (own index `index`)
    /// from `their_slot`: update the EWMA and affinity, and decide whether
    /// `p` should migrate into `their_slot`.
    pub fn on_blocked(
        &mut self,
        p: ProcessId,
        index: u32,
        their_slot: u32,
        my_size: usize,
        their_size: usize,
        params: &AdaptiveParams,
    ) -> bool {
        let i = p.idx();
        // Lazy EWMA: decay across the silent own events, then fold signal 1.
        let silent = index.saturating_sub(self.ewma_at[i]).saturating_sub(1);
        let keep = Q16_ONE - (Q16_ONE >> params.ewma_shift);
        let mut e = q16_mul(self.ewma_q16[i] as u64, q16_pow(keep, silent));
        e += (Q16_ONE - e) >> params.ewma_shift;
        self.ewma_q16[i] = e.min(Q16_ONE) as u32;
        self.ewma_at[i] = index;

        let aff = self.affinity[i].entry(their_slot).or_insert(0);
        *aff += 1;
        let cooled = self.migrated_at[i] == 0 || index >= self.migrated_at[i] + params.cooldown;
        *aff >= params.migrate_after
            && self.ewma_q16[i] >= params.drift_threshold_q16
            && their_size < params.max_cluster_size
            && my_size > 1
            && cooled
    }

    /// Bookkeeping after `p` migrated (at own index `index`).
    pub fn note_migration(&mut self, p: ProcessId, index: u32) {
        self.affinity[p.idx()].clear();
        self.migrated_at[p.idx()] = index;
        self.ewma_q16[p.idx()] = 0;
    }

    /// Current Q16 EWMA of `p`'s blocked-CR ratio (diagnostics).
    pub fn ewma_q16(&self, p: ProcessId) -> u32 {
        self.ewma_q16[p.idx()]
    }
}

/// Online construction of cluster timestamps under the adaptive strategy.
/// Produces the standard [`ClusterTimestamps`]; the daemon's single-worker
/// pipeline runs this exact engine, which is why an offline re-run over the
/// same delivered prefix is bit-identical.
#[derive(Clone)]
pub struct AdaptiveEngine {
    fm: FmEngine,
    sets: ClusterSets,
    params: AdaptiveParams,
    decider: DriftDecider,
    /// Processes whose next event must carry a recorded full stamp (rule 2).
    pending_marker: Vec<bool>,
    /// Own event index at each process's last membership change (rule 3).
    lmc: Vec<u32>,
    /// Last delivered own index per process (for `lmc` of bystanders).
    last_index: Vec<u32>,
    stamps: Vec<ClusterStamp>,
    crs: Vec<Vec<(u32, u32)>>,
    num_merges: usize,
    num_migrations: usize,
    /// Full stamps forced by markers or the stale-source rule (not ordinary
    /// blocked cluster receives).
    num_forced_full: usize,
}

impl AdaptiveEngine {
    pub fn new(num_processes: u32, params: AdaptiveParams) -> AdaptiveEngine {
        assert!(params.max_cluster_size >= 1);
        assert!(params.migrate_after >= 1);
        AdaptiveEngine {
            fm: FmEngine::new(num_processes),
            sets: ClusterSets::singletons(num_processes),
            params,
            decider: DriftDecider::new(num_processes),
            pending_marker: vec![false; num_processes as usize],
            lmc: vec![0; num_processes as usize],
            last_index: vec![0; num_processes as usize],
            stamps: Vec::new(),
            crs: vec![Vec::new(); num_processes as usize],
            num_merges: 0,
            num_migrations: 0,
            num_forced_full: 0,
        }
    }

    fn record_full(&mut self, p: ProcessId, index: u32, clock: crate::clock::VectorClock) {
        self.crs[p.idx()].push((index, self.stamps.len() as u32));
        self.stamps.push(ClusterStamp::Full { clock });
    }

    /// Accept the next event in delivery order.
    pub fn accept(&mut self, ev: Event) {
        let fm_stamp = self.fm.accept(ev);
        let p = ev.process();
        let index = ev.index().0;
        self.last_index[p.idx()] = index;

        // Rule 2: a pending marker forces a recorded full stamp, whatever
        // the event kind.
        if std::mem::take(&mut self.pending_marker[p.idx()]) {
            self.num_forced_full += 1;
            self.record_full(p, index, fm_stamp);
            return;
        }

        let my_slot = self.sets.find(p);
        let v = self.sets.version_of_root(my_slot);
        match ev.kind.receive_source() {
            Some(src) if !self.sets.contains(v, src.process) => {
                // Cluster receive: merge, or record and maybe migrate.
                let their_slot = self.sets.find(src.process);
                let my_size = self.sets.size_of_root(my_slot);
                let their_size = self.sets.size_of_root(their_slot);
                if self.decider.should_merge(
                    my_slot,
                    their_slot,
                    my_size + their_size,
                    &self.params,
                ) {
                    let (kept, vid) = self.sets.merge(my_slot, their_slot);
                    let dead = if kept == my_slot { their_slot } else { my_slot };
                    self.decider.note_merge(dead);
                    self.num_merges += 1;
                    self.stamps.push(ClusterStamp::Projected {
                        version: vid,
                        clock: fm_stamp.project(self.sets.members(vid)),
                    });
                    return;
                }
                let migrate = self.decider.on_blocked(
                    p,
                    index,
                    their_slot,
                    my_size,
                    their_size,
                    &self.params,
                );
                // The blocked CR itself is the migrating process's anchor
                // (rule 1): recorded full stamp, before membership changes.
                self.record_full(p, index, fm_stamp);
                if migrate {
                    self.apply_migration(p, index, my_slot, their_slot);
                }
            }
            Some(src) if src.index.0 <= self.lmc[src.process.idx()] => {
                // Rule 3: intra-cluster receive from a pre-membership-change
                // send — the projection could hide departed-process
                // knowledge, so force a recorded full stamp.
                self.num_forced_full += 1;
                self.record_full(p, index, fm_stamp);
            }
            _ => {
                self.stamps.push(ClusterStamp::Projected {
                    version: v,
                    clock: fm_stamp.project(self.sets.members(v)),
                });
            }
        }
    }

    fn apply_migration(&mut self, p: ProcessId, index: u32, my_slot: u32, their_slot: u32) {
        let old_v = self.sets.version_of_root(my_slot);
        let remaining: Vec<ProcessId> = self
            .sets
            .members(old_v)
            .iter()
            .copied()
            .filter(|&m| m != p)
            .collect();
        self.sets.migrate(p, their_slot);
        self.num_migrations += 1;
        self.decider.note_migration(p, index);
        self.lmc[p.idx()] = index;
        for m in remaining {
            self.pending_marker[m.idx()] = true;
            self.lmc[m.idx()] = self.last_index[m.idx()];
        }
    }

    /// Cluster merges performed so far.
    pub fn num_merges(&self) -> usize {
        self.num_merges
    }

    /// Migrations performed so far.
    pub fn num_migrations(&self) -> usize {
        self.num_migrations
    }

    /// Full stamps forced by markers or the stale-source rule so far.
    pub fn num_forced_full(&self) -> usize {
        self.num_forced_full
    }

    /// Events accepted so far.
    pub fn num_events(&self) -> usize {
        self.stamps.len()
    }

    /// A queryable snapshot of the timestamps built so far, without
    /// stopping the engine (the epoch-publication primitive).
    pub fn snapshot(&self) -> ClusterTimestamps {
        self.clone().finish()
    }

    /// Finish, yielding the standard queryable timestamp structure.
    pub fn finish(self) -> ClusterTimestamps {
        ClusterTimestamps::from_parts(self.sets, self.stamps, self.crs, self.num_merges)
    }

    /// Run over a complete trace.
    pub fn run(trace: &Trace, params: AdaptiveParams) -> ClusterTimestamps {
        let mut eng = AdaptiveEngine::new(trace.num_processes(), params);
        eng.stamps.reserve(trace.num_events());
        for &ev in trace.events() {
            eng.accept(ev);
        }
        eng.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn check_exact(t: &Trace, cts: &ClusterTimestamps) {
        let oracle = Oracle::compute(t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    cts.precedes(t, e, f),
                    oracle.happened_before(t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    /// P2's affinity shifts from P0/P1 to P3/P4.
    fn drifting() -> Trace {
        let mut b = TraceBuilder::new(5);
        for _ in 0..4 {
            let s = b.send(p(0), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
        }
        for _ in 0..12 {
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(3), p(4)).unwrap();
            b.receive(p(4), s).unwrap();
        }
        b.finish_complete("drifting").unwrap()
    }

    fn eager(max_cs: usize) -> AdaptiveParams {
        AdaptiveParams {
            max_cluster_size: max_cs,
            merge_threshold: 0.0,
            migrate_after: 3,
            drift_threshold_q16: 1,
            ewma_shift: 3,
            cooldown: 1,
        }
    }

    #[test]
    fn q16_pow_is_exact_decay() {
        let keep = Q16_ONE - (Q16_ONE >> 3); // 7/8
        assert_eq!(q16_pow(keep, 0), Q16_ONE);
        assert_eq!(q16_pow(keep, 1), keep);
        assert_eq!(q16_pow(keep, 2), q16_mul(keep, keep));
        let mut by_loop = Q16_ONE;
        for _ in 0..9 {
            by_loop = q16_mul(by_loop, keep);
        }
        assert_eq!(q16_pow(keep, 9), by_loop);
    }

    #[test]
    fn migration_happens_and_stays_exact() {
        let t = drifting();
        let mut eng = AdaptiveEngine::new(t.num_processes(), eager(3));
        for &ev in t.events() {
            eng.accept(ev);
        }
        assert!(
            eng.num_migrations() >= 1,
            "expected P2 to migrate, got {}",
            eng.num_migrations()
        );
        let cts = eng.finish();
        check_exact(&t, &cts);
    }

    #[test]
    fn migration_reduces_cluster_receives() {
        let t = drifting();
        let with = AdaptiveEngine::run(&t, eager(3));
        let frozen = AdaptiveEngine::run(
            &t,
            AdaptiveParams {
                migrate_after: u32::MAX - 1,
                ..eager(3)
            },
        );
        assert!(
            with.num_cluster_receives() < frozen.num_cluster_receives(),
            "adaptive {} !< frozen {}",
            with.num_cluster_receives(),
            frozen.num_cluster_receives()
        );
        check_exact(&t, &frozen);
    }

    #[test]
    fn exactness_across_parameter_grid() {
        let t = drifting();
        for max_cs in [1, 2, 3, 5] {
            for merge_threshold in [0.0, 1.0] {
                for migrate_after in [1, 2, 100] {
                    for drift_threshold_q16 in [1, (Q16_ONE / 4) as u32] {
                        let params = AdaptiveParams {
                            max_cluster_size: max_cs,
                            merge_threshold,
                            migrate_after,
                            drift_threshold_q16,
                            ewma_shift: 3,
                            cooldown: 2,
                        };
                        check_exact(&t, &AdaptiveEngine::run(&t, params));
                    }
                }
            }
        }
    }

    #[test]
    fn exactness_with_sync_events() {
        let mut b = TraceBuilder::new(4);
        for _ in 0..3 {
            b.sync(p(0), p(1)).unwrap();
            b.sync(p(2), p(3)).unwrap();
            b.sync(p(1), p(2)).unwrap();
        }
        let t = b.finish_complete("sync-drift").unwrap();
        for migrate_after in [1, 3] {
            let params = AdaptiveParams {
                migrate_after,
                ..eager(2)
            };
            check_exact(&t, &AdaptiveEngine::run(&t, params));
        }
    }

    /// The delayed-delivery hole the stale-source rule closes: a message
    /// sent inside cluster {0,1,2} *before* P2 migrates away, delivered to
    /// another remaining member *after* — its projection over the shrunk
    /// cluster would hide knowledge of P2.
    #[test]
    fn stale_source_rule_fires_on_delayed_intra_cluster_delivery() {
        let mut b = TraceBuilder::new(5);
        // Cluster {0,1,2} forms; P2 learns of P0 and P1.
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let s = b.send(p(1), p(2)).unwrap();
        b.receive(p(2), s).unwrap();
        // P1 sends to P0 now (carrying knowledge of nothing new yet), and
        // P2 sends to P1 so P1 knows P2's line; THEN P1 sends a delayed
        // message to P0 that will arrive only after P2 migrated.
        let s = b.send(p(2), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let delayed = b.send(p(1), p(0)).unwrap();
        // Drift: P2 hammers with P3/P4 until it migrates away.
        for _ in 0..6 {
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(2), p(4)).unwrap();
            b.receive(p(4), s).unwrap();
        }
        // P0 first consumes its pending marker on an internal event, so the
        // delayed delivery below is NOT marker-protected — only the
        // stale-source rule saves it.
        b.internal(p(0)).unwrap();
        // The delayed intra-cluster delivery, after the migration.
        b.receive(p(0), delayed).unwrap();
        let probe = b.internal(p(0)).unwrap();
        let t = b.finish_complete("stale-source").unwrap();

        let mut eng = AdaptiveEngine::new(t.num_processes(), eager(3));
        for &ev in t.events() {
            eng.accept(ev);
        }
        assert!(eng.num_migrations() >= 1, "trace must trigger a migration");
        assert!(
            eng.num_forced_full() >= 1,
            "marker or stale-source rule must fire"
        );
        let cts = eng.finish();
        check_exact(&t, &cts);
        // The probe at P0 causally follows P2's early events only through
        // the delayed message; precedence must see it.
        let oracle = Oracle::compute(&t);
        let e2 = cts_model::EventId::new(p(2), cts_model::EventIndex(1));
        assert_eq!(
            cts.precedes(&t, e2, probe),
            oracle.happened_before(&t, e2, probe)
        );
    }

    #[test]
    fn marker_forces_full_on_remaining_members() {
        // The drifting pattern, then post-migration activity at the
        // remaining members {0,1} so their pending markers actually fire.
        let mut b = TraceBuilder::new(5);
        for _ in 0..4 {
            let s = b.send(p(0), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
        }
        for _ in 0..12 {
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(3), p(4)).unwrap();
            b.receive(p(4), s).unwrap();
        }
        b.internal(p(0)).unwrap();
        b.internal(p(1)).unwrap();
        let t = b.finish_complete("drifting-tail").unwrap();
        let mut eng = AdaptiveEngine::new(t.num_processes(), eager(3));
        let mut saw_marker = false;
        for &ev in t.events() {
            let before = eng.num_forced_full();
            eng.accept(ev);
            if eng.num_forced_full() > before {
                saw_marker = true;
            }
        }
        assert!(eng.num_migrations() >= 1);
        assert!(saw_marker, "remaining members must stamp a forced full");
        check_exact(&t, &eng.finish());
    }

    #[test]
    fn snapshot_matches_prefix_run() {
        let t = drifting();
        let half = t.num_events() / 2;
        let mut eng = AdaptiveEngine::new(t.num_processes(), eager(3));
        for &ev in &t.events()[..half] {
            eng.accept(ev);
        }
        let snap = eng.snapshot();
        let mut prefix_eng = AdaptiveEngine::new(t.num_processes(), eager(3));
        for &ev in &t.events()[..half] {
            prefix_eng.accept(ev);
        }
        let prefix = prefix_eng.finish();
        assert_eq!(snap.stamps(), prefix.stamps());
        for &ev in &t.events()[half..] {
            eng.accept(ev);
        }
        let full = eng.finish();
        let reference = AdaptiveEngine::run(&t, eager(3));
        assert_eq!(full.stamps(), reference.stamps());
    }

    #[test]
    fn materialized_clocks_stay_exact_under_migration() {
        use crate::fm::FmStore;
        let t = drifting();
        let fm = FmStore::compute(&t);
        let cts = AdaptiveEngine::run(&t, eager(3));
        for f in t.all_event_ids() {
            assert_eq!(
                cts.materialized_clock(&t, f).as_slice(),
                fm.stamp(&t, f),
                "materialized clock of {f}"
            );
        }
    }
}
