//! Process migration between clusters — the paper's second future-work
//! variant (§5): "processes will be permitted to migrate between clusters in
//! the event that it is apparent that the clustering initially selected is a
//! poor one."
//!
//! ## Soundness
//!
//! The base engine's precedence argument relies on clusters only ever
//! growing. Migration breaks that, so a **migration marker** restores it:
//! the first event a process stamps after migrating carries its full
//! Fidge/Mattern stamp and is recorded in the process's cluster-receive
//! chain. Any causal path that crosses from the process's pre-migration
//! history into its new cluster's future passes through that marker (or
//! through an ordinary cluster receive), so the chain lookup still finds a
//! full stamp that dominates everything older. Pre-migration events keep
//! their projections over the old cluster *versions*, which are immutable
//! snapshots and remain valid.
//!
//! ## Policy
//!
//! The built-in policy is deliberately simple (this is exploratory future
//! work in the paper): clusters merge under a merge-on-Nth rule, and a
//! process migrates into a foreign cluster once it has accumulated
//! `migrate_after` cluster receives from that cluster while merging was
//! impossible — the "apparently poor clustering" signal.

use super::space::{Encoding, SpaceReport};
use super::stamp::ClusterStamp;
use crate::fm::FmEngine;
use cts_model::{Event, EventId, ProcessId, Trace};
use std::collections::HashMap;

/// Identifier of an immutable cluster snapshot (compatible in spirit with
/// [`super::membership::ClusterVersionId`], but owned by [`FluidClusters`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FluidVersionId(pub u32);

/// Cluster membership that supports both merging and *removal* (migration),
/// with immutable version snapshots for per-event projections.
#[derive(Clone, Debug)]
pub struct FluidClusters {
    /// Current cluster slot of each process.
    slot_of: Vec<u32>,
    /// Current version of each live slot (dead slots keep stale data).
    version_of_slot: Vec<u32>,
    /// Immutable sorted member snapshots.
    versions: Vec<Box<[ProcessId]>>,
}

impl FluidClusters {
    /// Singletons.
    pub fn singletons(n: u32) -> FluidClusters {
        FluidClusters {
            slot_of: (0..n).collect(),
            version_of_slot: (0..n).collect(),
            versions: (0..n)
                .map(|p| vec![ProcessId(p)].into_boxed_slice())
                .collect(),
        }
    }

    /// Current slot of a process.
    #[inline]
    pub fn slot(&self, p: ProcessId) -> u32 {
        self.slot_of[p.idx()]
    }

    /// Current version of a slot.
    #[inline]
    pub fn version_of(&self, slot: u32) -> FluidVersionId {
        FluidVersionId(self.version_of_slot[slot as usize])
    }

    /// Members of a version snapshot (sorted).
    #[inline]
    pub fn members(&self, v: FluidVersionId) -> &[ProcessId] {
        &self.versions[v.0 as usize]
    }

    /// Position of `q` in a snapshot, if present.
    #[inline]
    pub fn position(&self, v: FluidVersionId, q: ProcessId) -> Option<usize> {
        self.members(v).binary_search(&q).ok()
    }

    /// Size of a slot's current cluster.
    pub fn size_of_slot(&self, slot: u32) -> usize {
        self.versions[self.version_of_slot[slot as usize] as usize].len()
    }

    fn push_version(&mut self, members: Vec<ProcessId>) -> u32 {
        let id = self.versions.len() as u32;
        self.versions.push(members.into_boxed_slice());
        id
    }

    /// Merge slot `b` into slot `a`; returns the merged version.
    pub fn merge(&mut self, a: u32, b: u32) -> FluidVersionId {
        assert_ne!(a, b, "merging a slot with itself");
        let mut members: Vec<ProcessId> = self
            .members(self.version_of(a))
            .iter()
            .chain(self.members(self.version_of(b)).iter())
            .copied()
            .collect();
        members.sort_unstable();
        for &m in &members {
            self.slot_of[m.idx()] = a;
        }
        let v = self.push_version(members);
        self.version_of_slot[a as usize] = v;
        FluidVersionId(v)
    }

    /// Move process `q` from its current slot into slot `to`. Both clusters
    /// get fresh versions; returns the destination's new version.
    pub fn migrate(&mut self, q: ProcessId, to: u32) -> FluidVersionId {
        let from = self.slot(q);
        assert_ne!(from, to, "migration must change clusters");
        let remaining: Vec<ProcessId> = self
            .members(self.version_of(from))
            .iter()
            .copied()
            .filter(|&m| m != q)
            .collect();
        let mut joined: Vec<ProcessId> = self
            .members(self.version_of(to))
            .iter()
            .copied()
            .chain(std::iter::once(q))
            .collect();
        joined.sort_unstable();
        // An emptied source slot simply goes dead.
        if !remaining.is_empty() {
            let v_from = self.push_version(remaining);
            self.version_of_slot[from as usize] = v_from;
        }
        let v_to = self.push_version(joined);
        self.version_of_slot[to as usize] = v_to;
        self.slot_of[q.idx()] = to;
        FluidVersionId(v_to)
    }

    /// Number of live (non-empty, current) clusters.
    pub fn num_clusters(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for p in 0..self.slot_of.len() {
            seen.insert(self.slot_of[p]);
        }
        seen.len()
    }
}

/// A cluster receive recorded as a gateway (index within process, stamp pos).
#[derive(Clone, Copy, Debug)]
struct CrRecord {
    index: u32,
    pos: u32,
}

/// Online cluster timestamps with merge-on-Nth *and* process migration.
pub struct MigratingEngine {
    fm: FmEngine,
    clusters: FluidClusters,
    max_cluster_size: usize,
    merge_threshold: f64,
    migrate_after: u32,
    /// CR counts between slot pairs (merge bookkeeping).
    pair_counts: HashMap<(u32, u32), u64>,
    /// Per process: CRs received from each foreign slot since the counter
    /// was last reset (migration bookkeeping).
    affinity: Vec<HashMap<u32, u32>>,
    /// Processes whose next event must carry a full stamp (migration marker).
    pending_marker: Vec<bool>,
    /// Own event index at each process's last membership change: receives
    /// from a source event at or before this index are forced to full
    /// stamps (the stale-source rule), because a message sent before the
    /// migration but delivered after it can carry knowledge of the departed
    /// process that an intra-cluster projection would silently drop.
    lmc: Vec<u32>,
    /// Last delivered own index per process.
    last_index: Vec<u32>,
    stamps: Vec<ClusterStamp>,
    crs: Vec<Vec<CrRecord>>,
    num_cluster_receives: usize,
    num_merges: usize,
    num_migrations: usize,
}

impl MigratingEngine {
    /// Engine over `n` processes: clusters capped at `max_cluster_size`,
    /// merging when the normalized CR count exceeds `merge_threshold`,
    /// migrating a process after `migrate_after` blocked CRs from one
    /// foreign cluster.
    pub fn new(
        n: u32,
        max_cluster_size: usize,
        merge_threshold: f64,
        migrate_after: u32,
    ) -> MigratingEngine {
        assert!(max_cluster_size >= 1);
        assert!(migrate_after >= 1);
        MigratingEngine {
            fm: FmEngine::new(n),
            clusters: FluidClusters::singletons(n),
            max_cluster_size,
            merge_threshold,
            migrate_after,
            pair_counts: HashMap::new(),
            affinity: vec![HashMap::new(); n as usize],
            pending_marker: vec![false; n as usize],
            lmc: vec![0; n as usize],
            last_index: vec![0; n as usize],
            stamps: Vec::new(),
            crs: vec![Vec::new(); n as usize],
            num_cluster_receives: 0,
            num_merges: 0,
            num_migrations: 0,
        }
    }

    fn record_full(&mut self, p: ProcessId, index: u32, clock: crate::clock::VectorClock) {
        self.crs[p.idx()].push(CrRecord {
            index,
            pos: self.stamps.len() as u32,
        });
        self.stamps.push(ClusterStamp::Full { clock });
    }

    /// Accept the next event in delivery order.
    pub fn accept(&mut self, ev: Event) {
        let fm_stamp = self.fm.accept(ev);
        let p = ev.process();
        self.last_index[p.idx()] = ev.index().0;

        // Migration marker: the first post-migration event is always a
        // recorded full stamp, regardless of kind (soundness anchor).
        if std::mem::take(&mut self.pending_marker[p.idx()]) {
            self.num_cluster_receives += 1;
            self.record_full(p, ev.index().0, fm_stamp);
            return;
        }

        let my_slot = self.clusters.slot(p);
        let cr_from = match ev.kind.receive_source() {
            Some(src) if self.clusters.slot(src.process) != my_slot => {
                Some(self.clusters.slot(src.process))
            }
            Some(src) if src.index.0 <= self.lmc[src.process.idx()] => {
                // Stale-source rule: intra-cluster receive from a send
                // performed before the source's last membership change —
                // projecting would hide departed-process knowledge.
                self.num_cluster_receives += 1;
                self.record_full(p, ev.index().0, fm_stamp);
                return;
            }
            _ => None,
        };
        match cr_from {
            None => {
                let v = self.clusters.version_of(my_slot);
                self.stamps.push(ClusterStamp::Projected {
                    version: super::membership::ClusterVersionId(v.0),
                    clock: fm_stamp.project(self.clusters.members(v)),
                });
            }
            Some(their_slot) => {
                // Merge bookkeeping (normalized CR count, as merge-on-Nth).
                let key = (my_slot.min(their_slot), my_slot.max(their_slot));
                let count = self.pair_counts.entry(key).or_insert(0);
                *count += 1;
                let combined =
                    self.clusters.size_of_slot(my_slot) + self.clusters.size_of_slot(their_slot);
                let mergeable = combined <= self.max_cluster_size
                    && (*count as f64 / combined as f64) > self.merge_threshold;
                if mergeable {
                    let v = self.clusters.merge(my_slot, their_slot);
                    self.num_merges += 1;
                    self.pair_counts
                        .retain(|&(a, b), _| a != their_slot && b != their_slot);
                    self.stamps.push(ClusterStamp::Projected {
                        version: super::membership::ClusterVersionId(v.0),
                        clock: fm_stamp.project(self.clusters.members(v)),
                    });
                    return;
                }
                // Blocked: consider migrating toward the talkative cluster.
                let aff = self.affinity[p.idx()].entry(their_slot).or_insert(0);
                *aff += 1;
                let should_migrate = *aff >= self.migrate_after
                    && self.clusters.size_of_slot(their_slot) < self.max_cluster_size
                    && self.clusters.size_of_slot(my_slot) > 1;
                self.num_cluster_receives += 1;
                self.record_full(p, ev.index().0, fm_stamp);
                if should_migrate {
                    // The migrating process is anchored by this very event
                    // (full stamp, recorded above). The *remaining* members
                    // of the old cluster are the subtle case: their future
                    // projections no longer cover `p`, which could hide
                    // dependencies that entered through `p` while it was a
                    // member — so each of them gets a migration marker.
                    let old_v = self.clusters.version_of(my_slot);
                    let remaining: Vec<ProcessId> = self
                        .clusters
                        .members(old_v)
                        .iter()
                        .copied()
                        .filter(|&m| m != p)
                        .collect();
                    self.clusters.migrate(p, their_slot);
                    self.num_migrations += 1;
                    self.affinity[p.idx()].clear();
                    self.lmc[p.idx()] = ev.index().0;
                    for m in remaining {
                        self.pending_marker[m.idx()] = true;
                        self.lmc[m.idx()] = self.last_index[m.idx()];
                    }
                }
            }
        }
    }

    /// Finish into a queryable structure.
    pub fn finish(self) -> MigratingTimestamps {
        MigratingTimestamps {
            clusters: self.clusters,
            stamps: self.stamps,
            crs: self.crs,
            num_cluster_receives: self.num_cluster_receives,
            num_merges: self.num_merges,
            num_migrations: self.num_migrations,
        }
    }

    /// Run over a whole trace.
    pub fn run(
        trace: &Trace,
        max_cs: usize,
        merge_threshold: f64,
        migrate_after: u32,
    ) -> MigratingTimestamps {
        let mut eng = MigratingEngine::new(
            trace.num_processes(),
            max_cs,
            merge_threshold,
            migrate_after,
        );
        eng.stamps.reserve(trace.num_events());
        for &ev in trace.events() {
            eng.accept(ev);
        }
        eng.finish()
    }
}

/// Queryable cluster timestamps produced by [`MigratingEngine`].
pub struct MigratingTimestamps {
    clusters: FluidClusters,
    stamps: Vec<ClusterStamp>,
    crs: Vec<Vec<CrRecord>>,
    num_cluster_receives: usize,
    num_merges: usize,
    num_migrations: usize,
}

impl MigratingTimestamps {
    /// Stamps in delivery order.
    pub fn stamps(&self) -> &[ClusterStamp] {
        &self.stamps
    }

    /// Number of full-width stamps recorded (cluster receives + markers).
    pub fn num_cluster_receives(&self) -> usize {
        self.num_cluster_receives
    }

    /// Cluster merges performed.
    pub fn num_merges(&self) -> usize {
        self.num_merges
    }

    /// Migrations performed.
    pub fn num_migrations(&self) -> usize {
        self.num_migrations
    }

    /// Number of final clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.num_clusters()
    }

    fn greatest_cr(&self, q: ProcessId, known: u32) -> Option<&ClusterStamp> {
        let list = &self.crs[q.idx()];
        let i = list.partition_point(|r| r.index <= known);
        (i > 0).then(|| &self.stamps[list[i - 1].pos as usize])
    }

    /// Exact precedence test (same routing as the base engine).
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let need = e.index.0;
        match &self.stamps[trace.delivery_pos(f)] {
            ClusterStamp::Full { clock } => clock.get(e.process) >= need,
            ClusterStamp::Projected { version, clock } => {
                let v = FluidVersionId(version.0);
                if let Some(pos) = self.clusters.position(v, e.process) {
                    return clock[pos] >= need;
                }
                for (pos, &q) in self.clusters.members(v).iter().enumerate() {
                    let known = clock[pos];
                    if known == 0 {
                        continue;
                    }
                    if let Some(ClusterStamp::Full { clock: cr }) = self.greatest_cr(q, known) {
                        if cr.get(e.process) >= need {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Space under an encoding policy.
    pub fn space(&self, enc: Encoding) -> SpaceReport {
        SpaceReport::measure_from_stamps(&self.stamps, self.num_cluster_receives, enc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn check_exact(t: &Trace, mts: &MigratingTimestamps) {
        let oracle = Oracle::compute(t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    mts.precedes(t, e, f),
                    oracle.happened_before(t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    /// A process whose affinity shifts: P2 first talks to P0/P1, then
    /// exclusively to P3/P4.
    fn drifting() -> Trace {
        let mut b = TraceBuilder::new(5);
        for _ in 0..4 {
            let s = b.send(p(0), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
        }
        for _ in 0..12 {
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(3), p(4)).unwrap();
            b.receive(p(4), s).unwrap();
        }
        b.finish_complete("drifting").unwrap()
    }

    #[test]
    fn fluid_clusters_merge_and_migrate() {
        let mut fc = FluidClusters::singletons(4);
        let v = fc.merge(0, 1);
        assert_eq!(fc.members(v), &[p(0), p(1)]);
        assert_eq!(fc.slot(p(1)), 0);
        let v2 = fc.merge(2, 3);
        assert_eq!(fc.members(v2), &[p(2), p(3)]);
        // Migrate P1 into {2,3}.
        let v3 = fc.migrate(p(1), 2);
        assert_eq!(fc.members(v3), &[p(1), p(2), p(3)]);
        assert_eq!(fc.slot(p(1)), 2);
        assert_eq!(fc.size_of_slot(0), 1);
        // Old snapshots untouched.
        assert_eq!(fc.members(v), &[p(0), p(1)]);
        assert_eq!(fc.num_clusters(), 2);
    }

    #[test]
    fn migration_happens_on_drifting_affinity() {
        let t = drifting();
        // Small clusters; merging {0,1,2} with {3,4} is blocked at max 3.
        let mts = MigratingEngine::run(&t, 3, 0.0, 3);
        assert!(
            mts.num_migrations() >= 1,
            "expected P2 to migrate, got {} migrations",
            mts.num_migrations()
        );
        check_exact(&t, &mts);
    }

    #[test]
    fn migration_reduces_cluster_receives_vs_no_migration() {
        let t = drifting();
        let with = MigratingEngine::run(&t, 3, 0.0, 3);
        let without = MigratingEngine::run(&t, 3, 0.0, u32::MAX - 1);
        assert!(
            with.num_cluster_receives() < without.num_cluster_receives(),
            "migration {} !< frozen {}",
            with.num_cluster_receives(),
            without.num_cluster_receives()
        );
        check_exact(&t, &without);
    }

    #[test]
    fn exactness_across_parameter_grid() {
        let t = drifting();
        for max_cs in [1, 2, 3, 5] {
            for threshold in [0.0, 1.0] {
                for migrate_after in [1, 2, 100] {
                    let mts = MigratingEngine::run(&t, max_cs, threshold, migrate_after);
                    check_exact(&t, &mts);
                }
            }
        }
    }

    #[test]
    fn exactness_with_sync_events() {
        let mut b = TraceBuilder::new(4);
        for _ in 0..3 {
            b.sync(p(0), p(1)).unwrap();
            b.sync(p(2), p(3)).unwrap();
            b.sync(p(1), p(2)).unwrap();
        }
        let t = b.finish_complete("sync-drift").unwrap();
        for migrate_after in [1, 3] {
            let mts = MigratingEngine::run(&t, 2, 0.0, migrate_after);
            check_exact(&t, &mts);
        }
    }

    #[test]
    fn delayed_intra_cluster_delivery_stays_exact() {
        // Regression: a message sent inside the old cluster before a
        // migration but delivered after it must not lose knowledge of the
        // departed process (the stale-source rule).
        let mut b = TraceBuilder::new(5);
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let s = b.send(p(1), p(2)).unwrap();
        b.receive(p(2), s).unwrap();
        let s = b.send(p(2), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let delayed = b.send(p(1), p(0)).unwrap();
        for _ in 0..6 {
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
            let s = b.send(p(2), p(4)).unwrap();
            b.receive(p(4), s).unwrap();
        }
        // Consume P0's marker first so only the stale-source rule protects
        // the delayed delivery.
        b.internal(p(0)).unwrap();
        b.receive(p(0), delayed).unwrap();
        b.internal(p(0)).unwrap();
        let t = b.finish_complete("stale-source-migrating").unwrap();
        let mts = MigratingEngine::run(&t, 3, 0.0, 3);
        assert!(mts.num_migrations() >= 1, "trace must trigger a migration");
        check_exact(&t, &mts);
    }

    #[test]
    fn space_accounting_works() {
        let t = drifting();
        let mts = MigratingEngine::run(&t, 3, 0.0, 3);
        let r = mts.space(Encoding::paper_default(5, 3));
        assert!(r.ratio > 0.0 && r.ratio <= 1.0);
        assert_eq!(r.num_events, t.num_events());
    }
}
