//! The self-organizing hierarchical cluster timestamp (§2.3).
//!
//! Processes are grouped into clusters. An event whose causal inputs all come
//! from inside its cluster gets a timestamp that is the **projection** of its
//! Fidge/Mattern stamp onto the cluster's processes — O(c) instead of O(N).
//! A receive whose source lies outside the cluster is a **cluster receive**:
//! either the two clusters merge (and the event projects onto the merged
//! cluster) or the event keeps its full Fidge/Mattern stamp and is recorded
//! as the cluster's gateway to the outside world. Precedence queries on
//! projected stamps route through the recorded cluster receives.

pub mod adaptive;
pub mod engine;
pub mod membership;
pub mod migrate;
pub mod space;
pub mod stamp;

pub use adaptive::{AdaptiveEngine, AdaptiveParams, DriftDecider};
pub use engine::{ClusterEngine, ClusterTimestamps};
pub use membership::{ClusterSets, ClusterVersionId};
pub use migrate::{MigratingEngine, MigratingTimestamps};
pub use space::{Encoding, SpaceReport};
pub use stamp::ClusterStamp;
