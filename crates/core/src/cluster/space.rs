//! Space accounting for timestamp structures (§4's measured quantity).
//!
//! The paper's experiments assume the observation tool encodes Fidge/Mattern
//! timestamps in a **fixed-size vector** (300 elements by default, matching
//! POET/OLT behaviour) and cluster timestamps in vectors of size equal to the
//! maximum cluster size — "any variation in sizing of the vectors is likely
//! to have a detrimental impact on the performance of the memory-allocation
//! system" (§3.1). [`Encoding::Fixed`] reproduces those assumptions;
//! [`Encoding::Actual`] counts the elements actually stored, for comparison.

use super::engine::ClusterTimestamps;
use super::stamp::ClusterStamp;

/// How timestamp vectors are encoded for space accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Encoding {
    /// POET/OLT-style fixed-width vectors: every Fidge/Mattern (and cluster
    /// receive) stamp occupies `fm_width` elements; every projected stamp
    /// occupies `cluster_width` (= the maximum cluster size) elements.
    Fixed {
        fm_width: usize,
        cluster_width: usize,
    },
    /// Count exactly the elements stored; the Fidge/Mattern baseline costs
    /// `n` elements per event.
    Actual { n: usize },
}

impl Encoding {
    /// The paper's default: 300-element fixed vectors for Fidge/Mattern
    /// stamps (widened if the computation has more processes) and
    /// `max_cluster_size`-element vectors for cluster stamps.
    pub fn paper_default(num_processes: u32, max_cluster_size: usize) -> Encoding {
        Encoding::Fixed {
            fm_width: 300.max(num_processes as usize),
            cluster_width: max_cluster_size,
        }
    }

    /// Elements charged for one cluster stamp.
    fn cluster_elements(&self, stamp: &ClusterStamp) -> u64 {
        match (self, stamp) {
            (Encoding::Fixed { fm_width, .. }, ClusterStamp::Full { .. }) => *fm_width as u64,
            (Encoding::Fixed { cluster_width, .. }, ClusterStamp::Projected { .. }) => {
                *cluster_width as u64
            }
            (Encoding::Actual { .. }, s) => s.actual_width() as u64,
        }
    }

    /// Elements charged for one Fidge/Mattern stamp.
    fn fm_elements(&self) -> u64 {
        match self {
            Encoding::Fixed { fm_width, .. } => *fm_width as u64,
            Encoding::Actual { n } => *n as u64,
        }
    }
}

/// Space consumed by a cluster-timestamp structure versus the Fidge/Mattern
/// baseline over the same events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceReport {
    pub num_events: usize,
    pub num_cluster_receives: usize,
    /// Total vector elements across all cluster stamps.
    pub cluster_elements: u64,
    /// Total vector elements the Fidge/Mattern baseline would use.
    pub fm_elements: u64,
    /// Mean elements per cluster stamp.
    pub avg_cluster_elements: f64,
    /// `cluster_elements / fm_elements` — the y-axis of Figures 4 and 5.
    pub ratio: f64,
}

impl SpaceReport {
    /// Measure a timestamp structure under an encoding policy.
    pub fn measure(cts: &ClusterTimestamps, enc: Encoding) -> SpaceReport {
        Self::measure_from_stamps(cts.stamps(), cts.num_cluster_receives(), enc)
    }

    /// Measure from a raw stamp sequence (shared by the base and the
    /// migrating engines).
    pub fn measure_from_stamps(
        stamps: &[ClusterStamp],
        num_cluster_receives: usize,
        enc: Encoding,
    ) -> SpaceReport {
        let mut cluster_elements = 0u64;
        for stamp in stamps {
            cluster_elements += enc.cluster_elements(stamp);
        }
        let num_events = stamps.len();
        let fm_elements = enc.fm_elements() * num_events as u64;
        SpaceReport {
            num_events,
            num_cluster_receives,
            cluster_elements,
            fm_elements,
            avg_cluster_elements: if num_events == 0 {
                0.0
            } else {
                cluster_elements as f64 / num_events as f64
            },
            ratio: if fm_elements == 0 {
                0.0
            } else {
                cluster_elements as f64 / fm_elements as f64
            },
        }
    }

    /// Bytes for the cluster structure assuming 32-bit elements.
    pub fn cluster_bytes(&self) -> u64 {
        self.cluster_elements * 4
    }

    /// Bytes for the Fidge/Mattern baseline assuming 32-bit elements.
    pub fn fm_bytes(&self) -> u64 {
        self.fm_elements * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::engine::ClusterEngine;
    use crate::strategy::{MergeOnFirst, NeverMerge};
    use cts_model::{ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn pair_trace() -> cts_model::Trace {
        let mut b = TraceBuilder::new(4);
        for _ in 0..5 {
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
        }
        b.internal(p(2)).unwrap();
        b.internal(p(3)).unwrap();
        b.finish_complete("pair").unwrap()
    }

    #[test]
    fn fixed_encoding_ratio_bounds() {
        let t = pair_trace();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let enc = Encoding::Fixed {
            fm_width: 300,
            cluster_width: 2,
        };
        let r = SpaceReport::measure(&cts, enc);
        // Everything merges on the first message: zero cluster receives, all
        // stamps cost 2 of 300 elements.
        assert_eq!(r.num_cluster_receives, 0);
        assert!((r.ratio - 2.0 / 300.0).abs() < 1e-12);
        assert_eq!(r.cluster_elements, 2 * t.num_events() as u64);
        assert_eq!(r.fm_elements, 300 * t.num_events() as u64);
        assert_eq!(r.cluster_bytes(), r.cluster_elements * 4);
    }

    #[test]
    fn never_merge_costs_full_width_for_receives() {
        let t = pair_trace();
        let cts = ClusterEngine::run(&t, NeverMerge);
        let enc = Encoding::Fixed {
            fm_width: 300,
            cluster_width: 1,
        };
        let r = SpaceReport::measure(&cts, enc);
        assert_eq!(r.num_cluster_receives, 5);
        // 5 receives at 300, 7 other events at 1.
        assert_eq!(r.cluster_elements, 5 * 300 + 7);
    }

    #[test]
    fn actual_encoding_counts_stored_elements() {
        let t = pair_trace();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let r = SpaceReport::measure(&cts, Encoding::Actual { n: 4 });
        // First event of P0 is a singleton projection (1), every later
        // event on P0/P1 projects over {0,1} (2); P2, P3 singletons (1).
        assert_eq!(r.fm_elements, 4 * t.num_events() as u64);
        assert!(r.ratio < 1.0);
        assert!(r.avg_cluster_elements < 2.01);
    }

    #[test]
    fn paper_default_widens_for_large_n() {
        match Encoding::paper_default(500, 10) {
            Encoding::Fixed {
                fm_width,
                cluster_width,
            } => {
                assert_eq!(fm_width, 500);
                assert_eq!(cluster_width, 10);
            }
            _ => unreachable!(),
        }
        match Encoding::paper_default(100, 10) {
            Encoding::Fixed { fm_width, .. } => assert_eq!(fm_width, 300),
            _ => unreachable!(),
        }
    }
}
