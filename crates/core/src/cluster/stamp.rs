//! The per-event cluster timestamp representation.

use super::membership::{ClusterSets, ClusterVersionId};
use crate::clock::VectorClock;
use cts_model::ProcessId;

/// A cluster timestamp: either a projection of the event's Fidge/Mattern
/// stamp onto its cluster (the common case) or, for non-mergeable cluster
/// receives, the full Fidge/Mattern stamp (§2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterStamp {
    /// Projection over the member list of `version` (component `i` belongs to
    /// `sets.members(version)[i]`).
    Projected {
        version: ClusterVersionId,
        clock: Box<[u32]>,
    },
    /// A non-mergeable cluster receive carrying its full Fidge/Mattern stamp.
    Full { clock: VectorClock },
}

impl ClusterStamp {
    /// Was this event a (non-mergeable) cluster receive?
    #[inline]
    pub fn is_cluster_receive(&self) -> bool {
        matches!(self, ClusterStamp::Full { .. })
    }

    /// This stamp's knowledge of process `q`: how many events of `q` are in
    /// the stamped event's causal past. `None` when the stamp is projected
    /// and `q` is outside the cluster (the information precedence queries
    /// recover via cluster receives).
    pub fn component(&self, sets: &ClusterSets, q: ProcessId) -> Option<u32> {
        match self {
            ClusterStamp::Full { clock } => Some(clock.get(q)),
            ClusterStamp::Projected { version, clock } => {
                sets.position(*version, q).map(|i| clock[i])
            }
        }
    }

    /// Number of vector elements this stamp actually stores (`c` for
    /// projected stamps, `N` for cluster receives).
    pub fn actual_width(&self) -> usize {
        match self {
            ClusterStamp::Full { clock } => clock.len(),
            ClusterStamp::Projected { clock, .. } => clock.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn component_lookup_projected() {
        let mut sets = ClusterSets::singletons(4);
        let (ra, rb) = (sets.find(p(1)), sets.find(p(3)));
        let (_, v) = sets.merge(ra, rb);
        let s = ClusterStamp::Projected {
            version: v,
            clock: vec![5, 9].into_boxed_slice(), // members [P1, P3]
        };
        assert_eq!(s.component(&sets, p(1)), Some(5));
        assert_eq!(s.component(&sets, p(3)), Some(9));
        assert_eq!(s.component(&sets, p(0)), None);
        assert!(!s.is_cluster_receive());
        assert_eq!(s.actual_width(), 2);
    }

    #[test]
    fn component_lookup_full() {
        let sets = ClusterSets::singletons(3);
        let s = ClusterStamp::Full {
            clock: VectorClock::from_vec(vec![1, 2, 3]),
        };
        assert_eq!(s.component(&sets, p(2)), Some(3));
        assert!(s.is_cluster_receive());
        assert_eq!(s.actual_width(), 3);
    }
}
