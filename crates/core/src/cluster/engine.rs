//! The online cluster-timestamp engine and the queryable result.

use super::membership::ClusterSets;
use super::stamp::ClusterStamp;
use crate::clock::VectorClock;
use crate::clustering::Clustering;
use crate::fm::FmEngine;
use crate::strategy::{MergePolicy, StaticClusters};
use cts_model::{Event, EventId, ProcessId, Trace};

/// A cluster receive recorded as a gateway: the event's sequence number
/// within its process and where its full stamp lives.
#[derive(Clone, Copy, Debug)]
struct CrRecord {
    /// 1-based event index within the process.
    index: u32,
    /// Delivery position, where the `Full` stamp is stored.
    pos: u32,
}

/// Online construction of cluster timestamps (§2.3's creation algorithm).
///
/// Feed events in delivery order with [`accept`](Self::accept); call
/// [`finish`](Self::finish) for the queryable [`ClusterTimestamps`]. The
/// engine internally runs the Fidge/Mattern computation (which retains only
/// its frontier), classifies cluster receives against the *current* clusters,
/// consults the [`MergePolicy`] for mergeability, and keeps full stamps only
/// for non-mergeable cluster receives — "the algorithm deletes Fidge/Mattern
/// timestamps that are no longer needed".
///
/// `Clone` captures the complete engine state; see
/// [`snapshot`](Self::snapshot) for the live-query use case.
#[derive(Clone)]
pub struct ClusterEngine<S> {
    fm: FmEngine,
    sets: ClusterSets,
    policy: S,
    stamps: Vec<ClusterStamp>,
    /// Cluster receives per process, in increasing `index` order.
    crs: Vec<Vec<CrRecord>>,
    num_cluster_receives: usize,
    num_merges: usize,
}

impl<S: MergePolicy> ClusterEngine<S> {
    /// Engine starting from singleton clusters (dynamic strategies).
    pub fn new(num_processes: u32, policy: S) -> ClusterEngine<S> {
        ClusterEngine {
            fm: FmEngine::new(num_processes),
            sets: ClusterSets::singletons(num_processes),
            policy,
            stamps: Vec::new(),
            crs: vec![Vec::new(); num_processes as usize],
            num_cluster_receives: 0,
            num_merges: 0,
        }
    }

    /// Engine starting from a pre-determined partition (static two-pass
    /// mode; pair with [`StaticClusters`]).
    pub fn with_partition(
        num_processes: u32,
        clustering: &Clustering,
        policy: S,
    ) -> ClusterEngine<S> {
        ClusterEngine {
            fm: FmEngine::new(num_processes),
            sets: ClusterSets::from_partition(num_processes, clustering),
            policy,
            stamps: Vec::new(),
            crs: vec![Vec::new(); num_processes as usize],
            num_cluster_receives: 0,
            num_merges: 0,
        }
    }

    /// Accept the next event in delivery order.
    pub fn accept(&mut self, ev: Event) {
        let fm_stamp = self.fm.accept(ev);
        let p = ev.process();

        // Cluster-receive classification: a receiving event whose source
        // process is currently outside the receiver's cluster.
        let cr_source = match ev.kind.receive_source() {
            Some(src)
                if !{
                    let v = self.sets.current_version(p);
                    self.sets.contains(v, src.process)
                } =>
            {
                Some(src)
            }
            _ => None,
        };

        let stamp = match cr_source {
            None => {
                // Ordinary event: project onto the current cluster.
                let v = self.sets.current_version(p);
                ClusterStamp::Projected {
                    version: v,
                    clock: fm_stamp.project(self.sets.members(v)),
                }
            }
            Some(src) => {
                let ra = self.sets.find(p);
                let rb = self.sets.find(src.process);
                if self.policy.on_cluster_receive(ra, rb, &self.sets) {
                    // Mergeable: the merge makes this event no longer a
                    // cluster receive; project onto the merged cluster.
                    let (new_root, v) = self.sets.merge(ra, rb);
                    self.policy.after_merge(ra, rb, new_root);
                    self.num_merges += 1;
                    ClusterStamp::Projected {
                        version: v,
                        clock: fm_stamp.project(self.sets.members(v)),
                    }
                } else {
                    // Non-mergeable cluster receive: keep the full stamp and
                    // note it as the greatest cluster receive of `p` so far.
                    self.num_cluster_receives += 1;
                    self.crs[p.idx()].push(CrRecord {
                        index: ev.index().0,
                        pos: self.stamps.len() as u32,
                    });
                    ClusterStamp::Full { clock: fm_stamp }
                }
            }
        };
        self.stamps.push(stamp);
    }

    /// Coarsen the current clusters to realize `target`: every group of the
    /// target partition becomes one cluster, formed by merging the current
    /// clusters it contains. Panics if the target would *split* a current
    /// cluster (clusters may only grow, §1.2).
    ///
    /// This is the pivot of the collect-then-cluster hybrid
    /// ([`crate::hybrid`]): after a prefix of events has been observed with
    /// singleton clusters, the statically computed clustering is imposed and
    /// stamping continues.
    pub fn merge_partition(&mut self, target: &Clustering) {
        let n = self.sets.num_processes() as u32;
        target
            .validate(n)
            .expect("target clustering must partition the process set");
        // No current cluster may straddle two target groups.
        let assign = target.assignment(n);
        for group in self.sets.current_partition().clusters() {
            let g0 = assign[group[0].idx()];
            assert!(
                group.iter().all(|m| assign[m.idx()] == g0),
                "target clustering splits an existing cluster"
            );
        }
        for group in target.clusters() {
            let mut root = self.sets.find(group[0]);
            for &m in &group[1..] {
                let rm = self.sets.find(m);
                if rm != root {
                    let (new_root, _) = self.sets.merge(root, rm);
                    self.policy.after_merge(root, rm, new_root);
                    self.num_merges += 1;
                    root = new_root;
                }
            }
        }
    }

    /// Snapshot of the current partition (without consuming the engine).
    pub fn final_partition_snapshot(&self) -> Clustering {
        self.sets.current_partition()
    }

    /// A queryable snapshot of the timestamps built *so far*, without
    /// stopping the engine — the epoch-publication primitive of a live
    /// monitoring entity: ingest keeps calling [`accept`](Self::accept) on
    /// the original while query threads read the frozen copy.
    pub fn snapshot(&self) -> ClusterTimestamps
    where
        S: Clone,
    {
        self.clone().finish()
    }

    /// Finish, yielding the queryable timestamp structure.
    pub fn finish(self) -> ClusterTimestamps {
        ClusterTimestamps {
            sets: self.sets,
            stamps: self.stamps,
            crs: self.crs,
            num_cluster_receives: self.num_cluster_receives,
            num_merges: self.num_merges,
        }
    }

    /// Run over a complete trace.
    pub fn run(trace: &Trace, policy: S) -> ClusterTimestamps {
        let mut eng = ClusterEngine::new(trace.num_processes(), policy);
        eng.stamps.reserve(trace.num_events());
        for &ev in trace.events() {
            eng.accept(ev);
        }
        eng.finish()
    }
}

/// Two-pass static mode: timestamp `trace` against a pre-determined
/// clustering (first pass: compute the clustering; second pass: this).
pub fn run_static(trace: &Trace, clustering: &Clustering) -> ClusterTimestamps {
    let mut eng = ClusterEngine::with_partition(trace.num_processes(), clustering, StaticClusters);
    eng.stamps.reserve(trace.num_events());
    for &ev in trace.events() {
        eng.accept(ev);
    }
    eng.finish()
}

/// The complete cluster-timestamp structure for a trace: per-event stamps,
/// the cluster version history, and the per-process cluster-receive chains
/// used by precedence queries.
pub struct ClusterTimestamps {
    sets: ClusterSets,
    stamps: Vec<ClusterStamp>,
    crs: Vec<Vec<CrRecord>>,
    num_cluster_receives: usize,
    num_merges: usize,
}

impl ClusterTimestamps {
    /// Assemble a queryable timestamp structure from externally computed
    /// parts — the publication primitive of a *sharded* monitoring entity,
    /// where stamps are produced by per-process-group workers and only
    /// merged into one delivery order at snapshot time.
    ///
    /// `stamps` must be in delivery order of the assembled trace; `crs[p]`
    /// lists process `p`'s non-mergeable cluster receives as
    /// `(event index within p, delivery position)` pairs in increasing
    /// index order; `sets` must contain every version referenced by a
    /// `Projected` stamp. Exactness of `precedes` over the result requires
    /// the same invariants the online engine maintains: Fidge/Mattern
    /// clocks exact per event, and cluster membership observed monotonically
    /// along causal order (clusters only grow).
    pub fn from_parts(
        sets: ClusterSets,
        stamps: Vec<ClusterStamp>,
        crs: Vec<Vec<(u32, u32)>>,
        num_merges: usize,
    ) -> ClusterTimestamps {
        let num_cluster_receives = crs.iter().map(Vec::len).sum();
        let crs = crs
            .into_iter()
            .map(|list| {
                debug_assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
                list.into_iter()
                    .map(|(index, pos)| CrRecord { index, pos })
                    .collect()
            })
            .collect();
        ClusterTimestamps {
            sets,
            stamps,
            crs,
            num_cluster_receives,
            num_merges,
        }
    }

    /// The stamp of the event at a delivery position.
    pub fn stamp_at(&self, pos: usize) -> &ClusterStamp {
        &self.stamps[pos]
    }

    /// The stamp of an event.
    pub fn stamp(&self, trace: &Trace, id: EventId) -> &ClusterStamp {
        &self.stamps[trace.delivery_pos(id)]
    }

    /// All stamps in delivery order.
    pub fn stamps(&self) -> &[ClusterStamp] {
        &self.stamps
    }

    /// Number of non-mergeable cluster receives (the quantity every
    /// clustering strategy tries to minimize).
    pub fn num_cluster_receives(&self) -> usize {
        self.num_cluster_receives
    }

    /// Number of cluster merges performed by the dynamic strategy.
    pub fn num_merges(&self) -> usize {
        self.num_merges
    }

    /// The cluster version store (for stamp component lookups).
    pub fn sets(&self) -> &ClusterSets {
        &self.sets
    }

    /// The final partition of processes into clusters.
    pub fn final_partition(&self) -> Clustering {
        self.sets.current_partition()
    }

    /// Greatest cluster receive of process `q` with index ≤ `known`, if any.
    fn greatest_cr(&self, q: ProcessId, known: u32) -> Option<&ClusterStamp> {
        let list = &self.crs[q.idx()];
        let i = list.partition_point(|r| r.index <= known);
        if i == 0 {
            None
        } else {
            Some(&self.stamps[list[i - 1].pos as usize])
        }
    }

    /// The cluster-timestamp precedence test: `e → f`?
    ///
    /// Three cases, in increasing cost:
    ///
    /// 1. same process — compare sequence numbers;
    /// 2. `f`'s stamp knows `p_e` directly (full stamp, or projected with
    ///    `p_e` in the cluster) — one comparison;
    /// 3. otherwise `e` can only precede `f` through a cluster receive in
    ///    `f`'s cluster: check, for each member process `q`, the **greatest**
    ///    cluster receive of `q` within `f`'s past (monotonicity of
    ///    Fidge/Mattern stamps along a process makes the greatest one
    ///    sufficient) — O(c log R).
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let need = e.index.0;
        match &self.stamps[trace.delivery_pos(f)] {
            ClusterStamp::Full { clock } => clock.get(e.process) >= need,
            ClusterStamp::Projected { version, clock } => {
                if let Some(pos) = self.sets.position(*version, e.process) {
                    return clock[pos] >= need;
                }
                let members = self.sets.members(*version);
                for (pos, &q) in members.iter().enumerate() {
                    let known = clock[pos];
                    if known == 0 {
                        continue;
                    }
                    if let Some(ClusterStamp::Full { clock: cr }) = self.greatest_cr(q, known) {
                        if cr.get(e.process) >= need {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Are two events concurrent under this timestamp?
    pub fn concurrent(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        e != f && !self.precedes(trace, e, f) && !self.precedes(trace, f, e)
    }

    /// Reconstruct the exact Fidge/Mattern clock of `f` from its cluster
    /// stamp, in O(c·N) — one pass over the cluster members plus a
    /// `max_assign` per retained cluster receive.
    ///
    /// Why this is exact: a projected clock *is* the projection of `f`'s
    /// true Fidge/Mattern stamp onto the cluster members, so the direct
    /// components are already maximal. Every bit of knowledge `f` has
    /// about a process *outside* the cluster entered the cluster through
    /// some cluster receive at a member `q` with index ≤ `f`'s knowledge
    /// of `q`; cluster-receive stamps along a process line are monotone,
    /// so the greatest one within `f`'s past dominates all the others.
    /// Conversely every such stamp belongs to an event in `f`'s past, so
    /// no component can exceed the true clock.
    pub fn materialized_clock(&self, trace: &Trace, f: EventId) -> VectorClock {
        match &self.stamps[trace.delivery_pos(f)] {
            ClusterStamp::Full { clock } => clock.clone(),
            ClusterStamp::Projected { version, clock } => {
                let mut out = VectorClock::zero(self.crs.len());
                let members = self.sets.members(*version);
                for (pos, &q) in members.iter().enumerate() {
                    let known = clock[pos];
                    if known == 0 {
                        continue;
                    }
                    if known > out.get(q) {
                        out.set(q, known);
                    }
                    if let Some(ClusterStamp::Full { clock: cr }) = self.greatest_cr(q, known) {
                        out.max_assign(cr);
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{MergeOnFirst, MergeOnNth, NeverMerge};
    use cts_model::{EventIndex, Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn id(pr: u32, i: u32) -> EventId {
        EventId::new(p(pr), EventIndex(i))
    }

    /// Two chatty pairs (0,1) and (2,3) plus one bridge message 1→2.
    fn two_pairs_bridge() -> Trace {
        let mut b = TraceBuilder::new(4);
        for _ in 0..3 {
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
            let s = b.send(p(3), p(2)).unwrap();
            b.receive(p(2), s).unwrap();
        }
        let s = b.send(p(1), p(2)).unwrap();
        b.receive(p(2), s).unwrap();
        let s = b.send(p(2), p(3)).unwrap();
        b.receive(p(3), s).unwrap();
        b.finish_complete("two-pairs-bridge").unwrap()
    }

    fn check_against_oracle(trace: &Trace, cts: &ClusterTimestamps) {
        let oracle = Oracle::compute(trace);
        for e in trace.all_event_ids() {
            for f in trace.all_event_ids() {
                assert_eq!(
                    cts.precedes(trace, e, f),
                    oracle.happened_before(trace, e, f),
                    "{e} -> {f} mismatch"
                );
            }
        }
    }

    #[test]
    fn merge_on_first_exact_precedence() {
        let t = two_pairs_bridge();
        for max_cs in 1..=4 {
            let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
            check_against_oracle(&t, &cts);
        }
    }

    #[test]
    fn merge_on_nth_exact_precedence() {
        let t = two_pairs_bridge();
        for threshold in [0.0, 0.6, 2.0] {
            for max_cs in 1..=4 {
                let cts =
                    ClusterEngine::run(&t, MergeOnNth::new(t.num_processes(), max_cs, threshold));
                check_against_oracle(&t, &cts);
            }
        }
    }

    #[test]
    fn never_merge_exact_precedence() {
        let t = two_pairs_bridge();
        let cts = ClusterEngine::run(&t, NeverMerge);
        check_against_oracle(&t, &cts);
        // Every cross-process receive is a cluster receive.
        assert_eq!(cts.num_cluster_receives(), t.num_messages());
        assert_eq!(cts.num_merges(), 0);
    }

    #[test]
    fn static_partition_exact_precedence() {
        let t = two_pairs_bridge();
        let good = Clustering::new(vec![vec![p(0), p(1)], vec![p(2), p(3)]]).unwrap();
        let cts = run_static(&t, &good);
        check_against_oracle(&t, &cts);
        // Only the 1→2 bridge message crosses clusters (2→3 stays inside
        // {2,3}).
        assert_eq!(cts.num_cluster_receives(), 1);

        let bad = Clustering::new(vec![vec![p(0), p(2)], vec![p(1), p(3)]]).unwrap();
        let cts_bad = run_static(&t, &bad);
        check_against_oracle(&t, &cts_bad);
        assert!(cts_bad.num_cluster_receives() > cts.num_cluster_receives());
    }

    #[test]
    fn merge_on_first_clusters_the_pairs() {
        let t = two_pairs_bridge();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let part = cts.final_partition();
        let a = part.assignment(4);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[2], a[3]);
        assert_ne!(a[0], a[2]);
        // The 1→2 bridge is the only cluster receive (2→3 is intra-cluster).
        assert_eq!(cts.num_cluster_receives(), 1);
        assert_eq!(cts.num_merges(), 2);
    }

    /// A denser 8-process trace: ring sends plus stride-3 cross traffic,
    /// so projected stamps must route knowledge through cluster receives.
    fn ring_with_cross_traffic() -> Trace {
        let mut b = TraceBuilder::new(8);
        for round in 0..6u32 {
            for i in 0..8u32 {
                let s = b.send(p(i), p((i + 1) % 8)).unwrap();
                b.receive(p((i + 1) % 8), s).unwrap();
            }
            if round % 2 == 0 {
                for i in 0..8u32 {
                    let s = b.send(p(i), p((i + 3) % 8)).unwrap();
                    b.receive(p((i + 3) % 8), s).unwrap();
                }
            }
        }
        b.finish_complete("ring-cross").unwrap()
    }

    #[test]
    fn materialized_clock_matches_fm() {
        use crate::fm::FmStore;
        for t in [two_pairs_bridge(), ring_with_cross_traffic()] {
            let fm = FmStore::compute(&t);
            let n = t.num_processes();
            let mut engines: Vec<ClusterTimestamps> = Vec::new();
            for max_cs in [1, 2, 4] {
                engines.push(ClusterEngine::run(&t, MergeOnFirst::new(max_cs)));
                engines.push(ClusterEngine::run(&t, MergeOnNth::new(n, max_cs, 0.6)));
            }
            engines.push(ClusterEngine::run(&t, NeverMerge));
            for cts in &engines {
                for f in t.all_event_ids() {
                    let mat = cts.materialized_clock(&t, f);
                    assert_eq!(
                        mat.as_slice(),
                        fm.stamp(&t, f),
                        "materialized clock of {f} diverges from Fidge/Mattern"
                    );
                }
            }
        }
    }

    #[test]
    fn projected_stamps_match_fm_projection() {
        use crate::fm::FmStore;
        let t = two_pairs_bridge();
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(4));
        for (pos, _) in t.events().iter().enumerate() {
            match cts.stamp_at(pos) {
                ClusterStamp::Projected { version, clock } => {
                    let members = cts.sets().members(*version);
                    let full = fm.stamp_at(pos);
                    for (i, &q) in members.iter().enumerate() {
                        assert_eq!(clock[i], full[q.idx()]);
                    }
                }
                ClusterStamp::Full { clock } => {
                    assert_eq!(clock.as_slice(), fm.stamp_at(pos));
                }
            }
        }
    }

    #[test]
    fn sync_halves_and_clusters() {
        let mut b = TraceBuilder::new(3);
        b.sync(p(0), p(1)).unwrap();
        b.sync(p(1), p(2)).unwrap();
        b.sync(p(0), p(2)).unwrap();
        let t = b.finish_complete("sync-triangle").unwrap();
        for max_cs in 1..=3 {
            let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
            check_against_oracle(&t, &cts);
        }
        // With room for all three, the first sync merges 0 and 1.
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(3));
        assert_eq!(cts.final_partition().num_clusters(), 1);
    }

    #[test]
    fn snapshot_matches_prefix_run_and_engine_continues() {
        let t = two_pairs_bridge();
        let half = t.num_events() / 2;
        let mut eng = ClusterEngine::new(t.num_processes(), MergeOnFirst::new(2));
        for &ev in &t.events()[..half] {
            eng.accept(ev);
        }
        let snap = eng.snapshot();
        // The snapshot equals an engine run over just the prefix...
        let mut prefix_eng = ClusterEngine::new(t.num_processes(), MergeOnFirst::new(2));
        for &ev in &t.events()[..half] {
            prefix_eng.accept(ev);
        }
        let prefix = prefix_eng.finish();
        assert_eq!(snap.stamps().len(), half);
        assert_eq!(snap.stamps(), prefix.stamps());
        assert_eq!(snap.num_cluster_receives(), prefix.num_cluster_receives());
        // ...and the original engine keeps stamping, unaffected by the fork.
        for &ev in &t.events()[half..] {
            eng.accept(ev);
        }
        let full = eng.finish();
        let reference = ClusterEngine::run(&t, MergeOnFirst::new(2));
        assert_eq!(full.stamps(), reference.stamps());
        check_against_oracle(&t, &full);
    }

    #[test]
    fn chain_precedence_via_cluster_receives() {
        // 0 -> 1 -> 2 -> 3 pipeline with clusters capped at 2: precedence
        // from P0's send to P3's receive must route through CR chains.
        let mut b = TraceBuilder::new(4);
        for hop in 0..3u32 {
            let s = b.send(p(hop), p(hop + 1)).unwrap();
            b.receive(p(hop + 1), s).unwrap();
        }
        let e_last = b.internal(p(3)).unwrap();
        let t = b.finish_complete("pipeline").unwrap();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        assert!(cts.precedes(&t, id(0, 1), e_last));
        check_against_oracle(&t, &cts);
    }
}
