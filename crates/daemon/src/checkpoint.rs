//! Checkpoints, computation metadata, and the recovery scan.
//!
//! A checkpoint is *not* a serialized engine: by delivery-order invariance
//! (the property the whole workspace is built on), the `ClusterEngine` and
//! `EventStore` are pure functions of the delivered prefix, so the
//! checkpoint serializes exactly that — the store's delivery log
//! ([`cts_store::EventStore::delivery_log`]) — and recovery *recomputes*
//! state by replaying it through the normal ingest pipeline, then replays
//! the WAL tail on top. Checkpoints exist to bound recovery time and disk:
//! once one is durable, the WAL segments it covers are deleted.
//!
//! ## On-disk layout (per computation directory)
//!
//! ```text
//! meta                    computation parameters   (written once, CRC'd)
//! ckpt-<delivered>.ckpt   delivered prefix         (atomic tmp+rename)
//! wal-<start>.wal         delivered events > start (see crate::wal)
//! epochs                  retained-epoch marks     (atomic tmp+rename)
//! ```
//!
//! Checkpoint file:
//!
//! ```text
//! [8]  magic "CTSCKPT1"
//! [4]  u32 LE CRC-32 of the body
//! body = [u16 name][u32 num_processes][u32 max_cluster_size]
//!        [u64 delivered][u32 count][event...]          (wire codec)
//! ```
//!
//! Meta file: magic `"CTSMETA1"`, same CRC discipline, body without the
//! `delivered`/events part.
//!
//! ## Recovery state machine
//!
//! ```text
//! scan dir ─► pick newest checkpoint that passes CRC (older ones are
//!             fallbacks; a torn tmp file was never renamed, so a *named*
//!             checkpoint is complete or bit-rotted, never half-written)
//!          ─► scan WAL segments in start order, keeping the longest
//!             contiguous run of records continuing from the checkpoint;
//!             truncate the first torn tail and ignore anything beyond it
//!          ─► replay checkpoint events, then WAL-tail events, through the
//!             reorder buffer → engine → store (the normal pipeline)
//!          ─► open a fresh segment at the recovered offset; serve
//! ```

use crate::wal::{self, SegmentScan};
use cts_model::Event;
use cts_util::crc32::crc32;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"CTSCKPT1";
const META_MAGIC: &[u8; 8] = b"CTSMETA1";
const EPOCHS_MAGIC: &[u8; 8] = b"CTSEPOC1";

/// Durable computation parameters (the `meta` file).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompMeta {
    pub name: String,
    pub num_processes: u32,
    pub max_cluster_size: u32,
}

/// A loaded checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    pub meta: CompMeta,
    /// Events covered (== `events.len()`).
    pub delivered: u64,
    pub events: Vec<Event>,
}

fn encode_meta(meta: &CompMeta) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + meta.name.len() + 8);
    body.extend_from_slice(&(meta.name.len() as u16).to_le_bytes());
    body.extend_from_slice(meta.name.as_bytes());
    body.extend_from_slice(&meta.num_processes.to_le_bytes());
    body.extend_from_slice(&meta.max_cluster_size.to_le_bytes());
    body
}

struct MetaCursor<'a>(&'a [u8]);

impl<'a> MetaCursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(corrupt("truncated body"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn meta(&mut self) -> io::Result<CompMeta> {
        let name_len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(self.take(name_len)?.to_vec())
            .map_err(|_| corrupt("non-UTF-8 computation name"))?;
        let num_processes = u32::from_le_bytes(self.take(4)?.try_into().unwrap());
        let max_cluster_size = u32::from_le_bytes(self.take(4)?.try_into().unwrap());
        Ok(CompMeta {
            name,
            num_processes,
            max_cluster_size,
        })
    }
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt file: {what}"))
}

/// Wrap a body in `magic + crc` and write it via tmp+rename, syncing the
/// file and its directory so the rename is durable.
fn write_atomic(dir: &Path, name: &str, magic: &[u8; 8], body: &[u8]) -> io::Result<()> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(name))?;
    // Make the rename itself durable.
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Read and CRC-check a `magic + crc + body` file, returning the body.
fn read_checked(path: &Path, magic: &[u8; 8]) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < 12 || &buf[..8] != magic {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let body = buf.split_off(12);
    if crc32(&body) != crc {
        return Err(corrupt("CRC mismatch"));
    }
    Ok(body)
}

/// File name of the checkpoint covering `delivered` events.
pub fn checkpoint_name(delivered: u64) -> String {
    format!("ckpt-{delivered:016x}.ckpt")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Create `dir` (if needed) and its `meta` file; validate against an
/// existing one. This is the first durable act of a monitored computation.
pub fn ensure_meta(dir: &Path, meta: &CompMeta) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("meta");
    if path.exists() {
        let existing = load_meta(dir)?;
        if existing != *meta {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("computation directory {dir:?} belongs to {existing:?}, not {meta:?}"),
            ));
        }
        return Ok(());
    }
    write_atomic(dir, "meta", META_MAGIC, &encode_meta(meta))
}

/// Load and validate the `meta` file.
pub fn load_meta(dir: &Path) -> io::Result<CompMeta> {
    let body = read_checked(&dir.join("meta"), META_MAGIC)?;
    let mut c = MetaCursor(&body);
    let meta = c.meta()?;
    if !c.0.is_empty() {
        return Err(corrupt("trailing bytes in meta"));
    }
    Ok(meta)
}

/// Write the checkpoint covering `events` (the full delivered prefix, in
/// delivery order) atomically, then delete older checkpoints beyond the
/// most recent fallback and every WAL segment the new checkpoint covers.
pub fn write_checkpoint(dir: &Path, meta: &CompMeta, events: &[Event]) -> io::Result<()> {
    write_checkpoint_with_floor(dir, meta, events, u64::MAX)
}

/// As [`write_checkpoint`], but WAL segments holding events beyond
/// `retain_floor` are kept even when the checkpoint covers them: a retained
/// epoch (see [`cts_store::EpochRetainer`]) still references that part of
/// the delivered prefix, and the retention window promises the WAL bytes
/// behind every retained epoch outlive the epoch itself.
pub fn write_checkpoint_with_floor(
    dir: &Path,
    meta: &CompMeta,
    events: &[Event],
    retain_floor: u64,
) -> io::Result<()> {
    let delivered = events.len() as u64;
    let mut body = encode_meta(meta);
    body.extend_from_slice(&delivered.to_le_bytes());
    crate::wire::encode_event_block(&mut body, events);
    write_atomic(dir, &checkpoint_name(delivered), CKPT_MAGIC, &body)?;

    // Retire what the checkpoint covers: older checkpoints (keep one
    // fallback) and fully covered WAL segments.
    let mut older: Vec<u64> = list_checkpoints(dir)?
        .into_iter()
        .map(|(d, _)| d)
        .filter(|&d| d < delivered)
        .collect();
    older.sort_unstable();
    for &d in older.iter().rev().skip(1) {
        let _ = std::fs::remove_file(dir.join(checkpoint_name(d)));
    }
    for (start, path) in wal::list_segments(dir)? {
        // A segment starting at `start` holds events `start+1..`; it is
        // fully covered only if the *next* segment starts at or before
        // `delivered` — conservatively, delete segments whose successor
        // exists and starts ≤ delivered. Simpler and safe: scan-free rule
        // using names only would be wrong for the active segment, so keep
        // any segment that might hold events > delivered.
        if start >= delivered {
            continue;
        }
        if let Ok(scan) = wal::scan_segment(&path) {
            if scan.end_offset() <= delivered.min(retain_floor) && scan.torn.is_none() {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    Ok(())
}

/// Persist the retained-epoch marks: `(epoch, delivered)` pairs, oldest
/// first. Rewritten (atomically) on every publish of a durable single-mode
/// computation, so a restart can republish the same epochs at the same
/// delivered offsets during recovery replay — retained history survives a
/// crash. Best-effort: a lost marks file costs retained epochs, not events.
pub fn write_epoch_marks(dir: &Path, marks: &[(u64, u64)]) -> io::Result<()> {
    let mut body = Vec::with_capacity(4 + marks.len() * 16);
    body.extend_from_slice(&(marks.len() as u32).to_le_bytes());
    for &(epoch, delivered) in marks {
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(&delivered.to_le_bytes());
    }
    write_atomic(dir, "epochs", EPOCHS_MAGIC, &body)
}

/// Load the retained-epoch marks, oldest first. A missing file is an empty
/// list (fresh directory, or one written before retention existed).
pub fn load_epoch_marks(dir: &Path) -> io::Result<Vec<(u64, u64)>> {
    let path = dir.join("epochs");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let body = read_checked(&path, EPOCHS_MAGIC)?;
    let mut c = MetaCursor(&body);
    let count = u32::from_le_bytes(c.take(4)?.try_into().unwrap()) as usize;
    let mut marks = Vec::with_capacity(count);
    for _ in 0..count {
        let epoch = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
        let delivered = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
        marks.push((epoch, delivered));
    }
    if !c.0.is_empty() {
        return Err(corrupt("trailing bytes in epochs"));
    }
    Ok(marks)
}

/// All checkpoints in `dir` by delivered count (unvalidated), sorted.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(d) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            out.push((d, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Load the newest checkpoint that passes validation, if any.
pub fn load_latest_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    load_latest_checkpoint_named(dir, None)
}

/// As [`load_latest_checkpoint`], but when `expected_name` is given, a
/// checkpoint embedding a *different* computation name is a hard error, not
/// a fallback: unlike bit-rot, a cross-computation checkpoint means the
/// directory was mixed up (a copied data dir, a bad `--follow` target, a
/// subscription answered from the wrong computation), and silently skipping
/// it would replay someone else's event stream or a half-empty one.
pub fn load_latest_checkpoint_named(
    dir: &Path,
    expected_name: Option<&str>,
) -> io::Result<Option<Checkpoint>> {
    for (delivered, path) in list_checkpoints(dir)?.into_iter().rev() {
        match load_checkpoint(&path) {
            Ok(ckpt) if ckpt.delivered == delivered => {
                if let Some(want) = expected_name {
                    if ckpt.meta.name != want {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "checkpoint {} belongs to computation {:?}, not {:?} — \
                                 refusing a cross-computation directory",
                                path.display(),
                                ckpt.meta.name,
                                want
                            ),
                        ));
                    }
                }
                return Ok(Some(ckpt));
            }
            Ok(_) | Err(_) => continue, // bit-rot or size mismatch: fall back
        }
    }
    Ok(None)
}

fn load_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let body = read_checked(path, CKPT_MAGIC)?;
    let mut c = MetaCursor(&body);
    let meta = c.meta()?;
    let delivered = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
    let events = crate::wire::decode_event_block(c.0).map_err(|e| corrupt(&e.to_string()))?;
    if events.len() as u64 != delivered {
        return Err(corrupt("checkpoint event count mismatch"));
    }
    Ok(Checkpoint {
        meta,
        delivered,
        events,
    })
}

/// What a recovery scan found and did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Events restored from the newest valid checkpoint.
    pub checkpoint_events: u64,
    /// Events restored from WAL segments beyond the checkpoint.
    pub wal_events: u64,
    /// WAL segments read.
    pub segments_scanned: usize,
    /// Bytes cut off a torn segment tail (0 when clean).
    pub torn_bytes_truncated: u64,
    /// Human-readable description of the tear, if one was found.
    pub torn_tail: Option<String>,
}

impl RecoveryReport {
    /// Total events restored.
    pub fn total_events(&self) -> u64 {
        self.checkpoint_events + self.wal_events
    }
}

/// The full recovery scan for one computation directory: newest valid
/// checkpoint plus the longest contiguous WAL run on top, with the first
/// torn tail physically truncated. Returns the replay list (a prefix of a
/// valid delivery order) and the offset new WAL segments must continue
/// from.
pub fn recover_dir(dir: &Path) -> io::Result<(Vec<Event>, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let mut events: Vec<Event> = Vec::new();
    let mut next_offset = 1u64; // delivery offset the replay expects next

    // When the directory carries a `meta` file, any checkpoint replayed
    // from it must embed the same computation name — a mismatch is a
    // mixed-up directory, refused rather than replayed.
    let expected_name = match load_meta(dir) {
        Ok(m) => Some(m.name),
        Err(_) => None, // no (or unreadable) meta: legacy dir, best effort
    };
    if let Some(ckpt) = load_latest_checkpoint_named(dir, expected_name.as_deref())? {
        report.checkpoint_events = ckpt.delivered;
        next_offset = ckpt.delivered + 1;
        events = ckpt.events;
    }

    for (start, path) in wal::list_segments(dir)? {
        // Segments fully covered by the checkpoint may survive (deletion is
        // best-effort); skip them. Segments starting beyond the contiguous
        // frontier are unreachable (can only appear after an earlier tear)
        // and are ignored.
        let scan: SegmentScan = wal::scan_segment(&path)?;
        report.segments_scanned += 1;
        if let Some(kind) = scan.torn {
            let file_len = std::fs::metadata(&path)?.len();
            report.torn_bytes_truncated += file_len - scan.valid_len;
            report.torn_tail = Some(format!("{}: {kind}", path.display()));
            wal::truncate_segment(&path, scan.valid_len)?;
        }
        if scan.end_offset() < next_offset {
            continue; // nothing new in here
        }
        if start >= next_offset {
            // A gap (possible only after an earlier tear): events beyond it
            // cannot be applied.
            break;
        }
        for rec in &scan.records {
            for (i, &ev) in rec.events.iter().enumerate() {
                let offset = rec.first_offset + i as u64;
                if offset == next_offset {
                    events.push(ev);
                    next_offset += 1;
                    report.wal_events += 1;
                }
            }
        }
        if scan.torn.is_some() {
            break; // nothing beyond a tear is contiguous
        }
    }
    Ok((events, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use cts_workloads::{spmd::Stencil1D, Workload};
    use std::time::Duration;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cts-ckpt-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta() -> CompMeta {
        CompMeta {
            name: "pvm/stencil".into(),
            num_processes: 6,
            max_cluster_size: 4,
        }
    }

    fn sample_events() -> Vec<Event> {
        Stencil1D { procs: 6, iters: 4 }
            .generate(11)
            .events()
            .to_vec()
    }

    #[test]
    fn meta_roundtrips_and_guards_mismatch() {
        let dir = tmpdir("meta");
        ensure_meta(&dir, &meta()).unwrap();
        assert_eq!(load_meta(&dir).unwrap(), meta());
        // Re-ensuring with identical parameters is idempotent.
        ensure_meta(&dir, &meta()).unwrap();
        // A different shape under the same directory is refused.
        let other = CompMeta {
            num_processes: 9,
            ..meta()
        };
        assert!(ensure_meta(&dir, &other).is_err());
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = tmpdir("ckpt");
        let events = sample_events();
        ensure_meta(&dir, &meta()).unwrap();
        write_checkpoint(&dir, &meta(), &events[..20]).unwrap();
        let ckpt = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ckpt.meta, meta());
        assert_eq!(ckpt.delivered, 20);
        assert_eq!(ckpt.events, events[..20]);
    }

    #[test]
    fn newest_valid_checkpoint_wins_and_bitrot_falls_back() {
        let dir = tmpdir("fallback");
        let events = sample_events();
        write_checkpoint(&dir, &meta(), &events[..10]).unwrap();
        write_checkpoint(&dir, &meta(), &events[..30]).unwrap();
        // Corrupt the newest: recovery falls back to the older one.
        let newest = dir.join(checkpoint_name(30));
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        let ckpt = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ckpt.delivered, 10);
    }

    #[test]
    fn recover_dir_stitches_checkpoint_and_wal_tail() {
        let dir = tmpdir("stitch");
        let events = sample_events();
        write_checkpoint(&dir, &meta(), &events[..20]).unwrap();
        let mut w = WalWriter::create(&dir, 20, Duration::ZERO).unwrap();
        w.append(&events[20..35]).unwrap();
        w.append(&events[35..50]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (replay, report) = recover_dir(&dir).unwrap();
        assert_eq!(replay, events[..50]);
        assert_eq!(report.checkpoint_events, 20);
        assert_eq!(report.wal_events, 30);
        assert!(report.torn_tail.is_none());
    }

    #[test]
    fn recover_dir_overlapping_wal_is_deduplicated() {
        // A WAL segment that starts *before* the checkpoint frontier (its
        // deletion raced a crash): only the uncovered suffix is replayed.
        let dir = tmpdir("overlap");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..30]).unwrap();
        w.sync().unwrap();
        drop(w);
        write_checkpoint(&dir, &meta(), &events[..20]).unwrap();
        // write_checkpoint keeps the segment (it extends past 20).
        let (replay, report) = recover_dir(&dir).unwrap();
        assert_eq!(replay, events[..30]);
        assert_eq!(report.checkpoint_events, 20);
        assert_eq!(report.wal_events, 10);
    }

    #[test]
    fn recover_dir_without_checkpoint_replays_wal_only() {
        let dir = tmpdir("walonly");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..25]).unwrap();
        w.sync().unwrap();
        drop(w);
        let (replay, report) = recover_dir(&dir).unwrap();
        assert_eq!(replay, events[..25]);
        assert_eq!(report.checkpoint_events, 0);
        assert_eq!(report.wal_events, 25);
    }

    #[test]
    fn recover_dir_empty_is_empty() {
        let dir = tmpdir("fresh");
        let (replay, report) = recover_dir(&dir).unwrap();
        assert!(replay.is_empty());
        assert_eq!(report.total_events(), 0);
    }

    #[test]
    fn cross_computation_checkpoint_is_refused() {
        // A checkpoint copied in from another computation's directory must
        // fail recovery loudly, not replay the wrong event stream.
        let dir = tmpdir("mixup");
        let events = sample_events();
        ensure_meta(&dir, &meta()).unwrap();
        let other = CompMeta {
            name: "web/other".into(),
            ..meta()
        };
        write_checkpoint(&dir, &other, &events[..20]).unwrap();
        let err = recover_dir(&dir).unwrap_err();
        assert!(
            err.to_string().contains("web/other"),
            "error should name the interloper: {err}"
        );
        assert!(load_latest_checkpoint_named(&dir, Some("pvm/stencil")).is_err());
        // The same checkpoint under its *own* name loads fine.
        assert!(load_latest_checkpoint_named(&dir, Some("web/other"))
            .unwrap()
            .is_some());
        // And a matching checkpoint recovers green.
        let _ = std::fs::remove_file(dir.join(checkpoint_name(20)));
        write_checkpoint(&dir, &meta(), &events[..20]).unwrap();
        let (replay, _) = recover_dir(&dir).unwrap();
        assert_eq!(replay, events[..20]);
    }

    #[test]
    fn epoch_marks_roundtrip_and_missing_is_empty() {
        let dir = tmpdir("marks");
        assert_eq!(load_epoch_marks(&dir).unwrap(), Vec::new());
        let marks = vec![(3, 120), (4, 180), (7, 400)];
        write_epoch_marks(&dir, &marks).unwrap();
        assert_eq!(load_epoch_marks(&dir).unwrap(), marks);
        // Rewrite shrinks (GC retired the oldest).
        write_epoch_marks(&dir, &marks[1..]).unwrap();
        assert_eq!(load_epoch_marks(&dir).unwrap(), marks[1..]);
    }

    #[test]
    fn retain_floor_keeps_covered_segments() {
        let dir = tmpdir("floor");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..20]).unwrap();
        w.sync().unwrap();
        drop(w);
        // The checkpoint covers the segment, but a retained epoch at
        // delivered=10 still references events inside it: keep it.
        write_checkpoint_with_floor(&dir, &meta(), &events[..20], 10).unwrap();
        assert_eq!(wal::list_segments(&dir).unwrap().len(), 1);
        // Once the floor passes the segment's end, it is retired.
        write_checkpoint_with_floor(&dir, &meta(), &events[..20], 20).unwrap();
        assert!(wal::list_segments(&dir).unwrap().is_empty());
    }

    #[test]
    fn checkpoint_retires_covered_segments() {
        let dir = tmpdir("retire");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..20]).unwrap();
        w.sync().unwrap();
        drop(w);
        write_checkpoint(&dir, &meta(), &events[..20]).unwrap();
        assert!(wal::list_segments(&dir).unwrap().is_empty());
        // Recovery equals the checkpoint alone.
        let (replay, _) = recover_dir(&dir).unwrap();
        assert_eq!(replay, events[..20]);
    }
}
