//! The shard-autoscaling soak: stream planted-imbalance fixtures (one hot
//! process group) through a daemon running `--shards auto`, sample the
//! [`Msg::QueryPlacement`](crate::wire::Msg::QueryPlacement) wire verb while
//! ingest is still in flight, then re-run the full differential suite over
//! the same computations. The gate is twofold: the placement engine must
//! have applied at least one autoscale action (a dead autoscaler fails the
//! soak even when the answers are right), and every differentially checked
//! answer must match the offline engine bit for bit — splits and retires
//! are not allowed to perturb a single stamp.

use crate::client::Placement;
use crate::loadgen::{self, LoadConfig, LoadReport};
use crate::Client;
use cts_model::{ProcessId, Trace, TraceBuilder};
use cts_workloads::suite::{Env, SuiteEntry};
use std::io;

/// Planted imbalance: `groups` rings of `width` processes each; every cycle,
/// group 0 runs `hot_factor` intra-group rounds while the other groups run
/// one. Under the daemon's contiguous initial routing the low-numbered
/// block — group 0 included — lands on shard 0 and makes it hot, which is
/// exactly the signal the placement engine's occupancy EWMAs key off.
pub fn hot_group_trace(groups: u32, width: u32, cycles: u32, hot_factor: u32) -> Trace {
    assert!(groups >= 2 && width >= 2 && hot_factor >= 1);
    let mut b = TraceBuilder::new(groups * width);
    let ring = |b: &mut TraceBuilder, g: u32| {
        let base = g * width;
        for k in 0..width {
            let from = ProcessId(base + k);
            let to = ProcessId(base + (k + 1) % width);
            let tok = b.send(from, to).expect("ring send");
            b.receive(to, tok).expect("ring receive");
        }
    };
    for _ in 0..cycles {
        for r in 0..hot_factor {
            ring(&mut b, 0);
            if r == 0 {
                for g in 1..groups {
                    ring(&mut b, g);
                }
            }
        }
    }
    b.finish_complete(format!("place/hot-{groups}g{width}w-x{hot_factor}"))
        .expect("complete trace")
}

/// The soak's fixtures: two hot-group plants with different shapes.
pub fn place_suite() -> Vec<SuiteEntry> {
    [hot_group_trace(6, 4, 8, 32), hot_group_trace(8, 3, 6, 24)]
        .into_iter()
        .map(|trace| SuiteEntry {
            name: trace.name().to_string(),
            env: Env::Synthetic,
            trace,
        })
        .collect()
}

/// Outcome of [`run_place_soak`].
#[derive(Debug)]
pub struct PlaceReport {
    /// The differential re-verification over the same computations.
    pub load: LoadReport,
    /// Final placement sample per fixture.
    pub placements: Vec<(String, Placement)>,
}

impl PlaceReport {
    /// Autoscale actions (splits + retires) across all fixtures.
    pub fn rescales(&self) -> u64 {
        self.placements.iter().map(|(_, p)| p.rescales).sum()
    }

    /// Zero mismatches *and* a live autoscaler.
    pub fn passed(&self) -> bool {
        self.load.mismatches == 0 && self.rescales() >= 1
    }

    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, p) in &self.placements {
            let occ: Vec<String> = p
                .occupancy_q16
                .iter()
                .map(|&q| format!("{:.2}", q as f64 / 65536.0))
                .collect();
            let _ = writeln!(
                out,
                "{name}: shards={} rescales={} steals={} pinned={} occupancy=[{}]",
                p.shards,
                p.rescales,
                p.steals,
                p.pinned,
                occ.join(" "),
            );
        }
        out.push_str(&self.load.render());
        out
    }
}

/// Events per wire frame during the plant phase. Deliberately small: the
/// placement engine paces itself in shard *messages* (cooldowns, EWMA
/// decay), so the plant must arrive as enough messages to warm the EWMAs
/// and clear the decision cooldown before the fixture runs out.
const PLANT_BATCH: usize = 16;

/// Stream the planted fixtures through the daemon at `cfg.addr` (which must
/// be running `--shards auto`), sampling the placement at three cuts per
/// fixture, then run the standard differential suite over the same
/// computations. See [`PlaceReport::passed`] for the gate.
pub fn run_place_soak(cfg: &LoadConfig) -> io::Result<PlaceReport> {
    let entries = place_suite();
    eprintln!(
        "[cts-loadgen] place soak: {} planted fixtures, {} events, {}-event frames",
        entries.len(),
        entries.iter().map(|e| e.trace.num_events()).sum::<usize>(),
        PLANT_BATCH
    );
    let mut placements = Vec::new();
    for entry in &entries {
        let mut client = Client::connect(cfg.addr)?;
        client.proto_hello()?;
        client.hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )?;
        let events = entry.trace.events();
        // Three cuts: the placement verb answers mid-stream, not just at
        // the end, and the flushes prove cuts interleave with rescales.
        let cuts = [events.len() / 3, 2 * events.len() / 3, events.len()];
        let mut from = 0usize;
        let mut last: Option<Placement> = None;
        for cut in cuts {
            client.stream_events(&events[from..cut], PLANT_BATCH)?;
            client.flush(cut as u64)?;
            last = Some(client.placement()?);
            from = cut;
        }
        placements.push((entry.name.clone(), last.expect("three cuts sampled")));
        client.goodbye()?;
    }
    // Differential re-verify: re-streams the same computations (shuffled,
    // with duplicates) and checks every query against the offline engine.
    let load = loadgen::run(&entries, cfg)?;
    Ok(PlaceReport { load, placements })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_group_trace_is_complete_and_skewed() {
        let t = hot_group_trace(6, 4, 2, 8);
        assert_eq!(t.num_processes(), 24);
        // Group 0 carries hot_factor rings per cycle vs 1 for each other
        // group — the skew the occupancy EWMAs key off is per group (per
        // shard), so compare against a single cold group, not all five.
        let hot_events = t.events().iter().filter(|e| e.process().0 < 4).count();
        let cold_events = t.events().len() - hot_events;
        let cold_per_group = cold_events / 5;
        assert!(
            hot_events > 4 * cold_per_group,
            "plant not hot: {hot_events} vs {cold_per_group} per cold group"
        );
    }
}
