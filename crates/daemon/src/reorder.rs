//! Causal-delivery reorder buffer.
//!
//! Clients stream events over independent TCP connections, so the daemon
//! observes an arbitrary interleaving — possibly with per-stream reordering
//! (retransmits, multi-path splits) and duplicates. The timestamp engine,
//! however, requires a *valid delivery order* (per-process sequence order,
//! receives after their sends, sync halves adjacent —
//! `cts_model::linearize::is_valid_delivery_order`). [`ReorderBuffer`] sits
//! between the two: events go in however they arrive, and come out in a
//! valid delivery order, exactly once each.
//!
//! The buffer is O(1) amortized per event: an event that cannot yet be
//! delivered is parked under the single *blocker* it is waiting for (its
//! process predecessor, its message source, or its sync partner), and a
//! worklist cascade re-examines exactly the parked events whose blocker just
//! arrived or got delivered.

use cts_model::{Event, EventId, EventIndex, EventKind, ProcessId};
use std::collections::HashMap;

/// An event the buffer cannot accept at all (as opposed to "not yet").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The event names a process outside the computation.
    UnknownProcess,
    /// A different event with the same id was already observed — the stream
    /// is corrupt, not merely reordered.
    ConflictingDuplicate,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownProcess => write!(f, "event names an unknown process"),
            RejectReason::ConflictingDuplicate => {
                write!(f, "conflicting event already observed under the same id")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// Reorders an arbitrary arrival interleaving into a valid delivery order.
#[derive(Clone, Debug)]
pub struct ReorderBuffer {
    num_processes: u32,
    /// Events observed but not yet deliverable, by id.
    pending: HashMap<EventId, Event>,
    /// Per-process count of delivered events (index of the last delivered).
    delivered: Vec<u32>,
    /// blocker id → events parked until that blocker arrives/delivers.
    waiting: HashMap<EventId, Vec<EventId>>,
    duplicates: u64,
    delivered_total: u64,
    peak_depth: usize,
}

impl ReorderBuffer {
    /// An empty buffer for a computation with `num_processes` processes.
    pub fn new(num_processes: u32) -> ReorderBuffer {
        ReorderBuffer {
            num_processes,
            pending: HashMap::new(),
            delivered: vec![0; num_processes as usize],
            waiting: HashMap::new(),
            duplicates: 0,
            delivered_total: 0,
            peak_depth: 0,
        }
    }

    /// Offer one observed event. Returns the events that became deliverable,
    /// in a valid delivery order (possibly empty; possibly several when this
    /// arrival unblocks a parked chain).
    pub fn offer(&mut self, ev: Event) -> Result<Vec<Event>, RejectReason> {
        let p = ev.process();
        if p.0 >= self.num_processes {
            return Err(RejectReason::UnknownProcess);
        }
        if ev.index().0 <= self.delivered[p.idx()] {
            // Already delivered: a duplicate (retransmit). Drop silently
            // unless it contradicts what we delivered — we no longer keep
            // delivered events, so only pending conflicts are detectable.
            self.duplicates += 1;
            return Ok(Vec::new());
        }
        if let Some(existing) = self.pending.get(&ev.id) {
            if *existing != ev {
                return Err(RejectReason::ConflictingDuplicate);
            }
            self.duplicates += 1;
            return Ok(Vec::new());
        }
        self.pending.insert(ev.id, ev);
        self.peak_depth = self.peak_depth.max(self.pending.len());

        // Worklist: this event, plus anything parked waiting for it.
        let mut work = vec![ev.id];
        if let Some(parked) = self.waiting.remove(&ev.id) {
            work.extend(parked);
        }
        let mut out = Vec::new();
        while let Some(id) = work.pop() {
            let Some(&cand) = self.pending.get(&id) else {
                continue; // already delivered by an earlier cascade step
            };
            match self.blocker_of(cand) {
                Some(blocker) => self.park(id, blocker),
                None => self.deliver(cand, &mut out, &mut work),
            }
        }
        Ok(out)
    }

    /// The single event `ev` is waiting for, or `None` if deliverable now.
    fn blocker_of(&self, ev: Event) -> Option<EventId> {
        let p = ev.process();
        let next = self.delivered[p.idx()] + 1;
        if ev.index().0 > next {
            // A process predecessor is missing; park under the immediate
            // predecessor — its own delivery cascades one step at a time.
            return Some(EventId::new(p, EventIndex(ev.index().0 - 1)));
        }
        debug_assert_eq!(ev.index().0, next);
        match ev.kind {
            EventKind::Internal | EventKind::Send { .. } => None,
            EventKind::Receive { from } => {
                if from.process.0 >= self.num_processes {
                    // Dangling source: undeliverable, parked forever. The
                    // store would reject it anyway; sessions detect the
                    // stall via Flush timeouts.
                    return Some(from);
                }
                if self.delivered[from.process.idx()] >= from.index.0 {
                    None
                } else {
                    Some(from)
                }
            }
            EventKind::Sync { peer } => {
                if peer.process.0 >= self.num_processes {
                    return Some(peer);
                }
                match self.pending.get(&peer) {
                    // Partner present and also next-in-line: both go.
                    Some(partner)
                        if partner.index().0 == self.delivered[peer.process.idx()] + 1 =>
                    {
                        None
                    }
                    // Partner present but early in its own process: its own
                    // predecessor chain will wake it, and delivering *it*
                    // delivers us.
                    Some(partner) => Some(EventId::new(
                        peer.process,
                        EventIndex(partner.index().0 - 1),
                    )),
                    // Partner not seen yet: wake on its arrival.
                    None => Some(peer),
                }
            }
        }
    }

    fn park(&mut self, id: EventId, blocker: EventId) {
        let list = self.waiting.entry(blocker).or_default();
        if !list.contains(&id) {
            list.push(id);
        }
    }

    /// Deliver `ev` (and, for a sync, its partner adjacently), appending to
    /// `out` and waking waiters onto `work`.
    fn deliver(&mut self, ev: Event, out: &mut Vec<Event>, work: &mut Vec<EventId>) {
        self.deliver_one(ev, out, work);
        if let EventKind::Sync { peer } = ev.kind {
            let partner = self
                .pending
                .get(&peer)
                .copied()
                .expect("sync delivery requires the pending partner");
            self.deliver_one(partner, out, work);
        }
    }

    fn deliver_one(&mut self, ev: Event, out: &mut Vec<Event>, work: &mut Vec<EventId>) {
        self.pending.remove(&ev.id);
        self.delivered[ev.process().idx()] = ev.index().0;
        self.delivered_total += 1;
        out.push(ev);
        if let Some(parked) = self.waiting.remove(&ev.id) {
            work.extend(parked);
        }
    }

    /// Number of processes this buffer was created for.
    pub fn num_processes(&self) -> u32 {
        self.num_processes
    }

    /// Total events delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Duplicate arrivals dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Events currently parked (observed, not yet deliverable).
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of [`depth`](Self::depth).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

/// Callbacks a [`ShardReorderBuffer`] uses to resolve the dependencies it
/// cannot see locally, and to hand over delivered events.
///
/// A shard owns a subset of the processes. Edges whose far end lives on
/// another shard (a receive whose send is foreign, a sync whose peer is
/// foreign) are resolved through these hooks — in production against the
/// cross-shard clock exchange, in the deterministic schedule harness against
/// a single-threaded simulation.
///
/// `deliver` is invoked *during* the cascade, one event at a time, so that a
/// later readiness probe in the same cascade (notably `sync_ready`, which
/// publishes the pre-sync frontier) observes the effects of everything
/// delivered before it.
pub trait ShardHooks {
    /// Is the foreign send's clock available? A `false` return MUST register
    /// this shard for a wake-up when it becomes available. Called only when
    /// the receive is otherwise next-in-line; may be called repeatedly for
    /// the same id.
    fn send_ready(&mut self, send: EventId) -> bool;

    /// Is the foreign sync peer ready? Implementations publish `my_half`'s
    /// pre-sync frontier (idempotently) and probe the peer's, registering
    /// for a wake-up on `peer` if it is not there yet. Called only when
    /// `my_half` is next-in-line on its own process.
    fn sync_ready(&mut self, my_half: EventId, peer: EventId) -> bool;

    /// `ev` is delivered: apply it to the engine state (store, clocks,
    /// stamps) before the cascade continues.
    fn deliver(&mut self, ev: Event);
}

/// A [`ReorderBuffer`] that owns only a subset of the processes and resolves
/// cross-shard edges through [`ShardHooks`].
///
/// Differences from the single-owner buffer:
///
/// - per-process watermarks are authoritative only for *owned* processes;
///   events are offered only for owned processes (the runtime routes);
/// - a receive from a foreign process parks under the send id until the
///   exchange wakes us ([`ShardReorderBuffer::wake`]);
/// - a sync with a foreign peer delivers *only its own half* (the peer's
///   shard delivers the other); both halves still compute the identical
///   combined clock from the exchanged pre-sync frontiers;
/// - processes can be released to and adopted from another shard at a
///   rebalance barrier ([`release_process`](Self::release_process) /
///   [`adopt_process`](Self::adopt_process) /
///   [`reexamine_process`](Self::reexamine_process)).
#[derive(Clone, Debug)]
pub struct ShardReorderBuffer {
    num_processes: u32,
    owned: Vec<bool>,
    pending: HashMap<EventId, Event>,
    delivered: Vec<u32>,
    waiting: HashMap<EventId, Vec<EventId>>,
    duplicates: u64,
    delivered_total: u64,
    peak_depth: usize,
}

impl ShardReorderBuffer {
    /// An empty buffer owning the processes for which `owned` is true.
    pub fn new(num_processes: u32, owned: Vec<bool>) -> ShardReorderBuffer {
        assert_eq!(owned.len(), num_processes as usize);
        ShardReorderBuffer {
            num_processes,
            owned,
            pending: HashMap::new(),
            delivered: vec![0; num_processes as usize],
            waiting: HashMap::new(),
            duplicates: 0,
            delivered_total: 0,
            peak_depth: 0,
        }
    }

    /// Does this shard currently own process `p`?
    pub fn owns(&self, p: ProcessId) -> bool {
        (p.0 as usize) < self.owned.len() && self.owned[p.idx()]
    }

    /// Offer one event of an owned process. Returns how many events were
    /// delivered (each passed to `hooks.deliver` during the cascade).
    pub fn offer<H: ShardHooks>(&mut self, ev: Event, hooks: &mut H) -> Result<u64, RejectReason> {
        let p = ev.process();
        if p.0 >= self.num_processes {
            return Err(RejectReason::UnknownProcess);
        }
        assert!(self.owned[p.idx()], "event routed to a non-owning shard");
        if ev.index().0 <= self.delivered[p.idx()] {
            self.duplicates += 1;
            return Ok(0);
        }
        if let Some(existing) = self.pending.get(&ev.id) {
            if *existing != ev {
                return Err(RejectReason::ConflictingDuplicate);
            }
            self.duplicates += 1;
            return Ok(0);
        }
        self.pending.insert(ev.id, ev);
        self.peak_depth = self.peak_depth.max(self.pending.len());

        let mut work = vec![ev.id];
        if let Some(parked) = self.waiting.remove(&ev.id) {
            work.extend(parked);
        }
        Ok(self.cascade(work, hooks))
    }

    /// A cross-shard blocker `id` became available (the exchange published
    /// it): re-examine everything parked under it.
    pub fn wake<H: ShardHooks>(&mut self, id: EventId, hooks: &mut H) -> u64 {
        match self.waiting.remove(&id) {
            Some(parked) => self.cascade(parked, hooks),
            None => 0,
        }
    }

    fn cascade<H: ShardHooks>(&mut self, mut work: Vec<EventId>, hooks: &mut H) -> u64 {
        let mut delivered = 0;
        while let Some(id) = work.pop() {
            let Some(&cand) = self.pending.get(&id) else {
                continue;
            };
            match self.blocker_of(cand, hooks) {
                Some(blocker) => self.park(id, blocker),
                None => self.deliver(cand, &mut delivered, &mut work, hooks),
            }
        }
        delivered
    }

    fn blocker_of<H: ShardHooks>(&self, ev: Event, hooks: &mut H) -> Option<EventId> {
        let p = ev.process();
        let next = self.delivered[p.idx()] + 1;
        if ev.index().0 > next {
            return Some(EventId::new(p, EventIndex(ev.index().0 - 1)));
        }
        debug_assert_eq!(ev.index().0, next);
        match ev.kind {
            EventKind::Internal | EventKind::Send { .. } => None,
            EventKind::Receive { from } => {
                if from.process.0 >= self.num_processes {
                    return Some(from); // dangling source: parked forever
                }
                if self.owned[from.process.idx()] {
                    if self.delivered[from.process.idx()] >= from.index.0 {
                        None
                    } else {
                        Some(from)
                    }
                } else if hooks.send_ready(from) {
                    None
                } else {
                    Some(from)
                }
            }
            EventKind::Sync { peer } => {
                if peer.process.0 >= self.num_processes {
                    return Some(peer);
                }
                if self.owned[peer.process.idx()] {
                    if self.delivered[peer.process.idx()] >= peer.index.0 {
                        // The peer half was already delivered as a cross-shard
                        // sync before its process migrated here.
                        return None;
                    }
                    match self.pending.get(&peer) {
                        Some(partner)
                            if partner.index().0 == self.delivered[peer.process.idx()] + 1 =>
                        {
                            None
                        }
                        Some(partner) => Some(EventId::new(
                            peer.process,
                            EventIndex(partner.index().0 - 1),
                        )),
                        None => Some(peer),
                    }
                } else if hooks.sync_ready(ev.id, peer) {
                    None
                } else {
                    Some(peer)
                }
            }
        }
    }

    fn park(&mut self, id: EventId, blocker: EventId) {
        let list = self.waiting.entry(blocker).or_default();
        if !list.contains(&id) {
            list.push(id);
        }
    }

    fn deliver<H: ShardHooks>(
        &mut self,
        ev: Event,
        delivered: &mut u64,
        work: &mut Vec<EventId>,
        hooks: &mut H,
    ) {
        self.deliver_one(ev, delivered, work, hooks);
        if let EventKind::Sync { peer } = ev.kind {
            // Only a locally-owned, still-pending partner delivers adjacently
            // here; a foreign partner is delivered by its own shard, and a
            // partner absent despite local ownership was already delivered
            // cross-shard before its process migrated onto this shard.
            if self.owned[peer.process.idx()] {
                if let Some(partner) = self.pending.get(&peer).copied() {
                    self.deliver_one(partner, delivered, work, hooks);
                }
            }
        }
    }

    fn deliver_one<H: ShardHooks>(
        &mut self,
        ev: Event,
        delivered: &mut u64,
        work: &mut Vec<EventId>,
        hooks: &mut H,
    ) {
        self.pending.remove(&ev.id);
        self.delivered[ev.process().idx()] = ev.index().0;
        self.delivered_total += 1;
        *delivered += 1;
        hooks.deliver(ev);
        if let Some(parked) = self.waiting.remove(&ev.id) {
            work.extend(parked);
        }
    }

    /// Release ownership of `p` for migration to another shard. Returns the
    /// delivered watermark and `p`'s still-pending events in index order.
    /// Call [`reexamine_process`](Self::reexamine_process) afterwards (once
    /// the new owner can serve `p`'s edges) to re-evaluate local events that
    /// were parked under `p`'s events.
    pub fn release_process(&mut self, p: ProcessId) -> (u32, Vec<Event>) {
        assert!(self.owned[p.idx()], "releasing a process we do not own");
        self.owned[p.idx()] = false;
        let mut evs: Vec<Event> = self
            .pending
            .values()
            .filter(|ev| ev.process() == p)
            .copied()
            .collect();
        for ev in &evs {
            self.pending.remove(&ev.id);
        }
        evs.sort_by_key(|ev| ev.index().0);
        (self.delivered[p.idx()], evs)
    }

    /// Adopt ownership of `p` at the given delivered watermark. The caller
    /// re-offers `p`'s pending events through [`offer`](Self::offer).
    pub fn adopt_process(&mut self, p: ProcessId, watermark: u32) {
        assert!(!self.owned[p.idx()], "adopting a process we already own");
        self.owned[p.idx()] = true;
        self.delivered[p.idx()] = watermark;
    }

    /// Re-evaluate every local event parked under an event of `p`, whose
    /// edges switched from local to cross-shard when `p` migrated away.
    pub fn reexamine_process<H: ShardHooks>(&mut self, p: ProcessId, hooks: &mut H) -> u64 {
        let mut keys: Vec<EventId> = self
            .waiting
            .keys()
            .filter(|id| id.process == p)
            .copied()
            .collect();
        keys.sort(); // HashMap order is not deterministic; schedules must be
        let mut work = Vec::new();
        for key in keys {
            if let Some(parked) = self.waiting.remove(&key) {
                work.extend(parked);
            }
        }
        self.cascade(work, hooks)
    }

    /// Number of processes in the computation (not just owned ones).
    pub fn num_processes(&self) -> u32 {
        self.num_processes
    }

    /// Delivered watermark of an owned process.
    pub fn delivered_watermark(&self, p: ProcessId) -> u32 {
        self.delivered[p.idx()]
    }

    /// Diagnostic view of the buffer: owned processes, watermarks, pending
    /// ids, and the waiting map (blocker → parked ids).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let owned: Vec<u32> = (0..self.num_processes)
            .filter(|&p| self.owned[p as usize])
            .collect();
        let mut pending: Vec<EventId> = self.pending.keys().copied().collect();
        pending.sort();
        let mut waiting: Vec<(EventId, Vec<EventId>)> =
            self.waiting.iter().map(|(k, v)| (*k, v.clone())).collect();
        waiting.sort();
        format!(
            "owned={owned:?} watermarks={:?} pending={pending:?} waiting={waiting:?}",
            self.delivered
        )
    }

    /// Total events delivered by this shard so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Duplicate arrivals dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Events currently parked on this shard.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of [`depth`](Self::depth).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::linearize::{is_valid_delivery_order, relinearize};
    use cts_model::{ProcessId, TraceBuilder};
    use cts_workloads::spmd::Stencil1D;
    use cts_workloads::Workload;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn offer_all(buf: &mut ReorderBuffer, events: &[Event]) -> Vec<Event> {
        let mut out = Vec::new();
        for &ev in events {
            out.extend(buf.offer(ev).unwrap());
        }
        out
    }

    #[test]
    fn in_order_stream_passes_through() {
        let t = Stencil1D { procs: 6, iters: 4 }.generate(3);
        let mut buf = ReorderBuffer::new(t.num_processes());
        let out = offer_all(&mut buf, t.events());
        assert_eq!(out.len(), t.num_events());
        assert!(is_valid_delivery_order(t.num_processes(), &out));
        assert_eq!(buf.depth(), 0);
        assert_eq!(buf.duplicates(), 0);
    }

    #[test]
    fn fully_reversed_stream_is_repaired() {
        let t = Stencil1D { procs: 5, iters: 3 }.generate(9);
        let mut reversed: Vec<Event> = t.events().to_vec();
        reversed.reverse();
        let mut buf = ReorderBuffer::new(t.num_processes());
        let out = offer_all(&mut buf, &reversed);
        assert_eq!(out.len(), t.num_events());
        assert!(is_valid_delivery_order(t.num_processes(), &out));
        assert_eq!(buf.depth(), 0);
        assert!(buf.peak_depth() > 1);
    }

    #[test]
    fn shuffled_interleavings_deliver_valid_orders() {
        let t = Stencil1D { procs: 8, iters: 5 }.generate(21);
        for seed in 0..20 {
            let shuffled = relinearize(&t, seed);
            let mut buf = ReorderBuffer::new(t.num_processes());
            let out = offer_all(&mut buf, shuffled.events());
            assert_eq!(out.len(), t.num_events(), "seed {seed}");
            assert!(
                is_valid_delivery_order(t.num_processes(), &out),
                "seed {seed}"
            );
            assert_eq!(buf.depth(), 0, "seed {seed}");
        }
    }

    #[test]
    fn duplicates_are_counted_and_dropped() {
        let t = Stencil1D { procs: 4, iters: 3 }.generate(5);
        let mut buf = ReorderBuffer::new(t.num_processes());
        let mut out = Vec::new();
        for &ev in t.events() {
            out.extend(buf.offer(ev).unwrap());
            // Re-offer every event immediately: a delivered duplicate.
            assert_eq!(buf.offer(ev).unwrap(), Vec::new());
        }
        assert_eq!(out.len(), t.num_events());
        assert_eq!(buf.duplicates() as usize, t.num_events());
        assert!(is_valid_delivery_order(t.num_processes(), &out));
    }

    #[test]
    fn pending_duplicate_is_dropped_too() {
        let mut b = TraceBuilder::new(2);
        let s = b.send(p(0), p(1)).unwrap();
        let r = b.receive(p(1), s).unwrap();
        let t = b.finish_complete("dup").unwrap();
        let recv = t.event(r);
        let mut buf = ReorderBuffer::new(2);
        // The receive arrives (twice) before its send: parked, deduped.
        assert_eq!(buf.offer(recv).unwrap(), Vec::new());
        assert_eq!(buf.offer(recv).unwrap(), Vec::new());
        assert_eq!(buf.duplicates(), 1);
        assert_eq!(buf.depth(), 1);
        let out = buf.offer(t.event(s.event())).unwrap();
        assert_eq!(out.len(), 2);
        assert!(is_valid_delivery_order(2, &out));
    }

    #[test]
    fn conflicting_duplicate_is_rejected() {
        let mut buf = ReorderBuffer::new(3);
        let id = EventId::new(p(0), EventIndex(2)); // parked: index 2 first
        let a = Event::new(id, EventKind::Internal);
        let b = Event::new(id, EventKind::Send { to: p(1) });
        assert_eq!(buf.offer(a).unwrap(), Vec::new());
        assert_eq!(buf.offer(b), Err(RejectReason::ConflictingDuplicate));
    }

    #[test]
    fn unknown_process_is_rejected() {
        let mut buf = ReorderBuffer::new(2);
        let ev = Event::new(EventId::new(p(7), EventIndex(1)), EventKind::Internal);
        assert_eq!(buf.offer(ev), Err(RejectReason::UnknownProcess));
    }

    #[test]
    fn sync_halves_emerge_adjacent() {
        let mut b = TraceBuilder::new(3);
        b.internal(p(0)).unwrap();
        let (h0, h1) = b.sync(p(0), p(1)).unwrap();
        b.internal(p(1)).unwrap();
        let t = b.finish_complete("sync").unwrap();
        // Offer in the worst order: second halves first, preceded by nothing.
        let mut buf = ReorderBuffer::new(3);
        let mut arrivals: Vec<Event> = t.events().to_vec();
        arrivals.reverse();
        let out = offer_all(&mut buf, &arrivals);
        assert_eq!(out.len(), t.num_events());
        assert!(is_valid_delivery_order(3, &out));
        // The two sync halves are adjacent in the output.
        let i0 = out.iter().position(|e| e.id == h0).unwrap();
        let i1 = out.iter().position(|e| e.id == h1).unwrap();
        assert_eq!(i0.abs_diff(i1), 1);
    }
}
