//! Replication: follower daemons consuming a leader's committed WAL stream.
//!
//! The WAL records the *post-reorder delivery order*, and every piece of
//! daemon state is a pure function of the delivered prefix (the
//! delivery-order-invariance property the core crates establish). That makes
//! the WAL a complete replication log: a follower that replays the leader's
//! record stream through its own reorder → engine → store pipeline holds a
//! sequence-identical prefix and answers every query bit-identically to the
//! leader at the same epoch. Nothing new has to be proven about follower
//! state — it is the recovery argument ("recovery is replay") applied over
//! TCP instead of a local disk.
//!
//! ## Leader side
//!
//! A connection that negotiated protocol level 2 ([`Msg::ProtoHello`]) may
//! send [`Msg::Subscribe`]. The leader answers [`Msg::SubscribeAck`] and
//! converts the connection into a push stream of [`Msg::StreamBatch`]
//! frames, each carrying committed (durably synced) events plus the
//! leader's commit watermark:
//!
//! 1. **Catch-up**: events from the subscriber's `from_offset` up to the
//!    current durable watermark are read from disk — the newest valid
//!    checkpoint (whose `meta` name must match the subscription; see
//!    [`checkpoint::load_latest_checkpoint_named`]) covers a prefix, WAL
//!    segments cover the rest. The scan is read-only and capped at the
//!    watermark, so a torn tail still being written never ships.
//! 2. **Live tail**: the subscription registers a bounded channel with the
//!    computation's [`ReplHub`]; the ingest worker pushes every batch it
//!    syncs. A subscriber that falls [`REPL_SUBSCRIBER_QUEUE`] batches
//!    behind is dropped (the follower resubscribes from its durable
//!    position — catch-up is incremental, so this is cheap).
//! 3. **Heartbeats**: an idle stream carries an empty `StreamBatch` every
//!    [`HEARTBEAT`] so the follower can bound leader-failure detection and
//!    publish its final epoch promptly.
//!
//! Only committed events are ever streamed. The leader's synced prefix
//! survives its crashes, so a follower can never observe (and publish) state
//! a restarted leader no longer has — the streams re-converge by
//! construction.
//!
//! ## Leases and fencing
//!
//! Each leader start mints an *incarnation number* (persisted in
//! `data_dir/leader.epoch` and incremented on every start). A granted lease
//! packs it into the high 32 bits. Followers present their last lease when
//! resubscribing; a lease minted by an older incarnation is refused with
//! [`code::LEASE_EXPIRED`], which tells the follower its leader restarted —
//! it clears the lease and resubscribes fresh from its own durable
//! position. A follower fenced this way counts a resubscription in
//! [`Metrics::repl_resubscribes`].
//!
//! ## Follower side
//!
//! `cts-daemon --follow <leader-addr>` starts a normal daemon whose wire
//! surface refuses `Events` and `Flush` with [`code::READ_ONLY`], plus a
//! discovery thread polling the leader's [`Msg::ListComputations`]. Every
//! discovered computation gets a replication worker: it opens (or recovers —
//! a durable follower's own WAL tail makes catch-up incremental) the local
//! computation, subscribes from its delivered count, and applies stream
//! batches through [`Computation::enqueue_events`] — the normal ingest
//! pipeline, including the reorder buffer whose dedup makes resubscription
//! overlap harmless. Epochs are published (via the flush barrier) only at
//! leader-acked commit points.

use crate::checkpoint;
use crate::pipeline::{Computation, ReplBatch, REPL_SUBSCRIBER_QUEUE};
use crate::server::{hello, lock, DaemonShared};
use crate::wal;
use crate::wire::{self, code, read_msg, recv_frame, write_msg, CompInfo, Msg, Recv};
use cts_model::Event;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Events per [`Msg::StreamBatch`] frame. Events encode in ≤ ~20 bytes, so
/// this keeps frames far under [`wire::MAX_FRAME`].
const STREAM_CHUNK: usize = 4096;

/// Idle-stream heartbeat cadence (an empty `StreamBatch` carrying the
/// current commit watermark).
const HEARTBEAT: Duration = Duration::from_millis(250);

/// Follower read timeout per poll; [`SILENT_POLLS_DEAD`] consecutive silent
/// polls declare the leader dead and trigger a resubscribe.
const FOLLOW_READ_TIMEOUT: Duration = Duration::from_millis(500);
const SILENT_POLLS_DEAD: u32 = 6;

/// Backoff between follower resubscription attempts.
const RESUBSCRIBE_BACKOFF: Duration = Duration::from_millis(50);

/// Discovery cadence: how often a follower polls the leader for new
/// computations.
const DISCOVERY_POLL: Duration = Duration::from_millis(200);

/// Publish a follower epoch at most every this many applied events while
/// the stream is hot (every idle heartbeat publishes regardless, so a
/// drained stream always converges to the leader's commit point).
const FOLLOWER_PUBLISH_EVERY: u64 = 1024;

/// Stalled-peer bound on leader-side stream writes.
const STREAM_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// The leader incarnation half of a lease.
pub fn lease_epoch(lease: u64) -> u64 {
    lease >> 32
}

/// Load-and-increment the leader incarnation number persisted in
/// `root/leader.epoch`. Every daemon start with a data dir mints a fresh
/// incarnation, so leases granted before a crash are recognizably stale.
pub fn next_leader_epoch(root: &Path) -> u64 {
    let path = root.join("leader.epoch");
    let prev = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let epoch = prev + 1;
    if let Err(e) = std::fs::write(&path, format!("{epoch}\n")) {
        eprintln!(
            "[cts-daemon] cannot persist leader incarnation to {}: {e}",
            path.display()
        );
    }
    epoch
}

/// A granted subscription, ready to stream.
pub(crate) struct Grant {
    pub(crate) comp: Arc<Computation>,
    pub(crate) lease: u64,
    pub(crate) start_offset: u64,
}

impl Grant {
    pub(crate) fn ack(&self, shared: &DaemonShared) -> Msg {
        Msg::SubscribeAck {
            lease: self.lease,
            leader_epoch: shared.leader_epoch,
            num_processes: self.comp.num_processes,
            max_cluster_size: self.comp.max_cluster_size,
            start_offset: self.start_offset,
        }
    }
}

/// Validate a [`Msg::Subscribe`] and mint its lease, or produce the typed
/// refusal to send instead. Shared by both network backends.
pub(crate) fn check_subscribe(
    shared: &DaemonShared,
    negotiated_protocol: u16,
    computation: &str,
    from_offset: u64,
    prev_lease: u64,
) -> Result<Grant, Box<Msg>> {
    let refuse = |code: u16, message: String| Box::new(Msg::Error { code, message });
    if negotiated_protocol < 2 {
        return Err(refuse(
            code::UNSUPPORTED,
            "Subscribe requires ProtoHello negotiation to protocol level >= 2".into(),
        ));
    }
    if shared.config.data_dir.is_none() {
        return Err(refuse(
            code::UNSUPPORTED,
            "this daemon is not durable (no --data-dir); nothing committed to stream".into(),
        ));
    }
    if prev_lease != 0 && lease_epoch(prev_lease) != shared.leader_epoch {
        return Err(refuse(
            code::LEASE_EXPIRED,
            format!(
                "lease {prev_lease:#x} was minted by leader incarnation {}, \
                 current incarnation is {}; resubscribe fresh",
                lease_epoch(prev_lease),
                shared.leader_epoch
            ),
        ));
    }
    let Some(comp) = lock(&shared.computations).get(computation).cloned() else {
        return Err(refuse(
            code::BAD_HELLO,
            format!("unknown computation {computation:?}"),
        ));
    };
    if comp.num_shards() > 1 {
        return Err(refuse(
            code::UNSUPPORTED,
            format!(
                "computation {computation:?} runs sharded ingest; streaming it is not supported"
            ),
        ));
    }
    if comp.durability_dir().is_none() {
        return Err(refuse(
            code::UNSUPPORTED,
            format!("computation {computation:?} is not durable"),
        ));
    }
    let counter = shared.lease_counter.fetch_add(1, Ordering::Relaxed) + 1;
    let lease = (shared.leader_epoch << 32) | (counter & 0xFFFF_FFFF);
    let start_offset = from_offset.min(comp.durable_offset());
    Ok(Grant {
        comp,
        lease,
        start_offset,
    })
}

/// Read the committed events at offsets `(from_excl, to_incl]` from a
/// computation's data directory: the newest valid checkpoint (refused if its
/// `meta` names another computation) covers a prefix, WAL segments the rest.
/// Read-only — a torn tail on the live segment is simply where the scan
/// stops, and `to_incl` (the durable watermark) is always below it.
fn read_committed_range(
    dir: &Path,
    name: &str,
    from_excl: u64,
    to_incl: u64,
) -> io::Result<Vec<Event>> {
    let mut events: Vec<Event> = Vec::with_capacity((to_incl - from_excl) as usize);
    // Highest contiguous offset collected (or skipped as already held).
    let mut have = from_excl;
    if let Some(ck) = checkpoint::load_latest_checkpoint_named(dir, Some(name))? {
        if ck.delivered > have {
            events.extend_from_slice(&ck.events[have as usize..]);
            have = ck.delivered;
        }
    }
    let segs = wal::list_segments(dir)?;
    for (i, (start, path)) in segs.iter().enumerate() {
        if have >= to_incl {
            break;
        }
        // Segment i covers (start_i, start_{i+1}]; skip it when a later
        // segment already starts at or before what we hold.
        if let Some((next_start, _)) = segs.get(i + 1) {
            if *next_start <= have {
                continue;
            }
        }
        if *start > have {
            break; // hole between checkpoint/segments: cannot serve
        }
        let scan = wal::scan_segment(path)?;
        for rec in &scan.records {
            let rec_end = rec.first_offset + rec.events.len() as u64 - 1;
            if rec_end <= have {
                continue;
            }
            let skip = (have + 1).saturating_sub(rec.first_offset) as usize;
            events.extend_from_slice(&rec.events[skip..]);
            have = rec_end;
            if have >= to_incl {
                break;
            }
        }
    }
    if have < to_incl {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "committed range ({from_excl}, {to_incl}] not coverable from {}: \
                 contiguous through {have} only",
                dir.display()
            ),
        ));
    }
    events.truncate((to_incl - from_excl) as usize);
    Ok(events)
}

fn send_chunks<W: Write>(
    w: &mut W,
    lease: u64,
    first_offset: u64,
    commit: u64,
    events: &[Event],
) -> io::Result<()> {
    let mut off = first_offset;
    for chunk in events.chunks(STREAM_CHUNK) {
        write_msg(
            w,
            &Msg::StreamBatch {
                lease,
                first_offset: off,
                commit,
                events: chunk.to_vec(),
            },
        )?;
        off += chunk.len() as u64;
    }
    Ok(())
}

/// Stream a granted subscription until the peer goes away, the daemon shuts
/// down, or the subscriber falls too far behind. The [`Msg::SubscribeAck`]
/// must already be on the wire. Runs on the connection thread (thread
/// backend) or a dedicated streamer thread the poller handed the socket to
/// (epoll backend).
pub(crate) fn serve_subscription(
    stream: TcpStream,
    shared: &DaemonShared,
    grant: &Grant,
) -> io::Result<()> {
    let _ = stream.set_read_timeout(None);
    let _ = stream.set_write_timeout(Some(STREAM_WRITE_TIMEOUT));
    let mut out = BufWriter::new(stream);
    let comp = &grant.comp;
    let lease = grant.lease;
    // Register for the live tail *before* reading the watermark: anything
    // synced from here on is either under the watermark (trimmed below) or
    // arrives on the channel. No gap is possible.
    let (tx, rx) = sync_channel::<Arc<ReplBatch>>(REPL_SUBSCRIBER_QUEUE);
    comp.add_repl_subscriber(tx);
    let watermark = comp.durable_offset();
    let mut next = grant.start_offset + 1;
    if watermark >= next {
        let dir = comp
            .durability_dir()
            .expect("check_subscribe gated on durability");
        let catchup = read_committed_range(dir, &comp.name, next - 1, watermark)?;
        send_chunks(&mut out, lease, next, watermark, &catchup)?;
        out.flush()?;
        next = watermark + 1;
    }
    loop {
        if shared.shutting_down() {
            return Ok(());
        }
        match rx.recv_timeout(HEARTBEAT) {
            Ok(batch) => {
                let end = batch.first_offset + batch.events.len() as u64 - 1;
                if end < next {
                    continue; // fully covered by the catch-up read
                }
                if batch.first_offset > next {
                    // Defensive: a hole in the live stream (should be
                    // impossible; the hub drops lagging subscribers via the
                    // channel instead). End the stream; the follower
                    // resubscribes from its durable position.
                    return Ok(());
                }
                let skip = (next - batch.first_offset) as usize;
                send_chunks(&mut out, lease, next, batch.commit, &batch.events[skip..])?;
                out.flush()?;
                next = end + 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle heartbeat: liveness + the current commit watermark
                // (it can advance without new events only across a
                // checkpoint boundary, but the follower also uses this to
                // publish its final epoch once the stream drains).
                write_msg(
                    &mut out,
                    &Msg::StreamBatch {
                        lease,
                        first_offset: next,
                        commit: comp.durable_offset(),
                        events: Vec::new(),
                    },
                )?;
                out.flush()?;
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The ingest worker dropped us (lagging subscriber) or the
                // computation shut down.
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Follower runtime
// ---------------------------------------------------------------------------

/// Why one subscription attempt ended.
enum FollowEnd {
    /// The daemon is shutting down; stop following.
    Shutdown,
    /// The leader fenced our lease (it restarted); resubscribe fresh,
    /// immediately.
    Fenced,
    /// Connection lost / leader silent / stream error; back off and
    /// resubscribe from the current delivered position.
    Retry,
}

/// Entry point of the `--follow` runtime: discover the leader's
/// computations and keep one replication worker per computation until
/// shutdown. Runs on its own thread.
pub(crate) fn follower_runtime(shared: Arc<DaemonShared>, leader: SocketAddr) {
    // Our own startup recovery replays local replicas first; opening a
    // computation while recover_all scans the same directory would race it.
    while shared.recovering.load(Ordering::Acquire) && !shared.shutting_down() {
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut tracked: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match discover(leader) {
            Ok(comps) => {
                for info in comps {
                    if tracked.contains(&info.name) {
                        continue;
                    }
                    tracked.insert(info.name.clone());
                    let worker_shared = Arc::clone(&shared);
                    let name = info.name.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("repl-follow-{name}"))
                        .spawn(move || follow_computation(&worker_shared, leader, &info));
                    match spawned {
                        Ok(h) => workers.push(h),
                        Err(e) => {
                            eprintln!(
                                "[cts-daemon] cannot spawn replication worker for {name:?}: {e}"
                            );
                            tracked.remove(&name);
                        }
                    }
                }
            }
            Err(e) => {
                if tracked.is_empty() {
                    eprintln!("[cts-daemon] follower discovery: leader unreachable: {e}");
                }
            }
        }
        shutdown_sleep(&shared, DISCOVERY_POLL);
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Sleep `total`, waking early on shutdown.
fn shutdown_sleep(shared: &DaemonShared, total: Duration) {
    let step = Duration::from_millis(25);
    let mut left = total;
    while !shared.shutting_down() && !left.is_zero() {
        let d = left.min(step);
        std::thread::sleep(d);
        left -= d;
    }
}

/// One discovery poll: negotiate protocol 2 and list the leader's
/// computations.
fn discover(leader: SocketAddr) -> io::Result<Vec<CompInfo>> {
    let mut stream = TcpStream::connect(leader)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let protocol = proto_handshake(&mut stream)?;
    if protocol < 2 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("leader speaks protocol level {protocol}, replication needs 2"),
        ));
    }
    write_msg(&mut stream, &Msg::ListComputations)?;
    match read_reply(&mut stream)? {
        Msg::ComputationList { comps } => Ok(comps),
        Msg::Error { code, message } => Err(io::Error::other(format!(
            "leader refused ListComputations ({code}): {message}"
        ))),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply to ListComputations: {other:?}"),
        )),
    }
}

/// Send [`Msg::ProtoHello`] and return the negotiated protocol level.
fn proto_handshake(stream: &mut TcpStream) -> io::Result<u16> {
    write_msg(
        stream,
        &Msg::ProtoHello {
            protocol_max: wire::PROTOCOL,
            wal_max: wire::WAL_FORMAT,
        },
    )?;
    match read_reply(stream)? {
        Msg::ProtoHelloAck { protocol, .. } => Ok(protocol),
        Msg::Error { code, message } => Err(io::Error::other(format!(
            "leader refused ProtoHello ({code}): {message}"
        ))),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply to ProtoHello: {other:?}"),
        )),
    }
}

fn read_reply(stream: &mut TcpStream) -> io::Result<Msg> {
    read_msg(stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "leader closed the connection"))
}

/// Keep one computation replicated until shutdown: open the local replica
/// (recovering its own WAL tail when durable), then subscribe / apply /
/// resubscribe forever.
fn follow_computation(shared: &Arc<DaemonShared>, leader: SocketAddr, info: &CompInfo) {
    let comp = match hello(
        shared,
        info.name.clone(),
        info.num_processes,
        info.max_cluster_size,
    ) {
        Ok((comp, _)) => comp,
        Err(e) => {
            eprintln!(
                "[cts-daemon] cannot open local replica of {:?}: {e}",
                info.name
            );
            return;
        }
    };
    let mut lease: u64 = 0;
    let mut attempts: u64 = 0;
    while !shared.shutting_down() {
        if attempts > 0 {
            comp.metrics()
                .repl_resubscribes
                .fetch_add(1, Ordering::Relaxed);
        }
        attempts += 1;
        match follow_once(shared, leader, &comp, &mut lease) {
            FollowEnd::Shutdown => return,
            FollowEnd::Fenced => {
                lease = 0; // resubscribe fresh, immediately
            }
            FollowEnd::Retry => shutdown_sleep(shared, RESUBSCRIBE_BACKOFF),
        }
    }
}

/// One subscription: connect, negotiate, subscribe from the local delivered
/// position, and apply stream batches until something ends the stream.
fn follow_once(
    shared: &Arc<DaemonShared>,
    leader: SocketAddr,
    comp: &Arc<Computation>,
    lease: &mut u64,
) -> FollowEnd {
    let from = comp.stored_len();
    let Ok(mut stream) = TcpStream::connect(leader) else {
        return FollowEnd::Retry;
    };
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(Some(FOLLOW_READ_TIMEOUT)).is_err()
    {
        return FollowEnd::Retry;
    }
    match blocking_handshake(&mut stream) {
        Ok(p) if p >= 2 => {}
        _ => return FollowEnd::Retry,
    }
    if write_msg(
        &mut stream,
        &Msg::Subscribe {
            computation: comp.name.clone(),
            from_offset: from,
            prev_lease: *lease,
        },
    )
    .is_err()
    {
        return FollowEnd::Retry;
    }
    match read_one(shared, &mut stream) {
        ReadOne::Msg(m) => match *m {
            Msg::SubscribeAck { lease: granted, .. } => *lease = granted,
            Msg::Error { code, .. } if code == code::LEASE_EXPIRED => return FollowEnd::Fenced,
            _ => return FollowEnd::Retry,
        },
        ReadOne::Shutdown => return FollowEnd::Shutdown,
        ReadOne::Dead => return FollowEnd::Retry,
    }
    let mut applied = from;
    let mut published = from;
    let metrics = comp.metrics();
    loop {
        let msg = match read_one(shared, &mut stream) {
            ReadOne::Msg(m) => *m,
            ReadOne::Shutdown => return FollowEnd::Shutdown,
            ReadOne::Dead => return FollowEnd::Retry,
        };
        let Msg::StreamBatch {
            lease: l,
            first_offset,
            commit,
            events,
        } = msg
        else {
            return FollowEnd::Retry; // stream corrupted / unexpected frame
        };
        if l != *lease {
            return FollowEnd::Retry;
        }
        metrics.repl_commit.store(commit, Ordering::Relaxed);
        let idle = events.is_empty();
        if !idle {
            let end = first_offset + events.len() as u64 - 1;
            if first_offset > applied + 1 {
                return FollowEnd::Retry; // hole in the stream: resubscribe
            }
            if end > applied {
                let skip = (applied + 1 - first_offset) as usize;
                let fresh = if skip == 0 {
                    events
                } else {
                    events[skip..].to_vec()
                };
                if comp.enqueue_events(fresh).is_err() {
                    return FollowEnd::Shutdown;
                }
                applied = end;
                metrics.repl_applied.store(applied, Ordering::Relaxed);
            }
        }
        // Publish epochs only at leader-acked commit points: everything
        // applied is committed (only synced records are ever streamed), so
        // any applied prefix is a valid epoch — but we pace the snapshot
        // churn and always land exactly on the commit point once the
        // stream drains (idle heartbeat).
        let target = applied.min(commit);
        if target > published && (idle || target - published >= FOLLOWER_PUBLISH_EVERY) {
            match comp.flush(target, shared.config.flush_timeout) {
                Ok(_) => published = target,
                Err(_) => return FollowEnd::Retry,
            }
        }
    }
}

enum ReadOne {
    // Boxed: `Msg` grew past clippy's large-variant threshold with the
    // level-3 time-travel verbs, and one heap hop per received frame is
    // noise next to the frame read itself.
    Msg(Box<Msg>),
    Shutdown,
    /// Leader closed, errored, or went silent past the deadline.
    Dead,
}

/// Read one message, polling the shutdown flag on read timeouts and
/// declaring the leader dead after [`SILENT_POLLS_DEAD`] silent polls
/// (heartbeats arrive every [`HEARTBEAT`], so silence means a dead or
/// wedged leader).
fn read_one(shared: &DaemonShared, stream: &mut TcpStream) -> ReadOne {
    let mut silent = 0u32;
    loop {
        if shared.shutting_down() {
            return ReadOne::Shutdown;
        }
        match recv_frame(stream) {
            Ok(Recv::Frame(payload)) => match Msg::decode(&payload) {
                Ok(m) => return ReadOne::Msg(Box::new(m)),
                Err(_) => return ReadOne::Dead,
            },
            Ok(Recv::Idle) => {
                silent += 1;
                if silent >= SILENT_POLLS_DEAD {
                    return ReadOne::Dead;
                }
            }
            Ok(Recv::Eof) | Err(_) => return ReadOne::Dead,
        }
    }
}

/// Handshake variant for the timeouted follower socket (uses
/// [`read_one`]-style polling so a slow leader is not mistaken for a dead
/// one mid-handshake). Returns the negotiated protocol level.
fn blocking_handshake(stream: &mut TcpStream) -> io::Result<u16> {
    write_msg(
        stream,
        &Msg::ProtoHello {
            protocol_max: wire::PROTOCOL,
            wal_max: wire::WAL_FORMAT,
        },
    )?;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match recv_frame(stream)? {
            Recv::Frame(payload) => {
                return match Msg::decode(&payload) {
                    Ok(Msg::ProtoHelloAck { protocol, .. }) => Ok(protocol),
                    Ok(Msg::Error { code, message }) => Err(io::Error::other(format!(
                        "leader refused ProtoHello ({code}): {message}"
                    ))),
                    Ok(other) => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply to ProtoHello: {other:?}"),
                    )),
                    Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
                }
            }
            Recv::Idle => {
                if std::time::Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "leader silent during handshake",
                    ));
                }
            }
            Recv::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "leader closed during handshake",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_packs_incarnation() {
        assert_eq!(lease_epoch((7 << 32) | 123), 7);
        assert_eq!(lease_epoch(0), 0);
    }

    #[test]
    fn leader_epoch_increments_across_starts() {
        let dir = std::env::temp_dir().join("cts-repl-epoch-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = next_leader_epoch(&dir);
        let b = next_leader_epoch(&dir);
        let c = next_leader_epoch(&dir);
        assert_eq!(b, a + 1);
        assert_eq!(c, b + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
