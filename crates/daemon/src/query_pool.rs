//! A small fixed worker pool for batched query evaluation.
//!
//! Batched wire queries (`QueryPrecedesBatch`, `QueryGcBatch`) can carry
//! hundreds of items; evaluating them on the connection thread serializes
//! every other request on that connection behind one slow
//! greatest-concurrent. The pool scatters a batch across a few workers and
//! joins the results in order. Jobs only ever *read* — an `Arc<Snapshot>`
//! plus the shared query cache — so there is no job-to-job ordering to
//! preserve and no way for a job to deadlock the pool (jobs never submit
//! jobs).
//!
//! Small batches run inline: the scatter/join overhead (~µs) dwarfs the
//! work of a handful of cache-hit lookups (~ns each).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send>;

/// Batches below this size run inline on the calling thread.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Fixed-size worker pool. Dropping it without [`shutdown`](Self::shutdown)
/// leaves workers parked on the (closed) channel; the daemon always shuts
/// down explicitly.
pub struct QueryPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    size: usize,
}

impl QueryPool {
    /// A pool of `size` workers; `size <= 1` disables the threads entirely
    /// and [`map`](Self::map) runs everything inline.
    pub fn new(size: usize) -> QueryPool {
        if size <= 1 {
            return QueryPool {
                tx: Mutex::new(None),
                workers: Mutex::new(Vec::new()),
                size: 1,
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cts-query-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn query worker")
            })
            .collect();
        QueryPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            size,
        }
    }

    /// The pool's parallelism suggestion for the host: a few workers, never
    /// more than the hardware offers.
    pub fn default_size() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }

    /// Number of workers (1 = inline).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Evaluate `f` over `items`, in order, scattering contiguous chunks
    /// across the workers. Falls back to an inline map when the pool is
    /// inline-only, the batch is small, or the pool is already shut down.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let tx = match (self.size > 1 && n >= MIN_PARALLEL_ITEMS)
            .then(|| lock(&self.tx).clone())
            .flatten()
        {
            Some(tx) => tx,
            None => return items.into_iter().map(f).collect(),
        };

        struct Join<R> {
            slots: Mutex<(Vec<Option<R>>, usize)>,
            done: Condvar,
        }
        let chunk_len = n.div_ceil(self.size);
        let f = Arc::new(f);
        let join = Arc::new(Join {
            slots: Mutex::new(((0..n).map(|_| None).collect::<Vec<Option<R>>>(), 0)),
            done: Condvar::new(),
        });
        let mut chunks = 0usize;
        let mut base = 0usize;
        let mut items = items.into_iter();
        while base < n {
            let take: Vec<T> = items.by_ref().take(chunk_len).collect();
            let len = take.len();
            let f = Arc::clone(&f);
            let join = Arc::clone(&join);
            let start = base;
            chunks += 1;
            tx.send(Box::new(move || {
                // Compute outside the lock; publish the chunk in one go.
                let out: Vec<R> = take.into_iter().map(|x| f(x)).collect();
                let mut g = lock(&join.slots);
                for (i, r) in out.into_iter().enumerate() {
                    g.0[start + i] = Some(r);
                }
                g.1 += 1;
                join.done.notify_all();
            }))
            .expect("pool workers outlive the sender");
            base += len;
        }
        let mut g = lock(&join.slots);
        while g.1 < chunks {
            g = join.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g.0.iter_mut()
            .map(|slot| slot.take().expect("all chunks joined"))
            .collect()
    }

    /// Stop the workers and join them. Idempotent.
    pub fn shutdown(&self) {
        drop(lock(&self.tx).take());
        let workers: Vec<_> = lock(&self.workers).drain(..).collect();
        for h in workers {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = match lock(rx).recv() {
            Ok(j) => j,
            Err(_) => return, // sender dropped: shutdown
        };
        job();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = QueryPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map(items, |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
        pool.shutdown();
    }

    #[test]
    fn small_batches_run_inline() {
        let pool = QueryPool::new(4);
        let out = pool.map(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        pool.shutdown();
    }

    #[test]
    fn inline_pool_works_without_threads() {
        let pool = QueryPool::new(1);
        assert_eq!(pool.size(), 1);
        let out = pool.map((0..100u32).collect(), |x| x * x);
        assert_eq!(out[99], 99 * 99);
        pool.shutdown();
    }

    #[test]
    fn map_after_shutdown_runs_inline() {
        let pool = QueryPool::new(2);
        pool.shutdown();
        let out = pool.map((0..200u32).collect(), |x| x + 1);
        assert_eq!(out.len(), 200);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool = QueryPool::new(2);
        pool.shutdown();
        pool.shutdown();
    }
}
