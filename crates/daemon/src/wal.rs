//! The per-computation write-ahead log: length-prefixed, CRC-protected
//! records of *delivered* events, fsync-batched under a group-commit window.
//!
//! The WAL sits after causal-delivery reordering: each record holds a batch
//! of events in valid delivery order, stamped with the global delivery
//! offset of its first event. Replaying segments in order therefore feeds
//! the normal ingest pipeline a prefix of a valid delivery order — the
//! replay-clock recovery primitive: state is never serialized, it is
//! recomputed from the recorded event stream.
//!
//! ## On-disk layout
//!
//! A segment file `wal-<start>.wal` (where `<start>` is the 16-hex-digit
//! count of events durable before the segment) is:
//!
//! ```text
//! [8]  magic "CTSWAL2\n"   (readers also accept v1 "CTSWAL1\n" segments)
//! [8]  u64 LE start offset (must match the file name)
//! [4]  u32 LE CRC-32 of the 16 header bytes
//! record*
//! ```
//!
//! and each record is:
//!
//! ```text
//! [4]  u32 LE payload length
//! [4]  u32 LE CRC-32 of the payload
//! [n]  payload = [u64 LE first_offset][event block]
//! ```
//!
//! The v1 event block is the wire codec's fixed-width form (u32 count, 9+
//! bytes per event). The v2 block is delta-encoded against the record
//! itself: varint count, then per event a flags byte (2-bit kind plus an
//! explicit-index bit), a varint process id, and — only when the event does
//! *not* continue its process's previous index within the record — an
//! explicit varint index. Valid delivery orders have consecutive per-process
//! indices, so almost every event after a process's first is implicit
//! `prev + 1`, and the common Internal event costs 2 bytes instead of 9.
//! Send/Receive/Sync partner fields are varint-encoded after the index.
//!
//! A crash can tear at most the tail of the newest segment; a reader stops
//! at the first record whose length or CRC does not check out and reports
//! the byte offset of the valid prefix, which recovery physically truncates
//! before appending again. Recovery appends to a *new* segment, so mixed
//! directories (v1 segments from before an upgrade, v2 after) replay fine.
//!
//! ## Group commit
//!
//! `fsync` per record would gate ingest throughput on device flush latency.
//! [`WalWriter`] instead marks itself dirty on append and syncs when
//! [`WalWriter::maybe_sync`] observes the configured window elapsed — plus
//! unconditionally on flush barriers, checkpoints, and graceful shutdown.
//! The window bounds the crash-loss tail; clients re-transmitting after a
//! restart close it (the reorder buffer deduplicates replayed deliveries).

use crate::wire::{self, WireError};
use cts_model::Event;
use cts_util::crc32::crc32;
use cts_util::failpoint::DurableSink;
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Segment header magic written by pre-delta-encoding builds; still
/// accepted by [`scan_segment`].
pub const MAGIC_V1: &[u8; 8] = b"CTSWAL1\n";

/// Segment header magic for the delta-encoded record format all new
/// segments are written in.
pub const MAGIC: &[u8; 8] = b"CTSWAL2\n";

/// Header length: magic + start offset + header CRC.
pub const HEADER_LEN: u64 = 8 + 8 + 4;

/// Name of the segment whose first record continues from `start` durable
/// events.
pub fn segment_name(start: u64) -> String {
    format!("wal-{start:016x}.wal")
}

/// Parse a segment file name back to its start offset.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    u64::from_str_radix(hex, 16).ok()
}

/// An appender over one segment. Generic over the sink so tests can inject
/// faults ([`cts_util::failpoint::FailpointFs`]) and benches can measure the
/// codec against a memory sink.
pub struct WalWriter<S: DurableSink = File> {
    sink: S,
    /// Global delivery offset of the last event appended (== the segment
    /// start until the first append).
    end_offset: u64,
    window: Duration,
    dirty: bool,
    last_sync: Instant,
    bytes_written: u64,
    syncs: u64,
}

impl WalWriter<File> {
    /// Create the segment `dir/wal-<start>.wal` (failing if it exists) and
    /// write its header. The header is not yet synced; the first
    /// [`sync`](Self::sync) covers it.
    pub fn create(dir: &Path, start: u64, window: Duration) -> io::Result<WalWriter<File>> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(dir.join(segment_name(start)))?;
        WalWriter::from_sink(file, start, window)
    }
}

impl<S: DurableSink> WalWriter<S> {
    /// Wrap an empty sink, writing the segment header.
    pub fn from_sink(mut sink: S, start: u64, window: Duration) -> io::Result<WalWriter<S>> {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&start.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        sink.write_all(&header)?;
        Ok(WalWriter {
            sink,
            end_offset: start,
            window,
            dirty: true,
            last_sync: Instant::now(),
            bytes_written: HEADER_LEN,
            syncs: 0,
        })
    }

    /// Append one record of delivered events (must be non-empty and
    /// contiguous with the previous append). Does not sync.
    pub fn append(&mut self, events: &[Event]) -> io::Result<()> {
        debug_assert!(!events.is_empty(), "empty WAL records are pointless");
        let mut payload = Vec::with_capacity(8 + 2 + events.len() * 3);
        payload.extend_from_slice(&(self.end_offset + 1).to_le_bytes());
        encode_delta_block(&mut payload, events);
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.sink.write_all(&rec)?;
        self.end_offset += events.len() as u64;
        self.bytes_written += rec.len() as u64;
        self.dirty = true;
        Ok(())
    }

    /// Sync if dirty and the group-commit window has elapsed. Returns
    /// whether a sync happened.
    pub fn maybe_sync(&mut self) -> io::Result<bool> {
        if !self.dirty || self.last_sync.elapsed() < self.window {
            return Ok(false);
        }
        self.sync()?;
        Ok(true)
    }

    /// Unconditional durability barrier (no-op when clean).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.sink.flush()?;
            self.sink.sync_data()?;
            self.dirty = false;
            self.syncs += 1;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Global delivery offset of the last appended event.
    pub fn end_offset(&self) -> u64 {
        self.end_offset
    }

    /// Total bytes written to this segment (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Durability barriers issued so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

// ---- v2 delta event-block codec ----

/// Flags-byte bit: the event carries an explicit index varint (its process
/// has no previous event in this record, or the index is discontinuous —
/// which a valid delivery order never produces, but the codec stays total).
const FLAG_EXPLICIT_INDEX: u8 = 0x04;
/// Flags-byte mask for the 2-bit event kind (same codes as the wire codec:
/// 0 Internal, 1 Send, 2 Receive, 3 Sync).
const FLAG_KIND_MASK: u8 = 0x03;

fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or(WireError::Malformed("varint cut short"))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(WireError::Malformed("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::Malformed("varint too long"));
        }
    }
}

fn get_varint_u32(buf: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    u32::try_from(get_uvarint(buf, pos)?).map_err(|_| WireError::Malformed("varint exceeds u32"))
}

/// Delta-encode a batch of delivered events (the v2 record body).
fn encode_delta_block(buf: &mut Vec<u8>, events: &[Event]) {
    use cts_model::EventKind;
    put_uvarint(buf, events.len() as u64);
    // Last index seen per process *within this record*; each record is
    // self-contained so a scan never needs cross-record state.
    let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for ev in events {
        let pid = ev.id.process.0;
        let index = ev.id.index.0;
        let (kind_code, _) = match ev.kind {
            EventKind::Internal => (0u8, ()),
            EventKind::Send { .. } => (1, ()),
            EventKind::Receive { .. } => (2, ()),
            EventKind::Sync { .. } => (3, ()),
        };
        let implicit = last.get(&pid) == Some(&(index.wrapping_sub(1))) && index != 0;
        let mut flags = kind_code;
        if !implicit {
            flags |= FLAG_EXPLICIT_INDEX;
        }
        buf.push(flags);
        put_uvarint(buf, u64::from(pid));
        if !implicit {
            put_uvarint(buf, u64::from(index));
        }
        last.insert(pid, index);
        match ev.kind {
            EventKind::Internal => {}
            EventKind::Send { to } => put_uvarint(buf, u64::from(to.0)),
            EventKind::Receive { from } => {
                put_uvarint(buf, u64::from(from.process.0));
                put_uvarint(buf, u64::from(from.index.0));
            }
            EventKind::Sync { peer } => {
                put_uvarint(buf, u64::from(peer.process.0));
                put_uvarint(buf, u64::from(peer.index.0));
            }
        }
    }
}

/// Decode a v2 delta event block. Total: every malformed input is an error,
/// never a panic or a huge allocation.
fn decode_delta_block(buf: &[u8]) -> Result<Vec<Event>, WireError> {
    use cts_model::{EventId, EventIndex, EventKind, ProcessId};
    let mut pos = 0usize;
    let count = get_uvarint(buf, &mut pos)?;
    // Each event costs >= 2 bytes (flags + pid), so `count` is bounded by
    // the remaining payload — a corrupt count cannot force an allocation.
    if count > (buf.len() - pos) as u64 / 2 {
        return Err(WireError::Malformed("event count exceeds payload"));
    }
    let mut events = Vec::with_capacity(count as usize);
    let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let event_id = |p: u32, i: u32| -> Result<EventId, WireError> {
        if i == 0 {
            return Err(WireError::Malformed("event index 0 is invalid"));
        }
        Ok(EventId::new(ProcessId(p), EventIndex(i)))
    };
    for _ in 0..count {
        let flags = *buf
            .get(pos)
            .ok_or(WireError::Malformed("event cut short"))?;
        pos += 1;
        if flags & !(FLAG_KIND_MASK | FLAG_EXPLICIT_INDEX) != 0 {
            return Err(WireError::Malformed("unknown event flag bits"));
        }
        let pid = get_varint_u32(buf, &mut pos)?;
        let index = if flags & FLAG_EXPLICIT_INDEX != 0 {
            get_varint_u32(buf, &mut pos)?
        } else {
            let prev = *last
                .get(&pid)
                .ok_or(WireError::Malformed("implicit index without predecessor"))?;
            prev.checked_add(1)
                .ok_or(WireError::Malformed("event index overflow"))?
        };
        let id = event_id(pid, index)?;
        last.insert(pid, index);
        let kind = match flags & FLAG_KIND_MASK {
            0 => EventKind::Internal,
            1 => EventKind::Send {
                to: ProcessId(get_varint_u32(buf, &mut pos)?),
            },
            2 => {
                let p = get_varint_u32(buf, &mut pos)?;
                let i = get_varint_u32(buf, &mut pos)?;
                EventKind::Receive {
                    from: event_id(p, i)?,
                }
            }
            _ => {
                let p = get_varint_u32(buf, &mut pos)?;
                let i = get_varint_u32(buf, &mut pos)?;
                EventKind::Sync {
                    peer: event_id(p, i)?,
                }
            }
        };
        events.push(Event::new(id, kind));
    }
    if pos != buf.len() {
        return Err(WireError::Malformed("trailing bytes after event block"));
    }
    Ok(events)
}

/// One decoded WAL record.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Global delivery offset of the first event in the record (1-based).
    pub first_offset: u64,
    pub events: Vec<Event>,
}

/// Why a segment scan stopped before end-of-file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TornTail {
    /// The header itself is short or corrupt; the whole file is unusable.
    BadHeader,
    /// A record's length prefix or body was cut short by a crash.
    ShortRecord,
    /// A record's CRC does not match its payload (torn or bit-flipped).
    BadCrc,
    /// A record decoded under CRC but not under the wire codec, or its
    /// offsets are not contiguous — corruption the CRC happened to pass or
    /// a writer bug; treated as a torn tail all the same.
    BadPayload,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornTail::BadHeader => write!(f, "corrupt segment header"),
            TornTail::ShortRecord => write!(f, "record cut short"),
            TornTail::BadCrc => write!(f, "record CRC mismatch"),
            TornTail::BadPayload => write!(f, "record payload undecodable"),
        }
    }
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    pub path: PathBuf,
    /// Start offset from the (validated) header.
    pub start_offset: u64,
    /// Records of the valid prefix, in order, contiguous from
    /// `start_offset + 1`.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (truncation point when torn).
    pub valid_len: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<TornTail>,
}

impl SegmentScan {
    /// Delivery offset one past the last valid event (== `start_offset`
    /// when the segment holds no valid records).
    pub fn end_offset(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.first_offset + r.events.len() as u64 - 1)
            .unwrap_or(self.start_offset)
    }

    /// Total valid events.
    pub fn num_events(&self) -> usize {
        self.records.iter().map(|r| r.events.len()).sum()
    }
}

/// Upper bound on one record's payload, mirroring the wire's frame cap: a
/// corrupt length prefix must not trigger a huge allocation.
const MAX_RECORD: u32 = wire::MAX_FRAME;

/// Scan a segment, stopping at the first torn or corrupt record. Never
/// fails on corruption — that is reported in [`SegmentScan::torn`] — only on
/// real I/O errors.
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        start_offset: 0,
        records: Vec::new(),
        valid_len: 0,
        torn: None,
    };
    if buf.len() < HEADER_LEN as usize
        || (&buf[..8] != MAGIC && &buf[..8] != MAGIC_V1)
        || crc32(&buf[..16]) != u32::from_le_bytes(buf[16..20].try_into().unwrap())
    {
        scan.torn = Some(TornTail::BadHeader);
        return Ok(scan);
    }
    let delta_encoded = &buf[..8] == MAGIC;
    scan.start_offset = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    scan.valid_len = HEADER_LEN;
    let mut pos = HEADER_LEN as usize;
    let mut expect_offset = scan.start_offset + 1;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            scan.torn = Some(TornTail::ShortRecord);
            return Ok(scan);
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD || pos + 8 + len as usize > buf.len() {
            scan.torn = Some(TornTail::ShortRecord);
            return Ok(scan);
        }
        let payload = &buf[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            scan.torn = Some(TornTail::BadCrc);
            return Ok(scan);
        }
        let record = match decode_record(payload, delta_encoded) {
            Ok(r) => r,
            Err(_) => {
                scan.torn = Some(TornTail::BadPayload);
                return Ok(scan);
            }
        };
        if record.first_offset != expect_offset || record.events.is_empty() {
            scan.torn = Some(TornTail::BadPayload);
            return Ok(scan);
        }
        expect_offset += record.events.len() as u64;
        pos += 8 + len as usize;
        scan.valid_len = pos as u64;
        scan.records.push(record);
    }
    Ok(scan)
}

fn decode_record(payload: &[u8], delta_encoded: bool) -> Result<WalRecord, WireError> {
    if payload.len() < 8 {
        return Err(WireError::Malformed("record payload too short"));
    }
    let first_offset = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let events = if delta_encoded {
        decode_delta_block(&payload[8..])?
    } else {
        wire::decode_event_block(&payload[8..])?
    };
    Ok(WalRecord {
        first_offset,
        events,
    })
}

/// Physically truncate a torn segment to its valid prefix and sync it.
pub fn truncate_segment(path: &Path, valid_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()?;
    Ok(())
}

/// All WAL segments in `dir`, sorted by start offset.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_util::failpoint::FailpointFs;
    use cts_workloads::{spmd::Stencil1D, Workload};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cts-wal-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<Event> {
        Stencil1D { procs: 6, iters: 4 }
            .generate(11)
            .events()
            .to_vec()
    }

    #[test]
    fn roundtrip_batches_through_a_segment() {
        let dir = tmpdir("roundtrip");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::from_millis(0)).unwrap();
        for chunk in events.chunks(17) {
            w.append(chunk).unwrap();
            w.maybe_sync().unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.end_offset(), events.len() as u64);
        assert!(w.syncs() >= 1);

        let scan = scan_segment(&dir.join(segment_name(0))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.start_offset, 0);
        assert_eq!(scan.num_events(), events.len());
        assert_eq!(scan.end_offset(), events.len() as u64);
        let replayed: Vec<Event> = scan
            .records
            .iter()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn nonzero_start_offset_is_contiguous() {
        let dir = tmpdir("offsets");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 100, Duration::from_millis(5)).unwrap();
        w.append(&events[..10]).unwrap();
        w.append(&events[10..25]).unwrap();
        w.sync().unwrap();
        let scan = scan_segment(&dir.join(segment_name(100))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.records[0].first_offset, 101);
        assert_eq!(scan.records[1].first_offset, 111);
        assert_eq!(scan.end_offset(), 125);
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let dir = tmpdir("torn");
        let events = sample_events();
        // First, learn the full length of two records.
        let mut probe = WalWriter::from_sink(Vec::new(), 0, Duration::ZERO).unwrap();
        probe.append(&events[..8]).unwrap();
        let one_record = probe.bytes_written();
        probe.append(&events[8..16]).unwrap();
        let full = probe.bytes_written();

        // Now write the same two records through a failpoint that crashes
        // 5 bytes into the second record.
        let path = dir.join(segment_name(0));
        let fp = FailpointFs::create(&path, one_record + 5).unwrap();
        let mut w = WalWriter::from_sink(fp, 0, Duration::ZERO).unwrap();
        w.append(&events[..8]).unwrap();
        assert!(w.append(&events[8..16]).is_err());
        drop(w);
        assert!(std::fs::metadata(&path).unwrap().len() < full);

        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::ShortRecord));
        assert_eq!(scan.num_events(), 8);
        assert_eq!(scan.valid_len, one_record);

        truncate_segment(&path, scan.valid_len).unwrap();
        let rescan = scan_segment(&path).unwrap();
        assert_eq!(rescan.torn, None);
        assert_eq!(rescan.num_events(), 8);
    }

    #[test]
    fn bit_flip_fails_the_crc() {
        let dir = tmpdir("bitflip");
        let events = sample_events();
        let path = dir.join(segment_name(0));
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..8]).unwrap();
        w.append(&events[8..16]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip one bit in the middle of the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let scan = scan_segment(&path).unwrap();
        let second_start =
            HEADER_LEN as usize + (scan.valid_len as usize - HEADER_LEN as usize) / 2;
        bytes[second_start + 12] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_segment(&path).unwrap();
        assert!(matches!(
            scan.torn,
            Some(TornTail::BadCrc) | Some(TornTail::ShortRecord)
        ));
        assert!(scan.num_events() < 16);
    }

    #[test]
    fn empty_and_headerless_files_are_handled() {
        let dir = tmpdir("empty");
        let path = dir.join(segment_name(0));
        std::fs::write(&path, b"").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::BadHeader));
        assert_eq!(scan.num_events(), 0);

        std::fs::write(&path, b"garbage header bytes").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::BadHeader));

        // A header-only segment (no records yet) is valid and empty.
        let w = WalWriter::create(&dir, 7, Duration::ZERO).unwrap();
        drop(w);
        let scan = scan_segment(&dir.join(segment_name(7))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.start_offset, 7);
        assert_eq!(scan.num_events(), 0);
    }

    #[test]
    fn delta_block_roundtrips_all_kinds() {
        use cts_model::{EventId, EventIndex, EventKind, ProcessId};
        let id = |p: u32, i: u32| EventId::new(ProcessId(p), EventIndex(i));
        // Interleaved processes, every kind, a deliberate index gap on P2
        // (never produced by a valid delivery order, but the codec is total).
        let events = vec![
            Event::new(id(0, 1), EventKind::Internal),
            Event::new(id(1, 1), EventKind::Send { to: ProcessId(0) }),
            Event::new(id(0, 2), EventKind::Receive { from: id(1, 1) }),
            Event::new(id(2, 1), EventKind::Sync { peer: id(3, 1) }),
            Event::new(id(0, 3), EventKind::Internal),
            Event::new(id(2, 5), EventKind::Internal), // gap: explicit index
            Event::new(id(2, 6), EventKind::Internal), // continues the gap
        ];
        let mut buf = Vec::new();
        encode_delta_block(&mut buf, &events);
        assert_eq!(decode_delta_block(&buf).unwrap(), events);
        // Truncations and flag corruption must error, never panic.
        for cut in 0..buf.len() {
            assert!(decode_delta_block(&buf[..cut]).is_err());
        }
        let mut bad = buf.clone();
        bad[1] |= 0xF8; // undefined flag bits on the first event
        assert!(decode_delta_block(&bad).is_err());
    }

    #[test]
    fn delta_encoding_shrinks_records() {
        let events = sample_events();
        let mut v2 = Vec::new();
        encode_delta_block(&mut v2, &events);
        let mut v1 = Vec::new();
        wire::encode_event_block(&mut v1, &events);
        assert!(
            v2.len() * 2 <= v1.len(),
            "delta block {} bytes vs fixed-width {} — expected >= 2x smaller",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v1_segments_still_scan() {
        // Hand-write a v1 segment (old magic, fixed-width wire codec) and
        // require the scanner to replay it identically: recovery must read
        // logs written before the delta-encoding upgrade.
        let dir = tmpdir("v1-compat");
        let events = sample_events();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let hcrc = crc32(&bytes);
        bytes.extend_from_slice(&hcrc.to_le_bytes());
        let mut offset = 1u64;
        for chunk in events.chunks(10) {
            let mut payload = Vec::new();
            payload.extend_from_slice(&offset.to_le_bytes());
            wire::encode_event_block(&mut payload, chunk);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            offset += chunk.len() as u64;
        }
        let path = dir.join(segment_name(0));
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, None);
        let replayed: Vec<Event> = scan
            .records
            .iter()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(parse_segment_name(&segment_name(0)), Some(0));
        assert_eq!(parse_segment_name(&segment_name(338_320)), Some(338_320));
        assert_eq!(parse_segment_name("wal-zz.wal"), None);
        assert_eq!(parse_segment_name("ckpt-0.ckpt"), None);
        let dir = tmpdir("list");
        for start in [512u64, 0, 64] {
            WalWriter::create(&dir, start, Duration::ZERO).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        let starts: Vec<u64> = segs.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 64, 512]);
    }
}
