//! The per-computation write-ahead log: length-prefixed, CRC-protected
//! records of *delivered* events, fsync-batched under a group-commit window.
//!
//! The WAL sits after causal-delivery reordering: each record holds a batch
//! of events in valid delivery order, stamped with the global delivery
//! offset of its first event. Replaying segments in order therefore feeds
//! the normal ingest pipeline a prefix of a valid delivery order — the
//! replay-clock recovery primitive: state is never serialized, it is
//! recomputed from the recorded event stream.
//!
//! ## On-disk layout
//!
//! A segment file `wal-<start>.wal` (where `<start>` is the 16-hex-digit
//! count of events durable before the segment) is:
//!
//! ```text
//! [8]  magic "CTSWAL1\n"
//! [8]  u64 LE start offset (must match the file name)
//! [4]  u32 LE CRC-32 of the 16 header bytes
//! record*
//! ```
//!
//! and each record is:
//!
//! ```text
//! [4]  u32 LE payload length
//! [4]  u32 LE CRC-32 of the payload
//! [n]  payload = [u64 LE first_offset][u32 count][event...]   (wire codec)
//! ```
//!
//! A crash can tear at most the tail of the newest segment; a reader stops
//! at the first record whose length or CRC does not check out and reports
//! the byte offset of the valid prefix, which recovery physically truncates
//! before appending again.
//!
//! ## Group commit
//!
//! `fsync` per record would gate ingest throughput on device flush latency.
//! [`WalWriter`] instead marks itself dirty on append and syncs when
//! [`WalWriter::maybe_sync`] observes the configured window elapsed — plus
//! unconditionally on flush barriers, checkpoints, and graceful shutdown.
//! The window bounds the crash-loss tail; clients re-transmitting after a
//! restart close it (the reorder buffer deduplicates replayed deliveries).

use crate::wire::{self, WireError};
use cts_model::Event;
use cts_util::crc32::crc32;
use cts_util::failpoint::DurableSink;
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Segment header magic.
pub const MAGIC: &[u8; 8] = b"CTSWAL1\n";

/// Header length: magic + start offset + header CRC.
pub const HEADER_LEN: u64 = 8 + 8 + 4;

/// Name of the segment whose first record continues from `start` durable
/// events.
pub fn segment_name(start: u64) -> String {
    format!("wal-{start:016x}.wal")
}

/// Parse a segment file name back to its start offset.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    u64::from_str_radix(hex, 16).ok()
}

/// An appender over one segment. Generic over the sink so tests can inject
/// faults ([`cts_util::failpoint::FailpointFs`]) and benches can measure the
/// codec against a memory sink.
pub struct WalWriter<S: DurableSink = File> {
    sink: S,
    /// Global delivery offset of the last event appended (== the segment
    /// start until the first append).
    end_offset: u64,
    window: Duration,
    dirty: bool,
    last_sync: Instant,
    bytes_written: u64,
    syncs: u64,
}

impl WalWriter<File> {
    /// Create the segment `dir/wal-<start>.wal` (failing if it exists) and
    /// write its header. The header is not yet synced; the first
    /// [`sync`](Self::sync) covers it.
    pub fn create(dir: &Path, start: u64, window: Duration) -> io::Result<WalWriter<File>> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(dir.join(segment_name(start)))?;
        WalWriter::from_sink(file, start, window)
    }
}

impl<S: DurableSink> WalWriter<S> {
    /// Wrap an empty sink, writing the segment header.
    pub fn from_sink(mut sink: S, start: u64, window: Duration) -> io::Result<WalWriter<S>> {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&start.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        sink.write_all(&header)?;
        Ok(WalWriter {
            sink,
            end_offset: start,
            window,
            dirty: true,
            last_sync: Instant::now(),
            bytes_written: HEADER_LEN,
            syncs: 0,
        })
    }

    /// Append one record of delivered events (must be non-empty and
    /// contiguous with the previous append). Does not sync.
    pub fn append(&mut self, events: &[Event]) -> io::Result<()> {
        debug_assert!(!events.is_empty(), "empty WAL records are pointless");
        let mut payload = Vec::with_capacity(8 + 4 + events.len() * 13);
        payload.extend_from_slice(&(self.end_offset + 1).to_le_bytes());
        wire::encode_event_block(&mut payload, events);
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.sink.write_all(&rec)?;
        self.end_offset += events.len() as u64;
        self.bytes_written += rec.len() as u64;
        self.dirty = true;
        Ok(())
    }

    /// Sync if dirty and the group-commit window has elapsed. Returns
    /// whether a sync happened.
    pub fn maybe_sync(&mut self) -> io::Result<bool> {
        if !self.dirty || self.last_sync.elapsed() < self.window {
            return Ok(false);
        }
        self.sync()?;
        Ok(true)
    }

    /// Unconditional durability barrier (no-op when clean).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.sink.flush()?;
            self.sink.sync_data()?;
            self.dirty = false;
            self.syncs += 1;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Global delivery offset of the last appended event.
    pub fn end_offset(&self) -> u64 {
        self.end_offset
    }

    /// Total bytes written to this segment (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Durability barriers issued so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// One decoded WAL record.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Global delivery offset of the first event in the record (1-based).
    pub first_offset: u64,
    pub events: Vec<Event>,
}

/// Why a segment scan stopped before end-of-file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TornTail {
    /// The header itself is short or corrupt; the whole file is unusable.
    BadHeader,
    /// A record's length prefix or body was cut short by a crash.
    ShortRecord,
    /// A record's CRC does not match its payload (torn or bit-flipped).
    BadCrc,
    /// A record decoded under CRC but not under the wire codec, or its
    /// offsets are not contiguous — corruption the CRC happened to pass or
    /// a writer bug; treated as a torn tail all the same.
    BadPayload,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornTail::BadHeader => write!(f, "corrupt segment header"),
            TornTail::ShortRecord => write!(f, "record cut short"),
            TornTail::BadCrc => write!(f, "record CRC mismatch"),
            TornTail::BadPayload => write!(f, "record payload undecodable"),
        }
    }
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    pub path: PathBuf,
    /// Start offset from the (validated) header.
    pub start_offset: u64,
    /// Records of the valid prefix, in order, contiguous from
    /// `start_offset + 1`.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (truncation point when torn).
    pub valid_len: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<TornTail>,
}

impl SegmentScan {
    /// Delivery offset one past the last valid event (== `start_offset`
    /// when the segment holds no valid records).
    pub fn end_offset(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.first_offset + r.events.len() as u64 - 1)
            .unwrap_or(self.start_offset)
    }

    /// Total valid events.
    pub fn num_events(&self) -> usize {
        self.records.iter().map(|r| r.events.len()).sum()
    }
}

/// Upper bound on one record's payload, mirroring the wire's frame cap: a
/// corrupt length prefix must not trigger a huge allocation.
const MAX_RECORD: u32 = wire::MAX_FRAME;

/// Scan a segment, stopping at the first torn or corrupt record. Never
/// fails on corruption — that is reported in [`SegmentScan::torn`] — only on
/// real I/O errors.
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        start_offset: 0,
        records: Vec::new(),
        valid_len: 0,
        torn: None,
    };
    if buf.len() < HEADER_LEN as usize
        || &buf[..8] != MAGIC
        || crc32(&buf[..16]) != u32::from_le_bytes(buf[16..20].try_into().unwrap())
    {
        scan.torn = Some(TornTail::BadHeader);
        return Ok(scan);
    }
    scan.start_offset = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    scan.valid_len = HEADER_LEN;
    let mut pos = HEADER_LEN as usize;
    let mut expect_offset = scan.start_offset + 1;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            scan.torn = Some(TornTail::ShortRecord);
            return Ok(scan);
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD || pos + 8 + len as usize > buf.len() {
            scan.torn = Some(TornTail::ShortRecord);
            return Ok(scan);
        }
        let payload = &buf[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            scan.torn = Some(TornTail::BadCrc);
            return Ok(scan);
        }
        let record = match decode_record(payload) {
            Ok(r) => r,
            Err(_) => {
                scan.torn = Some(TornTail::BadPayload);
                return Ok(scan);
            }
        };
        if record.first_offset != expect_offset || record.events.is_empty() {
            scan.torn = Some(TornTail::BadPayload);
            return Ok(scan);
        }
        expect_offset += record.events.len() as u64;
        pos += 8 + len as usize;
        scan.valid_len = pos as u64;
        scan.records.push(record);
    }
    Ok(scan)
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, WireError> {
    if payload.len() < 8 {
        return Err(WireError::Malformed("record payload too short"));
    }
    let first_offset = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let events = wire::decode_event_block(&payload[8..])?;
    Ok(WalRecord {
        first_offset,
        events,
    })
}

/// Physically truncate a torn segment to its valid prefix and sync it.
pub fn truncate_segment(path: &Path, valid_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()?;
    Ok(())
}

/// All WAL segments in `dir`, sorted by start offset.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_util::failpoint::FailpointFs;
    use cts_workloads::{spmd::Stencil1D, Workload};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cts-wal-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<Event> {
        Stencil1D { procs: 6, iters: 4 }
            .generate(11)
            .events()
            .to_vec()
    }

    #[test]
    fn roundtrip_batches_through_a_segment() {
        let dir = tmpdir("roundtrip");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 0, Duration::from_millis(0)).unwrap();
        for chunk in events.chunks(17) {
            w.append(chunk).unwrap();
            w.maybe_sync().unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.end_offset(), events.len() as u64);
        assert!(w.syncs() >= 1);

        let scan = scan_segment(&dir.join(segment_name(0))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.start_offset, 0);
        assert_eq!(scan.num_events(), events.len());
        assert_eq!(scan.end_offset(), events.len() as u64);
        let replayed: Vec<Event> = scan
            .records
            .iter()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn nonzero_start_offset_is_contiguous() {
        let dir = tmpdir("offsets");
        let events = sample_events();
        let mut w = WalWriter::create(&dir, 100, Duration::from_millis(5)).unwrap();
        w.append(&events[..10]).unwrap();
        w.append(&events[10..25]).unwrap();
        w.sync().unwrap();
        let scan = scan_segment(&dir.join(segment_name(100))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.records[0].first_offset, 101);
        assert_eq!(scan.records[1].first_offset, 111);
        assert_eq!(scan.end_offset(), 125);
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let dir = tmpdir("torn");
        let events = sample_events();
        // First, learn the full length of two records.
        let mut probe = WalWriter::from_sink(Vec::new(), 0, Duration::ZERO).unwrap();
        probe.append(&events[..8]).unwrap();
        let one_record = probe.bytes_written();
        probe.append(&events[8..16]).unwrap();
        let full = probe.bytes_written();

        // Now write the same two records through a failpoint that crashes
        // 5 bytes into the second record.
        let path = dir.join(segment_name(0));
        let fp = FailpointFs::create(&path, one_record + 5).unwrap();
        let mut w = WalWriter::from_sink(fp, 0, Duration::ZERO).unwrap();
        w.append(&events[..8]).unwrap();
        assert!(w.append(&events[8..16]).is_err());
        drop(w);
        assert!(std::fs::metadata(&path).unwrap().len() < full);

        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::ShortRecord));
        assert_eq!(scan.num_events(), 8);
        assert_eq!(scan.valid_len, one_record);

        truncate_segment(&path, scan.valid_len).unwrap();
        let rescan = scan_segment(&path).unwrap();
        assert_eq!(rescan.torn, None);
        assert_eq!(rescan.num_events(), 8);
    }

    #[test]
    fn bit_flip_fails_the_crc() {
        let dir = tmpdir("bitflip");
        let events = sample_events();
        let path = dir.join(segment_name(0));
        let mut w = WalWriter::create(&dir, 0, Duration::ZERO).unwrap();
        w.append(&events[..8]).unwrap();
        w.append(&events[8..16]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip one bit in the middle of the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let scan = scan_segment(&path).unwrap();
        let second_start =
            HEADER_LEN as usize + (scan.valid_len as usize - HEADER_LEN as usize) / 2;
        bytes[second_start + 12] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_segment(&path).unwrap();
        assert!(matches!(
            scan.torn,
            Some(TornTail::BadCrc) | Some(TornTail::ShortRecord)
        ));
        assert!(scan.num_events() < 16);
    }

    #[test]
    fn empty_and_headerless_files_are_handled() {
        let dir = tmpdir("empty");
        let path = dir.join(segment_name(0));
        std::fs::write(&path, b"").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::BadHeader));
        assert_eq!(scan.num_events(), 0);

        std::fs::write(&path, b"garbage header bytes").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn, Some(TornTail::BadHeader));

        // A header-only segment (no records yet) is valid and empty.
        let w = WalWriter::create(&dir, 7, Duration::ZERO).unwrap();
        drop(w);
        let scan = scan_segment(&dir.join(segment_name(7))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.start_offset, 7);
        assert_eq!(scan.num_events(), 0);
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(parse_segment_name(&segment_name(0)), Some(0));
        assert_eq!(parse_segment_name(&segment_name(338_320)), Some(338_320));
        assert_eq!(parse_segment_name("wal-zz.wal"), None);
        assert_eq!(parse_segment_name("ckpt-0.ckpt"), None);
        let dir = tmpdir("list");
        for start in [512u64, 0, 64] {
            WalWriter::create(&dir, start, Duration::ZERO).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        let starts: Vec<u64> = segs.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 64, 512]);
    }
}
