//! # cts-daemon — an online monitoring-entity server
//!
//! The paper's monitoring entity (§1) is an *online* system: processes of the
//! target computation forward their events as they happen, the entity builds
//! timestamps incrementally, and interactive tools query precedence while the
//! computation is still running. The rest of this workspace exercises that
//! machinery in batch; this crate closes the loop and runs it as a server:
//!
//! - [`wire`]: a length-prefixed binary protocol over TCP (`std::net` only);
//! - [`reorder`]: a causal-delivery buffer that repairs the arbitrary
//!   arrival interleaving of concurrent client streams — duplicates dropped,
//!   gaps parked until their predecessors arrive;
//! - [`pipeline`]: the per-computation ingest pipeline — reorder buffer →
//!   [`cts_core::ClusterEngine`] → [`cts_store::SharedStore`] — publishing
//!   immutable epoch snapshots that query threads read without blocking
//!   ingest;
//! - [`server`]: the TCP daemon — bounded ingest queues for backpressure,
//!   per-connection sessions, graceful shutdown;
//! - [`client`]: a blocking typed client used by tests and the load
//!   generator;
//! - [`metrics`]: lock-free counters and latency histograms behind the
//!   `Stats` wire message;
//! - [`loadgen`]: replays the standard workload suite as concurrent client
//!   streams and differentially checks every answer against the offline
//!   batch engine;
//! - [`wal`] + [`checkpoint`]: the durability subsystem — a CRC-protected,
//!   group-committed write-ahead log of the post-reorder delivery order,
//!   periodic checkpoints of the delivered prefix, and a recovery scan that
//!   truncates torn tails and replays through the normal pipeline. Because
//!   state is a pure function of delivery order, recovery is replay;
//! - [`shard`]: the sharded ingest path — per-process-group delivery cores,
//!   the cross-shard clock exchange, cluster-driven rebalancing, the
//!   two-phase snapshot cut, and the deterministic schedule-exploration
//!   harness that proves them equivalent to the single-worker pipeline;
//! - [`replication`]: read scale-out — the WAL record stream doubles as a
//!   replication log, so `--follow <leader>` daemons replay it through the
//!   normal pipeline and answer queries bit-identically to the leader at
//!   commit-point epochs, fenced by leader leases;
//! - [`drift`]: the adaptive re-clustering soak — streams the
//!   planted-drift fixtures through an `--adaptive` daemon, samples
//!   cluster-receive-ratio curves at the planted phase boundaries, and
//!   gates on the differential oracle plus drift-detector liveness;
//! - [`place`]: the shard-autoscaling soak — planted hot-group fixtures
//!   through a `--shards auto` daemon, placement sampled over the wire
//!   mid-stream, gated on autoscaler liveness plus the differential
//!   oracle;
//! - [`topology`]: CPU/cache/NUMA discovery from sysfs and the placement
//!   plan that pins shard workers, pollers, and the WAL clock to distinct
//!   cores (`--pin-cores`), feeding the live shard autoscaler
//!   (`--shards auto`).
//!
//! Correctness rests on the delivery-order-invariance property established
//! by the core crates: any valid delivery order yields exact precedence, so
//! the daemon's answers must be byte-identical to an offline run no matter
//! how the network interleaves the streams. `tests/daemon_soak.rs` asserts
//! exactly that over the full 54-computation suite.

pub mod checkpoint;
pub mod client;
pub mod drift;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod loadgen;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod netpoll;
pub mod pipeline;
pub mod place;
pub mod query_pool;
pub mod reorder;
pub mod replication;
pub mod server;
pub mod shard;
pub(crate) mod sharded;
pub mod topology;
pub mod wal;
pub mod wire;

pub use client::Client;
pub use loadgen::{LoadConfig, LoadReport};
pub use reorder::{ReorderBuffer, ShardHooks, ShardReorderBuffer};
pub use server::{Daemon, DaemonConfig};
pub use shard::{ShardSchedule, SimShards};
