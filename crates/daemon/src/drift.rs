//! The drift soak (`cts-loadgen --drift`): stream the planted-drift
//! fixtures through an *adaptive* daemon, sample the cluster map at every
//! planted phase boundary, and differentially verify everything the
//! ordinary soak verifies.
//!
//! The soak's claims, in order of importance:
//!
//! 1. **Exactness under migration.** Precedence, greatest-concurrent,
//!    window, and time-travel answers match the offline batch engine —
//!    which is clustering-*independent* — so however the adaptive engine
//!    merged and migrated, the partial order it reports is the true one.
//!    Zero mismatches is the CI gate (`ci.sh adapt`).
//! 2. **The detector actually fires.** Each drift fixture plants phase
//!    changes at known event offsets ([`cts_workloads::drift`]); the soak
//!    requires at least one migration per fixture, so a silently dead
//!    drift detector cannot pass.
//! 3. **Ratio-vs-time curves.** At each planted boundary (plus the final
//!    flush) the soak records delivered events, cumulative cluster
//!    receives, and migrations — the per-phase cluster-receive ratio curve
//!    the adaptive-vs-static comparison is about.

use crate::client::Client;
use crate::loadgen::{self, LoadConfig, LoadReport};
use cts_workloads::drift::{PhaseShiftStencil, RebalancedWebTiers};
use cts_workloads::suite::{Env, SuiteEntry};
use cts_workloads::Workload;
use std::io;

/// The planted-drift fixtures, with their drift points. These are the
/// parameterizations pinned by the workloads crate's
/// `golden_drift_families` test — edits there fail goldens before they can
/// invalidate the soak's phase alignment.
pub fn drift_suite() -> Vec<(SuiteEntry, Vec<u64>)> {
    let stencil = PhaseShiftStencil {
        procs: 32,
        phases: 4,
        iters_per_phase: 6,
        block: 8,
    };
    let tiers = RebalancedWebTiers {
        clients: 12,
        frontends: 6,
        backends: 6,
        requests: 600,
        phases: 3,
    };
    vec![
        (
            SuiteEntry {
                name: stencil.name(),
                env: Env::Pvm,
                trace: stencil.generate(1),
            },
            stencil.drift_points(),
        ),
        (
            SuiteEntry {
                name: tiers.name(),
                env: Env::Java,
                trace: tiers.generate(1),
            },
            tiers.drift_points(),
        ),
    ]
}

/// One point of a ratio-vs-time curve, sampled at a planted phase boundary
/// (or the final flush).
#[derive(Clone, Copy, Debug)]
pub struct RatioSample {
    /// Events delivered when the sample was taken.
    pub delivered: u64,
    /// Cumulative cluster receives (full-width stamps) at that point.
    pub cluster_receives: u64,
    /// Cumulative drift migrations at that point.
    pub migrations: u64,
    /// Cumulative merges at that point.
    pub merges: u64,
}

impl RatioSample {
    /// Cluster receives per delivered event so far.
    pub fn ratio(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.cluster_receives as f64 / self.delivered as f64
    }
}

/// Outcome of [`run_drift_soak`].
pub struct DriftReport {
    /// The ordinary soak report over the drift suite (differential checks,
    /// RTTs, mismatch count).
    pub load: LoadReport,
    /// Per-fixture ratio-vs-time curve, one sample per planted phase
    /// boundary plus one at the final flush.
    pub curves: Vec<(String, Vec<RatioSample>)>,
    /// Total migrations across the suite (the detector-liveness gate).
    pub migrations: u64,
    /// Fixtures that finished without a single migration. Non-empty means
    /// the drift detector failed to react to a planted drift.
    pub undetected: Vec<String>,
}

impl DriftReport {
    /// The soak passes iff the differential oracle held *and* every
    /// planted drift provoked at least one migration.
    pub fn passed(&self) -> bool {
        self.load.mismatches == 0 && self.undetected.is_empty()
    }

    /// Human-readable block: the load summary plus the curves.
    pub fn render(&self) -> String {
        let mut out = self.load.render();
        out.push_str(&format!("\nmigrations        {}", self.migrations));
        for (name, curve) in &self.curves {
            out.push_str(&format!("\nratio curve       {name}"));
            for s in curve {
                out.push_str(&format!(
                    "\n  @{:<8} cr {:<7} ratio {:.4}  merges {:<4} migrations {}",
                    s.delivered,
                    s.cluster_receives,
                    s.ratio(),
                    s.merges,
                    s.migrations,
                ));
            }
        }
        if !self.undetected.is_empty() {
            out.push_str(&format!(
                "\nUNDETECTED drift  {:?} (no migration fired)",
                self.undetected
            ));
        }
        out
    }
}

/// Run the drift soak against an adaptive daemon at `cfg.addr`.
///
/// Phase 1 streams each fixture *in delivery order, segmented at its
/// planted drift points*, flushing and sampling the cluster map at every
/// boundary — that alignment is what makes the curves interpretable.
/// Phase 2 re-runs the ordinary [`loadgen::run`] soak over the same suite:
/// its shuffled, duplicated re-ingest is fully absorbed by the reorder
/// buffer (everything is already delivered), and its query, batch, as-of,
/// and window phases do the differential checking.
///
/// The daemon must be started with adaptive stamping (`--adaptive` /
/// [`crate::server::DaemonConfig::adaptive`]); a merge-only daemon still
/// passes the oracle but fails the detector-liveness gate.
pub fn run_drift_soak(cfg: &LoadConfig) -> io::Result<DriftReport> {
    let suite = drift_suite();
    let mut curves = Vec::new();
    let mut migrations = 0u64;
    let mut undetected = Vec::new();

    for (entry, points) in &suite {
        let mut client = Client::connect(cfg.addr)?;
        client.proto_hello()?;
        client.hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )?;
        let events = entry.trace.events();
        let mut curve = Vec::new();
        let mut cuts: Vec<usize> = points.iter().map(|&pt| pt as usize).collect();
        cuts.push(events.len());
        let mut from = 0usize;
        for cut in cuts {
            client.stream_events(&events[from..cut], cfg.batch)?;
            client.flush(cut as u64)?;
            let map = client.cluster_map()?;
            curve.push(RatioSample {
                delivered: map.delivered,
                cluster_receives: map.cluster_receives,
                migrations: map.migrations,
                merges: map.merges,
            });
            from = cut;
        }
        let last = curve.last().expect("at least the final flush sample");
        migrations += last.migrations;
        if last.migrations == 0 {
            undetected.push(entry.name.clone());
        }
        curves.push((entry.name.clone(), curve));
        client.goodbye()?;
    }

    let entries: Vec<SuiteEntry> = suite.into_iter().map(|(e, _)| e).collect();
    let load = loadgen::run(&entries, cfg)?;
    Ok(DriftReport {
        load,
        curves,
        migrations,
        undetected,
    })
}
