//! The threaded sharded ingest runtime.
//!
//! [`crate::shard`] defines the synchronous per-shard cores and proves them
//! correct under the deterministic schedule harness; this module runs the
//! *same* cores on real threads. One worker thread per shard owns a
//! [`ShardCore`] behind a mutex and drains a bounded message channel;
//! connection threads partition incoming batches by the process-routing
//! table and block on the target shard's channel for backpressure.
//!
//! ## Messaging discipline
//!
//! Shard-to-shard signals (cross-shard wake-ups, forwards of batches that
//! raced a rebalance) must never block a shard thread, or two full queues
//! could deadlock the pair. They go through a per-shard unbounded *overflow*
//! inbox plus a best-effort `Nudge` on the bounded channel: if the nudge
//! fits, the idle target wakes immediately; if the channel is full the
//! target is busy and will drain the overflow at its next loop iteration
//! (overflow is always checked first).
//!
//! `pending_msgs` counts every queued-or-in-flight message (batches, wakes,
//! nudges); a message's follow-on wake-ups are enqueued *before* its own
//! count is released, so `pending_msgs == 0` means the runtime is quiescent.
//!
//! ## The freeze barrier
//!
//! Rebalances, snapshot cuts, flush barriers, and shutdown all run under a
//! stop-the-world *freeze*: take the freeze mutex (serializing initiators),
//! raise the pause flag (shard threads park between messages), then acquire
//! every shard's state mutex. A shard holds its state mutex only while
//! processing a single message, so the freeze completes after at most one
//! in-flight message per shard. Initiators never hold a shard state mutex
//! when they start a freeze, so the barrier cannot deadlock.
//!
//! ## Live autoscaling (no freeze)
//!
//! With `--shards auto` / `--balance` the runtime pre-allocates worker
//! slots up to the host's parallelism and keeps only a prefix *active*.
//! A [`PlacementEngine`] tracks per-shard occupancy EWMAs; splitting a hot
//! shard, retiring a cold one, or stealing a cluster takes the freeze
//! *mutex* (serializing against cuts and rebalances) but neither raises the
//! pause flag nor touches any state mutex beyond the two shards involved —
//! every other shard keeps ingesting throughout. This is sound for the same
//! reason rebalance migrations are: ownership hand-off is entirely
//! exchange-mediated ([`migrate_between`] publishes the released process's
//! in-flight clocks before the new owner adopts), and the cut assembler —
//! the only cross-shard aggregate — is reachable only under the freeze
//! mutex the rescale holds. Retired slots keep their worker thread parked
//! on an empty channel and their WAL directory in place; recovery unions
//! every shard directory anyway, which is what makes shard-count changes
//! crash-safe.
//!
//! ## Durability layout
//!
//! Each shard write-ahead logs *its own* delivered order into
//! `dir/shard-NN/` segments (group-committed like the single-worker WAL).
//! Checkpoints stay global: the assembled cut — a valid delivery order — is
//! checkpointed at the top level, and shard segments are retired once the
//! cut has caught up with every delivered event. Recovery unions the
//! top-level state (legacy single-worker layout or a previous global
//! checkpoint, recovered contiguously) with *every* readable record of
//! every shard segment, in any order: events are self-identifying, so the
//! reorder buffers dedup and re-sequence the union, and a torn tail on one
//! shard (it lagged the others at the crash) merely parks the dependents
//! that were never acknowledged — delivery-order invariance makes the
//! replayed state exact.

use crate::checkpoint::{self, CompMeta, RecoveryReport};
use crate::pipeline::{lock, CompShared, ComputationConfig, DurabilityConfig, Snapshot};
use crate::shard::{
    clusters_on, initial_routing, migrate_between, rebalance, CutAssembler, PlacementAction,
    PlacementEngine, ShardCore, ShardEnv, ShardId, Wake,
};
use crate::wal::{self, WalWriter};
use cts_model::{Event, EventId};
use cts_store::PartitionedStore;
use cts_util::failpoint::{DurableSink, FailpointFs};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Messages a shard worker consumes.
enum ShardMsg {
    /// A batch of events routed (or forwarded) to this shard.
    Batch(Vec<Event>),
    /// A cross-shard dependency this shard registered for became available.
    Wake(EventId),
    /// Wake-up only: the real message is in the overflow inbox.
    Nudge,
    /// Exit the worker loop immediately.
    Stop,
}

/// One shard's mutable state: the core plus its WAL cursor.
struct ShardState {
    core: ShardCore,
    wal: Option<WalWriter<Box<dyn DurableSink + Send>>>,
    /// Log entries already appended to the WAL (or abandoned with it).
    wal_cursor: usize,
    /// Start offset of the currently open segment (for retirement).
    wal_start: u64,
    fault_budget: Option<u64>,
    dur: Option<DurabilityConfig>,
    reported_dup: u64,
    reported_depth: u64,
    /// Durability barriers already folded into the shared `wal_syncs`
    /// metric (per-shard WALs sync independently; the metric is the sum).
    reported_syncs: u64,
}

struct ShardHandle {
    tx: SyncSender<ShardMsg>,
    overflow: Mutex<VecDeque<ShardMsg>>,
    state: Mutex<ShardState>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

struct Ctl {
    /// Shard threads park between messages while this is raised.
    pause: AtomicBool,
    pause_lock: Mutex<bool>,
    pause_cond: Condvar,
    /// Serializes freeze initiators.
    freeze: Mutex<()>,
    /// Queued-or-in-flight messages across all shards.
    pending_msgs: AtomicU64,
    /// Total events delivered across all shards.
    delivered: AtomicU64,
    /// Assembled-cut size covered by the last published snapshot
    /// (`u64::MAX` = nothing published yet).
    last_published: AtomicU64,
    /// Assembled-cut size covered by the last global checkpoint.
    last_checkpoint: AtomicU64,
    closed: AtomicBool,
    assembler: Mutex<CutAssembler>,
}

/// The sharded counterpart of the single `worker_loop`: N shard workers,
/// a routing table, the freeze barrier, and the two-phase snapshot cut.
pub(crate) struct ShardedRuntime {
    name: String,
    epoch_every: u64,
    checkpoint_every: u64,
    root_dur: Option<DurabilityConfig>,
    meta: Option<CompMeta>,
    env: ShardEnv,
    routing: Vec<AtomicU32>,
    /// All pre-allocated worker slots; only `[0, active)` receive routed
    /// traffic. Slots are never removed — a retired slot's thread parks on
    /// its empty channel until a later split reactivates it.
    shards: Vec<ShardHandle>,
    active: AtomicUsize,
    auto_scale: bool,
    balance: bool,
    /// Shard workers were pinned to topology-chosen CPUs at spawn.
    pinned: bool,
    placement: Mutex<PlacementEngine>,
    ctl: Ctl,
    shared: Arc<CompShared>,
}

/// The placement state reported by the `QueryPlacement` wire verb.
pub(crate) struct PlacementInfo {
    pub(crate) shards: u64,
    pub(crate) pinned: bool,
    pub(crate) rescales: u64,
    pub(crate) steals: u64,
    /// Per-active-shard occupancy share, Q16.
    pub(crate) occupancy_q16: Vec<u64>,
    /// Process → shard routing table.
    pub(crate) routing: Vec<u32>,
}

type Frozen<'a> = (MutexGuard<'a, ()>, Vec<MutexGuard<'a, ShardState>>);

impl ShardedRuntime {
    /// Build the runtime and spawn its shard workers. Recovery and WAL
    /// opening happen in [`bootstrap`](Self::bootstrap).
    pub(crate) fn spawn(
        config: &ComputationConfig,
        shared: Arc<CompShared>,
        store: Arc<PartitionedStore>,
    ) -> Arc<ShardedRuntime> {
        let n = config.num_processes;
        let requested = (config.shards.max(2) as usize).min(n.max(1) as usize);
        // With autoscaling, pre-allocate slots up to the host's parallelism
        // so a later split never has to spawn a thread mid-stream; only the
        // first `requested` slots start active. The floor of 4 keeps splits
        // possible on 1- and 2-core hosts (splitting is demand-driven — it
        // only fires past the hot threshold — and a parked slot is just an
        // idle thread on an empty channel). An explicit finite `max_shards`
        // in the placement params overrides the derived cap.
        let shards = if config.auto_scale {
            let cap = match config.placement {
                Some(p) if p.max_shards != usize::MAX => p.max_shards,
                _ => std::thread::available_parallelism()
                    .map_or(requested, |p| p.get())
                    .max(4),
            };
            requested.max(cap).min(n.max(1) as usize)
        } else {
            requested
        };
        let mut placement_params = config.placement.unwrap_or_default();
        placement_params.min_shards = placement_params.min_shards.clamp(1, requested);
        placement_params.max_shards = placement_params.max_shards.min(shards);
        let plan = if config.pin_cores {
            crate::topology::CpuTopology::discover()
                .ok()
                .map(|t| t.plan(shards, 0))
        } else {
            None
        };
        let env = ShardEnv::new(n, config.strategy);
        let routing = initial_routing(n, requested);
        let meta = config.durability.as_ref().map(|_| CompMeta {
            name: config.name.clone(),
            num_processes: n,
            max_cluster_size: config.max_cluster_size,
        });
        let mut receivers: Vec<Receiver<ShardMsg>> = Vec::with_capacity(shards);
        let handles: Vec<ShardHandle> = (0..shards)
            .map(|s| {
                let owned: Vec<bool> = (0..n)
                    .map(|p| routing[p as usize].load(Ordering::Relaxed) as usize == s)
                    .collect();
                let core = ShardCore::new(s, n, owned, Arc::clone(&store), &env);
                let dur = config.durability.as_ref().map(|d| DurabilityConfig {
                    dir: d.dir.join(format!("shard-{s:02}")),
                    ..d.clone()
                });
                let fault_budget = dur.as_ref().and_then(|d| d.wal_byte_budget);
                let (tx, rx) = sync_channel(config.queue_capacity.max(1));
                receivers.push(rx);
                ShardHandle {
                    tx,
                    overflow: Mutex::new(VecDeque::new()),
                    state: Mutex::new(ShardState {
                        core,
                        wal: None,
                        wal_cursor: 0,
                        wal_start: 0,
                        fault_budget,
                        dur,
                        reported_dup: 0,
                        reported_depth: 0,
                        reported_syncs: 0,
                    }),
                    join: Mutex::new(None),
                }
            })
            .collect();
        let rt = Arc::new(ShardedRuntime {
            name: config.name.clone(),
            epoch_every: config.epoch_every.max(1),
            checkpoint_every: config.durability.as_ref().map_or(0, |d| d.checkpoint_every),
            root_dur: config.durability.clone(),
            meta,
            env,
            routing,
            shards: handles,
            active: AtomicUsize::new(requested),
            auto_scale: config.auto_scale,
            balance: config.balance || config.auto_scale,
            pinned: plan.is_some(),
            placement: Mutex::new(PlacementEngine::new(shards, placement_params)),
            ctl: Ctl {
                pause: AtomicBool::new(false),
                pause_lock: Mutex::new(false),
                pause_cond: Condvar::new(),
                freeze: Mutex::new(()),
                pending_msgs: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                last_published: AtomicU64::new(u64::MAX),
                last_checkpoint: AtomicU64::new(0),
                closed: AtomicBool::new(false),
                assembler: Mutex::new(CutAssembler::new(n)),
            },
            shared,
        });
        rt.shared
            .metrics
            .place_shards
            .store(requested as u64, Ordering::Relaxed);
        for (s, rx) in receivers.into_iter().enumerate() {
            let worker = Arc::clone(&rt);
            let cpu = plan.as_ref().map(|pl| pl.shard_cpus[s]);
            let handle = std::thread::Builder::new()
                .name(format!("shard-{}-{s}", config.name))
                .spawn(move || {
                    #[cfg(target_os = "linux")]
                    if let Some(cpu) = cpu {
                        let _ = crate::netpoll::pin_current_thread(cpu);
                    }
                    #[cfg(not(target_os = "linux"))]
                    let _ = cpu;
                    shard_loop(&worker, s, rx)
                })
                .expect("spawn shard worker");
            *lock(&rt.shards[s].join) = Some(handle);
        }
        rt
    }

    /// Shards currently receiving routed traffic.
    pub(crate) fn active_shards(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    pub(crate) fn placement_info(&self) -> PlacementInfo {
        let active = self.active.load(Ordering::Acquire);
        let eng = lock(&self.placement);
        PlacementInfo {
            shards: active as u64,
            pinned: self.pinned,
            rescales: eng.rescales,
            steals: eng.steals,
            occupancy_q16: eng.shares_q16(active),
            routing: self
                .routing
                .iter()
                .map(|r| r.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Recover on-disk state (when `recover` and durable), replay it through
    /// the shards, then open per-shard WAL segments and re-establish a clean
    /// layout (fresh global checkpoint, stale segments and directories
    /// removed). Returns what recovery found.
    pub(crate) fn bootstrap(&self, recover: bool) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let mut replay: Vec<Event> = Vec::new();
        let mut stale_dirs: Vec<PathBuf> = Vec::new();
        if let (Some(root), Some(meta)) = (&self.root_dur, &self.meta) {
            checkpoint::ensure_meta(&root.dir, meta)?;
            if recover {
                // Top level: a global checkpoint from a previous sharded run,
                // or the legacy single-worker layout — both are internally
                // contiguous, so the offset-based scan applies.
                let (events, rep) = checkpoint::recover_dir(&root.dir)?;
                report.checkpoint_events += rep.checkpoint_events;
                report.wal_events += rep.wal_events;
                report.segments_scanned += rep.segments_scanned;
                report.torn_bytes_truncated += rep.torn_bytes_truncated;
                if report.torn_tail.is_none() {
                    report.torn_tail = rep.torn_tail;
                }
                replay.extend(events);
                // Shard directories: take every readable record of every
                // segment, in any order — the reorder buffers dedup against
                // the checkpointed prefix and re-sequence the rest.
                for dir in shard_dirs(&root.dir)? {
                    for (_, path) in wal::list_segments(&dir)? {
                        let scan = wal::scan_segment(&path)?;
                        report.segments_scanned += 1;
                        if let Some(kind) = scan.torn {
                            let file_len = std::fs::metadata(&path)?.len();
                            report.torn_bytes_truncated += file_len - scan.valid_len;
                            if report.torn_tail.is_none() {
                                report.torn_tail = Some(format!("{}: {kind}", path.display()));
                            }
                            wal::truncate_segment(&path, scan.valid_len)?;
                        }
                        for rec in &scan.records {
                            report.wal_events += rec.events.len() as u64;
                            replay.extend(rec.events.iter().copied());
                        }
                    }
                    let stale = dir
                        .file_name()
                        .and_then(|f| f.to_str())
                        .and_then(parse_shard_dir)
                        .is_none_or(|s| s >= self.shards.len());
                    if stale {
                        stale_dirs.push(dir);
                    }
                }
            }
        }
        for chunk in replay.chunks(4096) {
            if self.enqueue(chunk.to_vec()).is_err() {
                break; // closed mid-recovery (shutdown raced); keep going
            }
        }
        self.quiesce();
        // Finalize under a freeze: cut, checkpoint the cut, open fresh WAL
        // segments at each shard's post-replay frontier, and only then drop
        // the old on-disk state (now fully covered or provably unacked).
        let (f, mut guards) = self.freeze();
        let assembled = self.publish_world(&mut guards, false);
        if let (Some(root), Some(meta)) = (&self.root_dur, &self.meta) {
            if assembled > 0 {
                let asm = lock(&self.ctl.assembler);
                if let Err(e) = checkpoint::write_checkpoint(&root.dir, meta, asm.log()) {
                    eprintln!(
                        "[cts-daemon] {}: recovery checkpoint failed: {e}",
                        self.name
                    );
                }
                self.ctl.last_checkpoint.store(assembled, Ordering::Release);
            }
            for st in guards.iter_mut() {
                if let Some(dur) = st.dur.clone() {
                    if let Err(e) = std::fs::create_dir_all(&dur.dir) {
                        eprintln!(
                            "[cts-daemon] {}: cannot create {}: {e}",
                            self.name,
                            dur.dir.display()
                        );
                        continue;
                    }
                    // The fresh checkpoint covers every delivered event
                    // (quiesced cuts leave nothing dangling), so every old
                    // segment here is either covered or holds only unacked
                    // orphans — both safe to drop.
                    for (_, path) in wal::list_segments(&dur.dir).unwrap_or_default() {
                        let _ = std::fs::remove_file(path);
                    }
                    let start = st.core.log().len() as u64;
                    st.wal_cursor = st.core.log().len();
                    st.wal_start = start;
                    match open_shard_segment(&dur, start, &mut st.fault_budget) {
                        Ok(w) => st.wal = Some(w),
                        Err(e) => eprintln!(
                            "[cts-daemon] {}: cannot open WAL for shard {}, \
                             running in-memory: {e}",
                            self.name, st.core.id
                        ),
                    }
                }
            }
            // Legacy top-level segments are covered by the fresh checkpoint;
            // stale shard directories were unioned above.
            for (_, path) in wal::list_segments(&root.dir).unwrap_or_default() {
                let _ = std::fs::remove_file(path);
            }
            for dir in stale_dirs {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        self.unfreeze(f, guards);
        Ok(report)
    }

    /// Partition a batch by the routing table and enqueue each piece on its
    /// shard's bounded channel (blocking: backpressure).
    pub(crate) fn enqueue(&self, batch: Vec<Event>) -> Result<(), ()> {
        if self.ctl.closed.load(Ordering::Acquire) {
            return Err(());
        }
        let mut per: Vec<Vec<Event>> = vec![Vec::new(); self.shards.len()];
        for ev in batch {
            let p = ev.process();
            let s = if (p.idx()) < self.routing.len() {
                self.routing[p.idx()].load(Ordering::Relaxed) as usize
            } else {
                0 // unknown process: let shard 0 reject it
            };
            per[s].push(ev);
        }
        for (s, events) in per.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            self.ctl.pending_msgs.fetch_add(1, Ordering::AcqRel);
            if self.shards[s].tx.send(ShardMsg::Batch(events)).is_err() {
                self.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
                return Err(());
            }
        }
        Ok(())
    }

    /// Non-blocking enqueue for the readiness-driven front end: each
    /// shard's slice is `try_send`-offered; slices refused by a full shard
    /// come back concatenated for the caller to retry. Safe to split a
    /// batch this way because any arrival interleaving is a valid delivery
    /// order (the reorder buffers repair it) and duplicates are dropped.
    /// `Err(None)` means the runtime is closed.
    pub(crate) fn try_enqueue(&self, batch: Vec<Event>) -> Result<(), Option<Vec<Event>>> {
        if self.ctl.closed.load(Ordering::Acquire) {
            return Err(None);
        }
        let mut per: Vec<Vec<Event>> = vec![Vec::new(); self.shards.len()];
        for ev in batch {
            let p = ev.process();
            let s = if (p.idx()) < self.routing.len() {
                self.routing[p.idx()].load(Ordering::Relaxed) as usize
            } else {
                0 // unknown process: let shard 0 reject it
            };
            per[s].push(ev);
        }
        let mut leftover: Vec<Event> = Vec::new();
        for (s, events) in per.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            self.ctl.pending_msgs.fetch_add(1, Ordering::AcqRel);
            match self.shards[s].tx.try_send(ShardMsg::Batch(events)) {
                Ok(()) => {}
                Err(TrySendError::Full(ShardMsg::Batch(events))) => {
                    self.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
                    leftover.extend(events);
                }
                Err(TrySendError::Full(_)) => unreachable!("we only sent Batch"),
                Err(TrySendError::Disconnected(_)) => {
                    self.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
                    return Err(None);
                }
            }
        }
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(Some(leftover))
        }
    }

    /// Group-commit tick: wake every shard so `append_wal` can close a
    /// dirty window. Best-effort — a full shard queue is actively ingesting
    /// and will hit the same window check on its next message.
    pub(crate) fn nudge_wal(&self) {
        if self.ctl.closed.load(Ordering::Acquire) {
            return;
        }
        for h in &self.shards {
            self.ctl.pending_msgs.fetch_add(1, Ordering::AcqRel);
            if h.tx.try_send(ShardMsg::Nudge).is_err() {
                self.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Non-blocking send for shard threads: overflow inbox + best-effort
    /// nudge. Never blocks, so shard→shard signalling cannot deadlock.
    fn post(&self, s: ShardId, msg: ShardMsg) {
        self.ctl.pending_msgs.fetch_add(1, Ordering::AcqRel);
        lock(&self.shards[s].overflow).push_back(msg);
        match self.shards[s].tx.try_send(ShardMsg::Nudge) {
            Ok(()) => {
                self.ctl.pending_msgs.fetch_add(1, Ordering::AcqRel);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {}
        }
    }

    fn dispatch(&self, wakes: Vec<Wake>) {
        for (shard, id) in wakes {
            self.post(shard, ShardMsg::Wake(id));
        }
    }

    fn wait_unpaused(&self) {
        if !self.ctl.pause.load(Ordering::Acquire) {
            return;
        }
        let mut paused = lock(&self.ctl.pause_lock);
        while *paused {
            paused = self
                .ctl
                .pause_cond
                .wait(paused)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop the world: serialize initiators, park shard threads between
    /// messages, and take every shard's state mutex.
    fn freeze(&self) -> Frozen<'_> {
        let f = lock(&self.ctl.freeze);
        self.begin_pause();
        let guards = self.shards.iter().map(|h| lock(&h.state)).collect();
        (f, guards)
    }

    fn try_freeze(&self) -> Option<Frozen<'_>> {
        let f = self.ctl.freeze.try_lock().ok()?;
        self.begin_pause();
        let guards = self.shards.iter().map(|h| lock(&h.state)).collect();
        Some((f, guards))
    }

    fn begin_pause(&self) {
        *lock(&self.ctl.pause_lock) = true;
        self.ctl.pause.store(true, Ordering::Release);
    }

    fn unfreeze(&self, f: MutexGuard<'_, ()>, guards: Vec<MutexGuard<'_, ShardState>>) {
        *lock(&self.ctl.pause_lock) = false;
        self.ctl.pause.store(false, Ordering::Release);
        self.ctl.pause_cond.notify_all();
        drop(guards);
        drop(f);
    }

    /// Append a shard's un-logged delivered suffix to its WAL (group
    /// commit); a write failure degrades that shard to in-memory, loudly.
    fn append_wal(&self, st: &mut ShardState, force_sync: bool) {
        let ShardState {
            core,
            wal,
            wal_cursor,
            reported_syncs,
            ..
        } = st;
        let log = core.log();
        if let Some(w) = wal.as_mut() {
            let mut r = Ok(());
            if log.len() > *wal_cursor {
                r = w.append(&log[*wal_cursor..]).and_then(|()| {
                    if force_sync {
                        w.sync()
                    } else {
                        w.maybe_sync().map(|_| ())
                    }
                });
            } else if force_sync {
                r = w.sync();
            }
            match r {
                Ok(()) => {
                    *wal_cursor = log.len();
                    let syncs = w.syncs();
                    self.shared
                        .metrics
                        .wal_syncs
                        .fetch_add(syncs.saturating_sub(*reported_syncs), Ordering::Relaxed);
                    *reported_syncs = syncs;
                }
                Err(e) => {
                    eprintln!(
                        "[cts-daemon] {}: shard {} WAL write failed, durability degraded: {e}",
                        self.name, core.id
                    );
                    *wal = None;
                    *wal_cursor = log.len();
                }
            }
        } else {
            *wal_cursor = log.len();
        }
    }

    /// The two-phase cut, under an already-held freeze: sync WALs (when
    /// asked), drain every shard's delivered records, extend the merged
    /// order, and publish the union as an epoch snapshot. Returns the
    /// assembled-cut size.
    fn publish_world(&self, guards: &mut [MutexGuard<'_, ShardState>], sync_wal: bool) -> u64 {
        for st in guards.iter_mut() {
            self.append_wal(st, sync_wal);
        }
        let mut asm = lock(&self.ctl.assembler);
        for st in guards.iter_mut() {
            asm.ingest(st.core.drain_outbox());
        }
        asm.advance();
        let assembled = asm.assembled();
        if self.ctl.last_published.load(Ordering::Acquire) == assembled {
            return assembled; // nothing new since the last epoch
        }
        let (world, _) = self.env.sets.snapshot();
        let (trace, cts) = asm.snapshot(&self.name, world.sets.clone(), world.num_merges as usize);
        drop(asm);
        let mut g = lock(&self.shared.progress);
        g.epoch += 1;
        g.snapshot_delivered = assembled;
        let epoch = g.epoch;
        drop(g);
        let snap = Arc::new(Snapshot {
            epoch,
            delivered: assembled,
            trace,
            cts,
        });
        // Sharded retention is live-only: epoch numbers restart with the
        // process, so there are no durable marks to republish on recovery.
        self.shared
            .retainer
            .insert(epoch, assembled, snap.footprint(), Arc::clone(&snap));
        *self.shared.snapshot.write() = snap;
        self.shared
            .metrics
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
        self.ctl.last_published.store(assembled, Ordering::Release);
        self.shared.cond.notify_all();
        assembled
    }

    /// Freeze, cut, publish; optionally also sync WALs first (flush
    /// barriers make durability part of the barrier).
    pub(crate) fn freeze_publish(&self, sync_wal: bool) {
        let (f, mut guards) = self.freeze();
        self.publish_world(&mut guards, sync_wal);
        self.unfreeze(f, guards);
    }

    /// Cadence check after each processed message: publish when enough has
    /// been delivered since the last cut, checkpoint when enough has been
    /// delivered since the last checkpoint. Skips (rather than queues)
    /// when another freeze is already in flight.
    fn maybe_publish(&self) {
        let delivered = self.ctl.delivered.load(Ordering::Acquire);
        let lp = self.ctl.last_published.load(Ordering::Acquire);
        let published = if lp == u64::MAX { 0 } else { lp };
        let need_pub = delivered.saturating_sub(published) >= self.epoch_every;
        let need_ckpt = self.checkpoint_every > 0
            && delivered.saturating_sub(self.ctl.last_checkpoint.load(Ordering::Acquire))
                >= self.checkpoint_every;
        if !need_pub && !need_ckpt {
            return;
        }
        let Some((f, mut guards)) = self.try_freeze() else {
            return; // someone else is cutting; their cut covers us
        };
        let assembled = self.publish_world(&mut guards, need_ckpt);
        if need_ckpt {
            self.checkpoint_world(&mut guards, assembled);
        }
        self.unfreeze(f, guards);
    }

    /// Write the global checkpoint of the assembled cut and rotate/retire
    /// per-shard segments. Runs under a freeze, after `publish_world`
    /// already appended and synced every shard's WAL.
    fn checkpoint_world(&self, guards: &mut [MutexGuard<'_, ShardState>], assembled: u64) {
        let (Some(root), Some(meta)) = (&self.root_dur, &self.meta) else {
            return;
        };
        if assembled <= self.ctl.last_checkpoint.load(Ordering::Acquire) {
            return;
        }
        {
            let asm = lock(&self.ctl.assembler);
            if let Err(e) = checkpoint::write_checkpoint(&root.dir, meta, asm.log()) {
                eprintln!("[cts-daemon] {}: checkpoint failed: {e}", self.name);
                return;
            }
            self.ctl.last_checkpoint.store(assembled, Ordering::Release);
            // Retire shard segments only when the cut covers every delivered
            // event (no dangling sync tails, no undrained outboxes — the
            // latter is guaranteed right after a cut).
            if asm.queued() > 0 {
                return;
            }
        }
        for st in guards.iter_mut() {
            if st.wal.is_none() {
                continue;
            }
            let Some(dur) = st.dur.clone() else { continue };
            let old = st.wal.take().expect("checked above");
            if let Some(b) = st.fault_budget.as_mut() {
                *b = b.saturating_sub(old.bytes_written());
            }
            // Fold the retiring writer's tail into the sync metric and
            // restart the per-writer baseline (a fresh segment counts
            // from zero).
            self.shared.metrics.wal_syncs.fetch_add(
                old.syncs().saturating_sub(st.reported_syncs),
                Ordering::Relaxed,
            );
            st.reported_syncs = 0;
            drop(old);
            let start = st.core.log().len() as u64;
            let old_start = st.wal_start;
            match open_shard_segment(&dur, start, &mut st.fault_budget) {
                Ok(w) => {
                    st.wal = Some(w);
                    st.wal_start = start;
                    st.wal_cursor = st.core.log().len();
                    for (seg_start, path) in wal::list_segments(&dur.dir).unwrap_or_default() {
                        if seg_start == start {
                            continue; // the segment we just opened
                        }
                        if seg_start == old_start && start == old_start {
                            continue;
                        }
                        let _ = std::fs::remove_file(path);
                    }
                }
                Err(e) => eprintln!(
                    "[cts-daemon] {}: shard {} WAL rotation failed, durability degraded: {e}",
                    self.name, st.core.id
                ),
            }
        }
    }

    /// A merge happened on some shard: stop the world and re-align process
    /// ownership with the cluster partition, looping until no migration
    /// re-raises the flag.
    fn freeze_rebalance(&self) {
        let (f, mut guards) = self.freeze();
        let mut all_wakes = Vec::new();
        let mut delivered = 0;
        loop {
            let mut cores: Vec<&mut ShardCore> = guards.iter_mut().map(|g| &mut g.core).collect();
            if !cores.iter().any(|c| c.rebalance_needed) {
                break;
            }
            let mut wakes = Vec::new();
            let (d, _) = rebalance(&mut cores, &self.routing, &self.env, &mut wakes);
            delivered += d;
            all_wakes.extend(wakes);
        }
        for st in guards.iter_mut() {
            self.append_wal(st, false); // migrations may have delivered
        }
        self.unfreeze(f, guards);
        if delivered > 0 {
            self.note_delivered(delivered);
        }
        self.dispatch(all_wakes);
    }

    /// Placement hook run by each shard worker after every message: feed
    /// the occupancy EWMA, refresh the placement gauges, and apply at most
    /// one autoscale/steal action.
    fn maybe_rescale(&self, s: ShardId, work: u64) {
        if !self.auto_scale && !self.balance {
            return;
        }
        if self.ctl.closed.load(Ordering::Acquire) || self.shared.killed.load(Ordering::Acquire) {
            return;
        }
        let active = self.active.load(Ordering::Acquire);
        let action = {
            let mut eng = lock(&self.placement);
            eng.note_message(s, work);
            let (occ, _) = eng.occupancy_q16(active);
            let m = &self.shared.metrics;
            m.place_occupancy_q16.store(occ, Ordering::Relaxed);
            m.place_shards.store(active as u64, Ordering::Relaxed);
            m.place_rescales.store(eng.rescales, Ordering::Relaxed);
            m.place_steals.store(eng.steals, Ordering::Relaxed);
            eng.decide(active, self.auto_scale, self.balance)
        };
        if let Some(action) = action {
            self.rescale(action);
        }
    }

    /// Lock the state mutexes of two distinct shards, always acquiring the
    /// lower index first, and return the guards in argument order.
    fn state_pair(
        &self,
        a: ShardId,
        b: ShardId,
    ) -> (MutexGuard<'_, ShardState>, MutexGuard<'_, ShardState>) {
        assert_ne!(a, b);
        if a < b {
            let ga = lock(&self.shards[a].state);
            let gb = lock(&self.shards[b].state);
            (ga, gb)
        } else {
            let gb = lock(&self.shards[b].state);
            let ga = lock(&self.shards[a].state);
            (ga, gb)
        }
    }

    /// Apply one placement action *without* a stop-the-world freeze: take
    /// the freeze mutex (serializing against cuts, rebalances, flushes, and
    /// other rescales) but never raise the pause flag, and lock only the two
    /// shards being re-laid-out — every other shard keeps processing. An
    /// action that is unsafe right now (mid sync pair, straddling cluster,
    /// too few clusters to move) is simply dropped; the engine will propose
    /// it again once its cooldown elapses.
    fn rescale(&self, action: PlacementAction) {
        let _f = lock(&self.ctl.freeze);
        if self.ctl.closed.load(Ordering::Acquire) || self.shared.killed.load(Ordering::Acquire) {
            return;
        }
        let active = self.active.load(Ordering::Acquire);
        let (world, _) = self.env.sets.snapshot();
        let mut wakes = Vec::new();
        let mut delivered = 0u64;
        match action {
            PlacementAction::Split(from) => {
                let to = active;
                if from >= active || to >= self.shards.len() {
                    return;
                }
                let (mut src, mut dst) = self.state_pair(from, to);
                if !src.core.sync_quiescent() {
                    return;
                }
                let groups = clusters_on(&world, &self.routing, from);
                if groups.len() < 2 {
                    return; // nothing splittable without breaking a cluster
                }
                // Alternate clusters move to the fresh shard; whole-cluster
                // moves keep cluster-locality so rebalance never fights the
                // placement engine.
                for group in groups.iter().skip(1).step_by(2) {
                    for &p in group {
                        delivered +=
                            migrate_between(&mut src.core, &mut dst.core, p, &self.env, &mut wakes);
                        self.routing[p.idx()].store(to as u32, Ordering::Release);
                    }
                }
                self.append_wal(&mut src, false);
                self.append_wal(&mut dst, false);
                self.active.store(active + 1, Ordering::Release);
                lock(&self.placement).note_split(from, to);
            }
            PlacementAction::Retire(cold) => {
                if active <= 1 || cold >= active {
                    return;
                }
                // Retirement always empties the *top* slot so the active set
                // stays a prefix; if the cold shard isn't the top one, the
                // top shard's clusters land on it instead.
                let top = active - 1;
                let dst = if cold == top {
                    lock(&self.placement).coldest(top)
                } else {
                    cold
                };
                if dst == top {
                    return;
                }
                let (mut src, mut dstg) = self.state_pair(top, dst);
                if !src.core.sync_quiescent() {
                    return;
                }
                let groups = clusters_on(&world, &self.routing, top);
                let covered: usize = groups.iter().map(Vec::len).sum();
                let routed = (0..self.routing.len())
                    .filter(|&p| self.routing[p].load(Ordering::Relaxed) as usize == top)
                    .count();
                if covered != routed {
                    return; // a mid-merge cluster straddles shards: defer
                }
                for group in &groups {
                    for &p in group {
                        delivered += migrate_between(
                            &mut src.core,
                            &mut dstg.core,
                            p,
                            &self.env,
                            &mut wakes,
                        );
                        self.routing[p.idx()].store(dst as u32, Ordering::Release);
                    }
                }
                self.append_wal(&mut src, false);
                self.append_wal(&mut dstg, false);
                self.active.store(top, Ordering::Release);
                lock(&self.placement).note_retire(top);
            }
            PlacementAction::Steal { from, to } => {
                if from >= active || to >= active || from == to {
                    return;
                }
                let (mut src, mut dst) = self.state_pair(from, to);
                if !src.core.sync_quiescent() {
                    return;
                }
                let groups = clusters_on(&world, &self.routing, from);
                if groups.len() < 2 {
                    return; // never empty the victim
                }
                let group = groups.last().expect("len checked");
                for &p in group {
                    delivered +=
                        migrate_between(&mut src.core, &mut dst.core, p, &self.env, &mut wakes);
                    self.routing[p.idx()].store(to as u32, Ordering::Release);
                }
                self.append_wal(&mut src, false);
                self.append_wal(&mut dst, false);
                lock(&self.placement).note_steal(1);
            }
        }
        if delivered > 0 {
            self.note_delivered(delivered);
        }
        self.dispatch(wakes);
    }

    fn note_delivered(&self, delta: u64) {
        let total = self.ctl.delivered.fetch_add(delta, Ordering::AcqRel) + delta;
        self.shared
            .metrics
            .events_ingested
            .fetch_add(delta, Ordering::Relaxed);
        let mut g = lock(&self.shared.progress);
        if total > g.delivered {
            g.delivered = total;
        }
        drop(g);
        self.shared.cond.notify_all();
    }

    fn quiesce(&self) {
        while self.ctl.pending_msgs.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Flush barrier, stage 2: force cuts until the published snapshot
    /// covers `expected` or the deadline passes. (Stage 1 — waiting for
    /// delivery — is the caller's, shared with the single-worker path.)
    pub(crate) fn flush_cut(&self, expected: u64, deadline: Instant) -> Result<(), ()> {
        loop {
            self.freeze_publish(true);
            {
                let g = lock(&self.shared.progress);
                if g.snapshot_delivered >= expected {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(());
            }
            // The missing piece is a wake queued on some shard; give its
            // thread a moment before cutting again.
            let g = lock(&self.shared.progress);
            let (g2, _) = self
                .shared
                .cond
                .wait_timeout(g, Duration::from_millis(2))
                .unwrap_or_else(|e| e.into_inner());
            if g2.snapshot_delivered >= expected {
                return Ok(());
            }
        }
    }

    pub(crate) fn closed(&self) -> bool {
        self.ctl.closed.load(Ordering::Acquire)
    }

    /// Lock-free-ish diagnostic (try_lock only; never blocks).
    #[doc(hidden)]
    #[allow(dead_code)] // diagnostic: referenced from tests only
    pub(crate) fn debug_nofreeze(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "pause={} freeze_held={} pending_msgs={} delivered={} last_published={}\n",
            self.ctl.pause.load(Ordering::Acquire),
            self.ctl.freeze.try_lock().is_err(),
            self.ctl.pending_msgs.load(Ordering::Acquire),
            self.ctl.delivered.load(Ordering::Acquire),
            self.ctl.last_published.load(Ordering::Acquire),
        );
        for (s, h) in self.shards.iter().enumerate() {
            match h.state.try_lock() {
                Ok(st) => {
                    let _ = writeln!(
                        out,
                        "shard {s}: delivered={} rebalance={} {}",
                        st.core.delivered_total(),
                        st.core.rebalance_needed,
                        st.core.debug_state()
                    );
                }
                Err(_) => {
                    let _ = writeln!(out, "shard {s}: <state locked>");
                }
            }
            if let Ok(o) = h.overflow.try_lock() {
                let _ = writeln!(out, "shard {s}: overflow={}", o.len());
            }
        }
        out
    }

    /// Graceful shutdown: refuse new batches, drain every queue, publish a
    /// final durable cut (synced WALs + final checkpoint), stop and join
    /// the workers. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.ctl.closed.store(true, Ordering::Release);
        if !self.shared.killed.load(Ordering::Acquire) {
            self.quiesce();
            let (f, mut guards) = self.freeze();
            let assembled = self.publish_world(&mut guards, true);
            self.checkpoint_world(&mut guards, assembled);
            self.unfreeze(f, guards);
        }
        self.stop_workers();
    }

    /// Crash-stop: discard queued work, no final sync/checkpoint/publish.
    pub(crate) fn kill(&self) {
        // The caller raised `shared.killed` first; workers drain without
        // processing from here on.
        self.ctl.closed.store(true, Ordering::Release);
        self.stop_workers();
    }

    /// Ask every worker to exit (without draining) and join them.
    ///
    /// The channel-side wake must be `Stop`, not `Nudge`: stop messages are
    /// not counted in `pending_msgs`, and a worker returns on `Stop` before
    /// the per-message decrement. An uncounted `Nudge` here would be
    /// processed as a normal message by a worker parked in `recv`,
    /// underflowing `pending_msgs` and wedging every later `quiesce()`
    /// (the double-shutdown hang `tests/daemon_soak.rs` pins).
    fn stop_workers(&self) {
        for s in 0..self.shards.len() {
            lock(&self.shards[s].overflow).push_back(ShardMsg::Stop);
            let _ = self.shards[s].tx.try_send(ShardMsg::Stop);
        }
        for h in &self.shards {
            if let Some(j) = lock(&h.join).take() {
                let _ = j.join();
            }
        }
    }

    /// Signal workers to exit without joining (Drop path). As in
    /// [`stop_workers`](Self::stop_workers), the wake is an uncounted
    /// `Stop`, never a `Nudge`.
    pub(crate) fn request_stop(&self) {
        self.ctl.closed.store(true, Ordering::Release);
        for s in 0..self.shards.len() {
            lock(&self.shards[s].overflow).push_back(ShardMsg::Stop);
            let _ = self.shards[s].tx.try_send(ShardMsg::Stop);
        }
    }
}

/// One shard worker: drain overflow then the channel, process one message
/// at a time under the shard's state mutex, honor pauses between messages.
fn shard_loop(rt: &ShardedRuntime, s: ShardId, rx: Receiver<ShardMsg>) {
    loop {
        // Pop-then-drop: the overflow guard must die before the blocking
        // `recv`, or a peer's `post` (which takes this mutex) deadlocks
        // against a shard parked on an empty channel.
        let queued = lock(&rt.shards[s].overflow).pop_front();
        let msg = match queued {
            Some(m) => m,
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => return, // runtime gone
            },
        };
        if matches!(msg, ShardMsg::Stop) {
            return;
        }
        if rt.shared.killed.load(Ordering::Acquire) {
            rt.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
            continue; // crash-stop: drain without processing
        }
        rt.wait_unpaused();
        let mut wakes = Vec::new();
        let (delivered, want_rebalance, depth) = {
            let mut st = lock(&rt.shards[s].state);
            let delivered = process_msg(rt, &mut st, msg, &mut wakes);
            rt.append_wal(&mut st, false);
            report_shard_metrics(rt, &mut st);
            (delivered, st.core.rebalance_needed, st.core.depth() as u64)
        };
        // Follow-on work is enqueued before this message's count releases,
        // so pending_msgs can only hit zero at true quiescence.
        rt.dispatch(wakes);
        rt.ctl.pending_msgs.fetch_sub(1, Ordering::AcqRel);
        if delivered > 0 {
            rt.note_delivered(delivered);
        }
        if want_rebalance {
            rt.freeze_rebalance();
        }
        rt.maybe_rescale(s, delivered + depth);
        rt.maybe_publish();
    }
}

fn process_msg(
    rt: &ShardedRuntime,
    st: &mut ShardState,
    msg: ShardMsg,
    wakes: &mut Vec<Wake>,
) -> u64 {
    match msg {
        ShardMsg::Batch(events) => {
            let mut delivered = 0;
            for ev in events {
                let t0 = Instant::now();
                let p = ev.process();
                if p.idx() < rt.routing.len() && !st.core.owns(p) {
                    // Routing moved while the batch was queued: forward.
                    let target = rt.routing[p.idx()].load(Ordering::Relaxed) as usize;
                    rt.post(target, ShardMsg::Batch(vec![ev]));
                    continue;
                }
                match st.core.offer(ev, &rt.env, wakes) {
                    Ok(d) => delivered += d,
                    Err(reason) => eprintln!(
                        "[cts-daemon] {}: dropping event {}: {reason}",
                        rt.name, ev.id
                    ),
                }
                rt.shared
                    .metrics
                    .ingest_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
            delivered
        }
        ShardMsg::Wake(id) => st.core.wake(id, &rt.env, wakes),
        ShardMsg::Nudge => 0,
        ShardMsg::Stop => unreachable!("Stop is handled before processing"),
    }
}

/// Fold this shard's counters into the computation-wide metrics using
/// wrapping deltas (several shards update concurrently).
fn report_shard_metrics(rt: &ShardedRuntime, st: &mut ShardState) {
    let m = &rt.shared.metrics;
    let dup = st.core.duplicates();
    m.duplicates_dropped
        .fetch_add(dup.wrapping_sub(st.reported_dup), Ordering::Relaxed);
    st.reported_dup = dup;
    let depth = st.core.depth() as u64;
    m.reorder_depth
        .fetch_add(depth.wrapping_sub(st.reported_depth), Ordering::Relaxed);
    st.reported_depth = depth;
    let global_depth = m.reorder_depth.load(Ordering::Relaxed);
    m.reorder_peak.fetch_max(global_depth, Ordering::Relaxed);
    // Drift counters live in the shared membership world, not per shard;
    // the world-wide totals are authoritative (fetch_max keeps concurrent
    // reporters monotone).
    if rt.env.strategy.is_adaptive() {
        let (world, _) = rt.env.sets.snapshot();
        m.drift_migrations
            .fetch_max(world.num_migrations, Ordering::Relaxed);
        m.drift_forced_full.fetch_max(
            rt.env.forced_full.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

/// Open a fresh WAL segment for one shard (same failpoint discipline as the
/// single-worker path).
fn open_shard_segment(
    dur: &DurabilityConfig,
    start: u64,
    fault_budget: &mut Option<u64>,
) -> io::Result<WalWriter<Box<dyn DurableSink + Send>>> {
    let path = dur.dir.join(wal::segment_name(start));
    let _ = std::fs::remove_file(&path);
    let sink: Box<dyn DurableSink + Send> = match *fault_budget {
        Some(budget) => Box::new(FailpointFs::create(&path, budget)?),
        None => Box::new(std::fs::File::create(&path)?),
    };
    WalWriter::from_sink(sink, start, dur.sync_window)
}

fn parse_shard_dir(name: &str) -> Option<usize> {
    name.strip_prefix("shard-")?.parse::<usize>().ok()
}

/// All `shard-NN` subdirectories of a computation directory, sorted.
fn shard_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let path = entry?.path();
        let is_shard = path.is_dir()
            && path
                .file_name()
                .and_then(|f| f.to_str())
                .and_then(parse_shard_dir)
                .is_some();
        if is_shard {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}
