//! CPU/cache/NUMA topology discovery from sysfs, and worker placement.
//!
//! The daemon's threads — shard workers, epoll pollers, the WAL group-commit
//! clock — land wherever the OS scheduler drops them by default. On
//! multi-socket or SMT hosts that means shard workers bouncing between cache
//! domains and the exchange hand-off crossing NUMA links. This module reads
//! the kernel's own description of the machine from
//! `/sys/devices/system/{cpu,node}` (stdlib only, no libc topology calls)
//! and derives a [`PlacementPlan`]: one CPU per shard slot with SMT siblings
//! avoided and adjacent shards sharing a last-level cache / NUMA node (the
//! exchange peers they talk to most), pollers and the WAL clock pushed to
//! the far end of the machine so they never preempt a shard core.
//!
//! Everything parses from a plain directory tree, so the unit tests run
//! against committed fixture `/sys` snapshots (single-socket, dual-NUMA,
//! SMT, hotplug holes) on any CI host; only [`CpuTopology::discover`]
//! touches the real `/sys`. The actual `sched_setaffinity` pinning lives in
//! [`crate::netpoll`] next to the other raw syscalls.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One online logical CPU and where it sits in the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpu {
    /// Logical CPU number (the `N` of `cpuN`).
    pub id: usize,
    /// Physical package (socket) id.
    pub package: usize,
    /// Core id within the package.
    pub core: usize,
    /// Is this the lowest-numbered online sibling of its physical core?
    /// Placement prefers primaries so two workers never share a core's
    /// execution units.
    pub smt_primary: bool,
    /// Dense index of the last-level-cache group this CPU belongs to.
    pub llc: usize,
    /// NUMA node (0 on non-NUMA machines).
    pub node: usize,
}

/// The machine's online-CPU topology.
#[derive(Clone, Debug, Default)]
pub struct CpuTopology {
    cpus: Vec<Cpu>,
}

/// Parse a sysfs cpulist (`"0-3,5,7-8"`) into sorted CPU numbers. Handles
/// hotplug holes, stray whitespace, and the empty list (`"\n"` → `[]`).
pub fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    let trimmed = s.trim();
    if trimmed.is_empty() {
        return Some(out);
    }
    for part in trimmed.split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo || hi - lo > 4096 {
                    return None;
                }
                out.extend(lo..=hi);
            }
            None => out.push(part.parse().ok()?),
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

fn read_trimmed(path: &Path) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

fn read_usize(path: &Path) -> Option<usize> {
    read_trimmed(path)?.parse().ok()
}

impl CpuTopology {
    /// Read the live machine's topology from `/sys/devices/system`.
    pub fn discover() -> io::Result<CpuTopology> {
        CpuTopology::from_dir(Path::new("/sys/devices/system"))
    }

    /// Parse a `/sys/devices/system`-shaped directory tree. Missing pieces
    /// degrade gracefully: no `online` file falls back to enumerating the
    /// `cpuN` directories, no cache directories collapse every CPU into one
    /// LLC group, no `node` directory means a single NUMA node.
    pub fn from_dir(root: &Path) -> io::Result<CpuTopology> {
        let cpu_root = root.join("cpu");
        let online = read_trimmed(&cpu_root.join("online"))
            .and_then(|s| parse_cpulist(&s))
            .unwrap_or_default();
        let online = if online.is_empty() {
            enumerate_cpu_dirs(&cpu_root)?
        } else {
            // `online` can list CPUs whose directories a fixture (or a
            // mid-hotplug kernel) does not carry; keep only parseable ones.
            online
                .into_iter()
                .filter(|c| cpu_root.join(format!("cpu{c}")).is_dir())
                .collect()
        };
        if online.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no online CPUs under {}", cpu_root.display()),
            ));
        }

        // NUMA: node directories carry cpulists; absent = single node.
        let mut node_of: BTreeMap<usize, usize> = BTreeMap::new();
        if let Ok(entries) = std::fs::read_dir(root.join("node")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(n) = name
                    .to_str()
                    .and_then(|s| s.strip_prefix("node"))
                    .and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                if let Some(list) =
                    read_trimmed(&entry.path().join("cpulist")).and_then(|s| parse_cpulist(&s))
                {
                    for c in list {
                        node_of.insert(c, n);
                    }
                }
            }
        }

        // LLC groups: per CPU, the shared_cpu_list of its deepest cache
        // level. Distinct lists get dense group ids in first-seen order.
        let mut llc_ids: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
        let mut cpus = Vec::with_capacity(online.len());
        for &c in &online {
            let dir = cpu_root.join(format!("cpu{c}"));
            let package = read_usize(&dir.join("topology/physical_package_id")).unwrap_or(0);
            let core = read_usize(&dir.join("topology/core_id")).unwrap_or(c);
            let siblings = read_trimmed(&dir.join("topology/thread_siblings_list"))
                .and_then(|s| parse_cpulist(&s))
                .unwrap_or_else(|| vec![c]);
            let smt_primary = siblings
                .iter()
                .filter(|s| online.contains(s))
                .min()
                .is_none_or(|&lo| lo == c);
            let llc_list = deepest_cache_group(&dir).unwrap_or_else(|| online.clone());
            let next = llc_ids.len();
            let llc = *llc_ids.entry(llc_list).or_insert(next);
            let node = node_of.get(&c).copied().unwrap_or(0);
            cpus.push(Cpu {
                id: c,
                package,
                core,
                smt_primary,
                llc,
                node,
            });
        }
        Ok(CpuTopology { cpus })
    }

    /// The online CPUs, sorted by id.
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// Online logical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Distinct physical cores among the online CPUs.
    pub fn num_cores(&self) -> usize {
        let mut cores: Vec<(usize, usize)> =
            self.cpus.iter().map(|c| (c.package, c.core)).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }

    /// Distinct NUMA nodes among the online CPUs.
    pub fn num_nodes(&self) -> usize {
        let mut nodes: Vec<usize> = self.cpus.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Placement candidates in preference order: SMT primaries first, both
    /// halves sorted by `(node, llc, id)` so a contiguous prefix stays
    /// within one NUMA node and cache domain.
    fn candidates(&self) -> Vec<usize> {
        let mut primaries: Vec<&Cpu> = self.cpus.iter().filter(|c| c.smt_primary).collect();
        let mut secondaries: Vec<&Cpu> = self.cpus.iter().filter(|c| !c.smt_primary).collect();
        let key = |c: &&Cpu| (c.node, c.llc, c.id);
        primaries.sort_by_key(key);
        secondaries.sort_by_key(key);
        primaries
            .into_iter()
            .chain(secondaries)
            .map(|c| c.id)
            .collect()
    }

    /// Assign CPUs to `shards` shard workers, `pollers` network pollers,
    /// and the WAL-clock thread. Shards take the front of the candidate
    /// order (so they pack one cache/NUMA domain and sit next to their
    /// exchange peers); pollers and the clock take the back, keeping off
    /// the shard cores whenever the machine is big enough. On an
    /// oversubscribed machine assignments wrap — pinning then still keeps
    /// each worker from migrating, it just shares its core.
    pub fn plan(&self, shards: usize, pollers: usize) -> PlacementPlan {
        let cand = self.candidates();
        debug_assert!(!cand.is_empty());
        let shard_cpus: Vec<usize> = (0..shards).map(|s| cand[s % cand.len()]).collect();
        // Back of the list, skipping the shard block while any CPU remains.
        let spare: Vec<usize> = cand
            .iter()
            .rev()
            .copied()
            .filter(|c| !shard_cpus.contains(c))
            .collect();
        let pick = |i: usize| -> usize {
            if spare.is_empty() {
                cand[(shards + i) % cand.len()]
            } else {
                spare[i % spare.len()]
            }
        };
        let poller_cpus: Vec<usize> = (0..pollers).map(pick).collect();
        let wal_clock_cpu = Some(pick(pollers));
        PlacementPlan {
            shard_cpus,
            poller_cpus,
            wal_clock_cpu,
        }
    }
}

/// A topology-derived CPU assignment for the daemon's pinned threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementPlan {
    /// CPU for each shard worker slot (index = shard id).
    pub shard_cpus: Vec<usize>,
    /// CPU for each network poller.
    pub poller_cpus: Vec<usize>,
    /// CPU for the WAL group-commit clock thread.
    pub wal_clock_cpu: Option<usize>,
}

/// The `shared_cpu_list` of the deepest (highest-level) data-carrying cache
/// of one `cpuN` directory, or `None` if the tree has no cache info.
fn deepest_cache_group(cpu_dir: &Path) -> Option<Vec<usize>> {
    let cache = cpu_dir.join("cache");
    let mut best: Option<(usize, Vec<usize>)> = None;
    for entry in std::fs::read_dir(cache).ok()?.flatten() {
        let name = entry.file_name();
        if !name.to_str().is_some_and(|s| s.starts_with("index")) {
            continue;
        }
        let dir = entry.path();
        let Some(level) = read_usize(&dir.join("level")) else {
            continue;
        };
        // Instruction caches don't describe data locality.
        if read_trimmed(&dir.join("type")).as_deref() == Some("Instruction") {
            continue;
        }
        let Some(list) = read_trimmed(&dir.join("shared_cpu_list")).and_then(|s| parse_cpulist(&s))
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(l, _)| level > *l) {
            best = Some((level, list));
        }
    }
    best.map(|(_, list)| list)
}

fn enumerate_cpu_dirs(cpu_root: &Path) -> io::Result<Vec<usize>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(cpu_root)? {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        if let Some(n) = name
            .to_str()
            .and_then(|s| s.strip_prefix("cpu"))
            .and_then(|s| s.parse::<usize>().ok())
        {
            out.push(n);
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures/sysfs")
            .join(name)
    }

    #[test]
    fn cpulist_parses_ranges_singles_and_holes() {
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0-1,3"), Some(vec![0, 1, 3]));
        assert_eq!(parse_cpulist("5"), Some(vec![5]));
        assert_eq!(parse_cpulist(" 0-1, 4-5 ,7\n"), Some(vec![0, 1, 4, 5, 7]));
        assert_eq!(parse_cpulist(""), Some(vec![]));
        assert_eq!(parse_cpulist("\n"), Some(vec![]));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("a-b"), None);
        assert_eq!(parse_cpulist("1,,2"), None);
    }

    #[test]
    fn single_socket_tree_parses() {
        let t = CpuTopology::from_dir(&fixture("single-socket")).unwrap();
        assert_eq!(t.num_cpus(), 4);
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.cpus().iter().all(|c| c.smt_primary));
        // One shared L3: every CPU lands in the same LLC group.
        assert!(t.cpus().iter().all(|c| c.llc == t.cpus()[0].llc));
        let plan = t.plan(2, 1);
        assert_eq!(plan.shard_cpus, vec![0, 1]);
        // Pollers and the WAL clock stay off the shard cores.
        for c in plan.poller_cpus.iter().chain(&plan.wal_clock_cpu) {
            assert!(!plan.shard_cpus.contains(c), "worker shares a shard core");
        }
    }

    #[test]
    fn dual_numa_tree_groups_by_node_and_llc() {
        let t = CpuTopology::from_dir(&fixture("dual-numa")).unwrap();
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.num_nodes(), 2);
        // Two packages, two LLC groups, aligned with the nodes.
        for c in t.cpus() {
            assert_eq!(c.node, if c.id < 4 { 0 } else { 1 }, "cpu{}", c.id);
            assert_eq!(c.package, c.node);
        }
        let llc0 = t.cpus()[0].llc;
        let llc4 = t.cpus().iter().find(|c| c.id == 4).unwrap().llc;
        assert_ne!(llc0, llc4);
        // Four shards pack node 0 entirely before touching node 1.
        let plan = t.plan(4, 2);
        assert_eq!(plan.shard_cpus, vec![0, 1, 2, 3]);
        for c in plan.poller_cpus.iter().chain(&plan.wal_clock_cpu) {
            assert!(*c >= 4, "poller/clock cpu{c} landed on the shard node");
        }
    }

    #[test]
    fn smt_tree_prefers_one_thread_per_core() {
        let t = CpuTopology::from_dir(&fixture("smt")).unwrap();
        assert_eq!(t.num_cpus(), 4);
        assert_eq!(t.num_cores(), 2);
        let primaries: Vec<usize> = t
            .cpus()
            .iter()
            .filter(|c| c.smt_primary)
            .map(|c| c.id)
            .collect();
        assert_eq!(primaries, vec![0, 1]); // siblings are (0,2) and (1,3)
                                           // Two shards take the two primaries — distinct physical cores —
                                           // and the spare SMT siblings absorb the pollers.
        let plan = t.plan(2, 2);
        assert_eq!(plan.shard_cpus, vec![0, 1]);
        for c in &plan.poller_cpus {
            assert!(*c >= 2, "poller cpu{c} took a primary thread");
        }
    }

    #[test]
    fn hotplug_hole_skips_the_offline_cpu() {
        let t = CpuTopology::from_dir(&fixture("hotplug-hole")).unwrap();
        assert_eq!(t.num_cpus(), 3);
        let ids: Vec<usize> = t.cpus().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        // cpu3's sibling (cpu2) is offline, so cpu3 is its core's primary.
        assert!(t.cpus().iter().all(|c| c.smt_primary));
        // Oversubscribed plan wraps instead of panicking.
        let plan = t.plan(5, 2);
        assert_eq!(plan.shard_cpus.len(), 5);
        assert!(plan.shard_cpus.iter().all(|c| ids.contains(c)));
    }

    #[test]
    fn live_discovery_is_sane_on_linux() {
        if !Path::new("/sys/devices/system/cpu").is_dir() {
            return; // non-Linux CI: fixtures above still cover the parser
        }
        let t = CpuTopology::discover().unwrap();
        assert!(t.num_cpus() >= 1);
        assert!(t.num_cores() >= 1);
        let plan = t.plan(2, 1);
        assert_eq!(plan.shard_cpus.len(), 2);
    }
}
