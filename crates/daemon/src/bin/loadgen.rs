//! The `cts-loadgen` binary: replay the workload suite against a daemon as
//! concurrent client streams, differentially check every answer, and report
//! throughput/latency in the `cts-bench/1` JSON schema.
//!
//! ```text
//! cts-loadgen [--addr HOST:PORT] [--connections 8] [--seed 1]
//!             [--max-cluster-size 8] [--shards N] [--quick | --smoke]
//!             [--net-threads] [--pollers N] [--c10k N] [--c10k-bench]
//!             [--window-page N] [--json PATH] [--shutdown]
//!             [--data-dir PATH] [--checkpoint-every N]
//!             [--kill-after N [--restart]]
//!             [--followers N | --follower-addr HOST:PORT ...]
//!             [--epoch-every N] [--asof-epochs N]
//!             [--replay-as STRATEGY:MAXCS] [--wait-ready SECS]
//! ```
//!
//! Without `--addr`, an in-process daemon is started on an ephemeral
//! loopback port and shut down afterwards (the self-contained mode used by
//! `scripts/check.sh` to record `results/BENCH_ingest.json`). With
//! `--addr`, the load is aimed at an already-running daemon; add
//! `--shutdown` to send the wire Shutdown message at the end.
//!
//! `--quick` uses the reduced mini suite; `--smoke` streams a single SPMD
//! computation with a handful of queries (the CI liveness check). The
//! default replays the full 54-computation standard suite. Exit status is
//! non-zero on any differential mismatch.
//!
//! `--shards N` runs each computation's ingest path on N shard workers
//! (parallel causal delivery per process group); the differential checks
//! are unchanged, so this doubles as the sharded full-suite soak. Only
//! meaningful for the in-process daemon. `--shards auto` enables live
//! shard autoscaling instead of a fixed count (`--balance` steals clusters
//! at a fixed count, `--pin-cores` pins workers to topology-chosen CPUs),
//! and `--shards 0` or a non-numeric count is an argument error (exit 2).
//!
//! `--place` switches to the shard-autoscaling soak (PR 10): planted
//! hot-group fixtures are streamed through an in-process `--shards auto`
//! daemon (or an external `--addr` daemon started with one), the
//! `QueryPlacement` verb is sampled mid-stream, and the full differential
//! suite re-verifies every answer over the same computations. Exit status
//! is non-zero on any mismatch *or* if no autoscale action fired — a dead
//! autoscaler fails the soak even when the answers are right.
//!
//! `--window-page N` sets the page size of the window-scroll checks (0 =
//! the server's default cap); the small default forces the continuation
//! cursor through several round trips per scroll.
//!
//! `--net-threads` runs the in-process daemon on the thread-per-connection
//! backend (the differential oracle for the default epoll front end);
//! `--pollers N` sizes the epoll poller pool. `--c10k N` opens N idle
//! connections *first* and holds them through the whole differential run —
//! the capacity soak: every answer must stay correct while the daemon
//! carries them. `--c10k-bench` skips the suite and instead measures the
//! idle CPU and per-connection memory of both backends, emitting the
//! `daemon_ingest/c10k_*` entries `scripts/bench_gate.py --require-ratio`
//! gates on.
//!
//! `--followers N` spawns N in-process *follower* daemons replicating the
//! leader over the `Subscribe` WAL stream (requires a durable leader:
//! `--data-dir` in-process, or an external `--addr` leader started with
//! one); `--follower-addr HOST:PORT` (repeatable) aims at already-running
//! followers instead. Either way the differential query suite is fanned
//! across the fleet after a convergence barrier, and the
//! `repl/warm_batch_{leader,fleet}` benchmark pair records the read
//! scale-out ratio `scripts/bench_gate.py --require-ratio` gates on.
//!
//! `--asof-epochs N` adds the time-travel phase (PR 8): after the head
//! differential checks, up to N *historical* retained epochs per
//! computation are pulled back over `ReplayInterval`, re-timestamped
//! offline, and the `QueryAsOf*` answers at each epoch checked against
//! that prefix engine. `--replay-as STRATEGY:MAXCS` (grammar of
//! [`cts_core::StrategySpec`]: `merge1st:N`, `mergeNth:N[@tau]`,
//! `never[:N]`) replays the newest retained epoch of every computation
//! and re-clusters it offline under a different strategy, reporting the
//! paper's stamp-size/ratio deltas against the serving strategy.
//! `--epoch-every N` sets the in-process daemon's publish cadence — small
//! values retain many epochs, which is what makes those two phases (and
//! the retention-cycling soak) bite.
//!
//! `--wait-ready SECS` (external `--addr` daemons) polls a session-free
//! `ProtoHello` until the daemon stops answering `RECOVERING`, so a
//! crash/restart CI stage can gate the load run on recovery completing.
//!
//! `--data-dir` makes the in-process daemon durable (write-ahead log +
//! checkpoints under PATH). `--kill-after N` switches to the crash-replay
//! scenario: stream ~N events, crash-stop the daemon (no final sync or
//! checkpoint), and — with `--restart` — start a fresh daemon on the same
//! data directory, wait for recovery, re-stream the full suite, and run
//! the standard differential checks, which must report zero mismatches.
//!
//! `--drift` switches to the adaptive re-clustering soak (PR 9): the
//! planted-drift fixtures are streamed through an *adaptive* in-process
//! daemon (or an external `--addr` daemon started with `--adaptive`),
//! segmented at their planted phase boundaries so the reported
//! cluster-receive-ratio curves line up with the plants, then the full
//! differential suite (including `--asof-epochs` time travel) re-verifies
//! every answer. Exit status is non-zero on any mismatch *or* if a fixture
//! finished without a single drift migration — a dead detector fails the
//! soak even when the answers are right. Unless `--max-cluster-size` is
//! given, the soak uses 12 (the phase-stencil fixture's blocks are 8 wide,
//! and a migration needs room in the destination cluster).

use cts_daemon::loadgen::{self, LoadConfig};
use cts_daemon::server::{Daemon, DaemonConfig};
use cts_daemon::Client;
use cts_util::bench::Bencher;
use cts_workloads::suite::{mini_suite, standard_suite, SuiteEntry};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cts-loadgen [--addr HOST:PORT] [--connections N] [--seed N]\n\
         \x20                  [--max-cluster-size N]\n\
         \x20                  [--net-threads] [--pollers N]\n\
         \x20                  [--c10k N] [--c10k-bench]\n\
         \x20                  [--quick | --smoke] [--window-page N]\n\
         \x20                  [--json PATH] [--shutdown]\n\
         \x20                  [--data-dir PATH] [--checkpoint-every N]\n\
         \x20                  [--kill-after N [--restart]]\n\
         \x20                  [--followers N | --follower-addr HOST:PORT ...]\n\
         \x20                  [--epoch-every N] [--asof-epochs N]\n\
         \x20                  [--replay-as STRATEGY:MAXCS] [--batch N]\n\
         \x20                  [--wait-ready SECS] [--drift] [--place]\n\
         \x20                  [--shards N|auto] [--balance] [--pin-cores]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<std::net::SocketAddr> = None;
    let mut json: Option<String> = None;
    let mut quick = false;
    let mut smoke = false;
    let mut send_shutdown = false;
    let mut data_dir: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut kill_after: Option<u64> = None;
    let mut restart = false;
    let mut shards: Option<u32> = None;
    let mut net_threads = false;
    let mut pollers: Option<usize> = None;
    let mut c10k: usize = 0;
    let mut c10k_bench = false;
    let mut followers: usize = 0;
    let mut epoch_every: Option<u64> = None;
    let mut replay_as: Option<cts_core::StrategySpec> = None;
    let mut wait_ready: Option<u64> = None;
    let mut drift_soak = false;
    let mut place_soak = false;
    let mut auto_scale = false;
    let mut balance = false;
    let mut pin_cores = false;
    let mut mcs_set = false;
    let mut cfg = LoadConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            // Parse eagerly: a malformed address is an argument error
            // (exit 2 + usage), not something to discover after the
            // in-process-vs-external decision has already been made.
            "--addr" => {
                let raw = value(&mut i);
                addr = match raw.parse() {
                    Ok(a) => Some(a),
                    Err(e) => {
                        eprintln!("cts-loadgen: bad --addr {raw:?}: {e}");
                        usage();
                    }
                }
            }
            "--connections" => cfg.connections = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => cfg.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-cluster-size" => {
                mcs_set = true;
                cfg.max_cluster_size = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            "--window-page" => cfg.window_page = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json = Some(value(&mut i)),
            "--shutdown" => send_shutdown = true,
            "--data-dir" => data_dir = Some(value(&mut i)),
            "--checkpoint-every" => {
                checkpoint_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--kill-after" => kill_after = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            // `--shards 0` and non-numeric counts are argument errors (exit
            // 2 + usage), not panics; `auto` turns on live autoscaling.
            "--shards" => {
                let raw = value(&mut i);
                if raw == "auto" {
                    shards = Some(2);
                    auto_scale = true;
                } else {
                    match raw.parse::<u32>() {
                        Ok(n) if n >= 1 => shards = Some(n),
                        _ => {
                            eprintln!(
                                "cts-loadgen: bad --shards {raw:?} (want a count >= 1 or 'auto')"
                            );
                            usage();
                        }
                    }
                }
            }
            "--pin-cores" => pin_cores = true,
            "--balance" => balance = true,
            "--place" => place_soak = true,
            "--net-threads" => net_threads = true,
            "--pollers" => pollers = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--c10k" => c10k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--c10k-bench" => c10k_bench = true,
            "--followers" => followers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--follower-addr" => {
                let raw = value(&mut i);
                match raw.parse() {
                    Ok(a) => cfg.follower_addrs.push(a),
                    Err(e) => {
                        eprintln!("cts-loadgen: bad --follower-addr {raw:?}: {e}");
                        usage();
                    }
                }
            }
            "--restart" => restart = true,
            "--epoch-every" => {
                epoch_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--asof-epochs" => cfg.asof_epochs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--wait-ready" => wait_ready = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--drift" => drift_soak = true,
            "--replay-as" => {
                let raw = value(&mut i);
                replay_as = match raw.parse() {
                    Ok(spec) => Some(spec),
                    Err(e) => {
                        eprintln!("cts-loadgen: bad --replay-as: {e}");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let suite: Vec<SuiteEntry> = if smoke {
        let mut s = standard_suite();
        s.truncate(1);
        s
    } else if quick {
        mini_suite()
    } else {
        standard_suite()
    };
    if smoke {
        cfg.precedence_queries = 25;
        cfg.gc_probes = 1;
    } else if quick {
        cfg.precedence_queries = 50;
    }
    if !drift_soak && !place_soak {
        eprintln!(
            "[cts-loadgen] {} computations, {} events, {} connections",
            suite.len(),
            suite.iter().map(|e| e.trace.num_events()).sum::<usize>(),
            cfg.connections
        );
    }

    let mut daemon_cfg = DaemonConfig::default();
    if let Some(dir) = &data_dir {
        daemon_cfg.data_dir = Some(dir.into());
    }
    if let Some(n) = checkpoint_every {
        daemon_cfg.checkpoint_every = n;
    }
    if net_threads {
        daemon_cfg.net = cts_daemon::server::NetBackend::Threads;
    }
    if let Some(n) = epoch_every {
        if addr.is_some() {
            eprintln!("cts-loadgen: --epoch-every configures the in-process daemon; drop --addr");
            std::process::exit(2);
        }
        daemon_cfg.epoch_every = n;
    }
    if let Some(n) = pollers {
        daemon_cfg.pollers = n;
    }
    if let Some(n) = shards {
        if addr.is_some() {
            eprintln!("cts-loadgen: --shards configures the in-process daemon; drop --addr");
            std::process::exit(2);
        }
        daemon_cfg.shards = n;
    }
    daemon_cfg.auto_scale = auto_scale;
    daemon_cfg.balance = balance;
    daemon_cfg.pin_cores = pin_cores;
    if (net_threads || pollers.is_some()) && addr.is_some() {
        eprintln!(
            "cts-loadgen: --net-threads/--pollers configure the in-process daemon; drop --addr"
        );
        std::process::exit(2);
    }
    if followers > 0 && !cfg.follower_addrs.is_empty() {
        eprintln!("cts-loadgen: pick one of --followers (in-process) or --follower-addr");
        std::process::exit(2);
    }
    if followers > 0 && addr.is_none() && data_dir.is_none() {
        eprintln!(
            "cts-loadgen: --followers needs a durable leader; add --data-dir (the \
             WAL is the replication stream)"
        );
        std::process::exit(2);
    }
    if (followers > 0 || !cfg.follower_addrs.is_empty()) && (kill_after.is_some() || c10k_bench) {
        eprintln!("cts-loadgen: follower fleets do not combine with --kill-after/--c10k-bench");
        std::process::exit(2);
    }

    // Backend idle-cost comparison: measure, optionally record, exit.
    if c10k_bench {
        let entries = match loadgen::c10k_bench_entries(5000, 500, Duration::from_secs(2)) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cts-loadgen: c10k bench failed: {e}");
                std::process::exit(1);
            }
        };
        if let Some(path) = &json {
            let mut bencher = Bencher::quick();
            for entry in entries {
                bencher.record_entry(entry);
            }
            if let Err(e) = std::fs::write(path, bencher.to_json()) {
                eprintln!("cts-loadgen: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[cts-loadgen] wrote {path}");
        }
        return;
    }

    // Crash-replay scenario: partial stream → crash-stop → restart →
    // recover → re-stream → differential check.
    if let Some(n) = kill_after {
        if addr.is_some() {
            eprintln!("cts-loadgen: --kill-after runs an in-process daemon; drop --addr");
            std::process::exit(2);
        }
        if data_dir.is_none() {
            eprintln!("cts-loadgen: --kill-after requires --data-dir");
            std::process::exit(2);
        }
        match loadgen::run_crash_replay(&suite, &cfg, daemon_cfg, n, restart) {
            Ok(None) => {
                eprintln!(
                    "[cts-loadgen] crash-stopped without --restart; data dir left \
                     for inspection"
                );
            }
            Ok(Some(report)) => {
                println!("{}", report.render());
                if report.mismatches > 0 {
                    eprintln!(
                        "cts-loadgen: {} differential mismatches after crash recovery",
                        report.mismatches
                    );
                    std::process::exit(1);
                }
                eprintln!("[cts-loadgen] crash replay clean: 0 mismatches after recovery");
            }
            Err(e) => {
                eprintln!("cts-loadgen: crash replay failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Adaptive re-clustering soak: planted-drift fixtures through an
    // adaptive daemon, curves sampled at the plants, differential oracle
    // plus detector-liveness gate.
    if drift_soak {
        if kill_after.is_some() || followers > 0 || !cfg.follower_addrs.is_empty() {
            eprintln!("cts-loadgen: --drift does not combine with --kill-after/--followers");
            std::process::exit(2);
        }
        if !mcs_set {
            // The phase-stencil fixture's blocks are 8 wide; a migration
            // needs headroom in the destination cluster, so the default
            // max cluster size of 8 would pin every process in place.
            cfg.max_cluster_size = 12;
        }
        let own = match addr {
            None => {
                daemon_cfg.adaptive = Some(cts_core::cluster::AdaptiveParams::new(
                    cfg.max_cluster_size as usize,
                ));
                let daemon = match Daemon::start(daemon_cfg) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("cts-loadgen: cannot start in-process daemon: {e}");
                        std::process::exit(1);
                    }
                };
                cfg.addr = daemon.local_addr();
                eprintln!("[cts-loadgen] in-process adaptive daemon on {}", cfg.addr);
                Some(daemon)
            }
            Some(a) => {
                // An external daemon must itself be started with
                // `--adaptive`; a merge-only daemon passes the oracle but
                // fails the detector-liveness gate below.
                cfg.addr = a;
                None
            }
        };
        let report = match cts_daemon::drift::run_drift_soak(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cts-loadgen: drift soak failed: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.render());
        if send_shutdown {
            let r = Client::connect(cfg.addr).and_then(|mut c| c.shutdown_daemon());
            if let Err(e) = r {
                eprintln!("cts-loadgen: shutdown request failed: {e}");
            }
        }
        if let Some(daemon) = own {
            daemon.shutdown();
        }
        if !report.passed() {
            eprintln!(
                "cts-loadgen: drift soak FAILED ({} mismatches, undetected {:?})",
                report.load.mismatches, report.undetected
            );
            std::process::exit(1);
        }
        eprintln!(
            "[cts-loadgen] drift soak clean: 0 mismatches, {} migrations",
            report.migrations
        );
        return;
    }

    // Shard-autoscaling soak: planted hot-group fixtures through a
    // `--shards auto` daemon, placement sampled mid-stream, differential
    // oracle plus autoscaler-liveness gate.
    if place_soak {
        if kill_after.is_some() || followers > 0 || !cfg.follower_addrs.is_empty() {
            eprintln!("cts-loadgen: --place does not combine with --kill-after/--followers");
            std::process::exit(2);
        }
        let own = match addr {
            None => {
                daemon_cfg.shards = daemon_cfg.shards.max(2);
                daemon_cfg.auto_scale = true;
                let daemon = match Daemon::start(daemon_cfg) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("cts-loadgen: cannot start in-process daemon: {e}");
                        std::process::exit(1);
                    }
                };
                cfg.addr = daemon.local_addr();
                eprintln!(
                    "[cts-loadgen] in-process autoscaling daemon on {}",
                    cfg.addr
                );
                Some(daemon)
            }
            Some(a) => {
                // An external daemon must itself be started with
                // `--shards auto`; a fixed-count daemon passes the oracle
                // but fails the liveness gate below.
                cfg.addr = a;
                None
            }
        };
        let report = match cts_daemon::place::run_place_soak(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cts-loadgen: place soak failed: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.render());
        if send_shutdown {
            let r = Client::connect(cfg.addr).and_then(|mut c| c.shutdown_daemon());
            if let Err(e) = r {
                eprintln!("cts-loadgen: shutdown request failed: {e}");
            }
        }
        if let Some(daemon) = own {
            daemon.shutdown();
        }
        if !report.passed() {
            eprintln!(
                "cts-loadgen: place soak FAILED ({} mismatches, {} autoscale actions)",
                report.load.mismatches,
                report.rescales()
            );
            std::process::exit(1);
        }
        eprintln!(
            "[cts-loadgen] place soak clean: 0 mismatches, {} autoscale actions",
            report.rescales()
        );
        return;
    }

    // Aim at an external daemon, or run one in-process.
    let own_daemon = match addr {
        None => {
            let daemon = match Daemon::start(daemon_cfg) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cts-loadgen: cannot start in-process daemon: {e}");
                    std::process::exit(1);
                }
            };
            cfg.addr = daemon.local_addr();
            eprintln!("[cts-loadgen] in-process daemon on {}", cfg.addr);
            Some(daemon)
        }
        Some(a) => {
            cfg.addr = a;
            None
        }
    };

    // A freshly restarted durable daemon refuses every request with
    // RECOVERING while it replays on-disk state in the background;
    // --wait-ready polls a session-free ProtoHello (creates nothing on
    // the daemon) until it answers, so crash/restart CI stages can gate
    // on recovery without retry-looping the whole load run.
    if let Some(secs) = wait_ready {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        loop {
            let ready = Client::connect(cfg.addr)
                .and_then(|mut c| c.proto_hello())
                .is_ok();
            if ready {
                eprintln!("[cts-loadgen] daemon at {} is ready", cfg.addr);
                break;
            }
            if std::time::Instant::now() >= deadline {
                eprintln!(
                    "cts-loadgen: daemon at {} still not ready after {secs}s",
                    cfg.addr
                );
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    // In-process follower fleet: each follower replicates the leader into
    // its own data directory under a scratch root.
    let mut own_followers: Vec<Daemon> = Vec::new();
    let follower_root =
        std::env::temp_dir().join(format!("cts-loadgen-followers-{}", std::process::id()));
    if followers > 0 {
        match loadgen::spawn_followers(cfg.addr, followers, &follower_root) {
            Ok(ds) => {
                cfg.follower_addrs = ds.iter().map(|d| d.local_addr()).collect();
                eprintln!(
                    "[cts-loadgen] {} in-process followers replicating {}: {:?}",
                    ds.len(),
                    cfg.addr,
                    cfg.follower_addrs
                );
                own_followers = ds;
            }
            Err(e) => {
                eprintln!("cts-loadgen: cannot start followers: {e}");
                std::process::exit(1);
            }
        }
    }

    // C10K soak: hold a fleet of idle connections for the whole run, so
    // the differential suite below is answered *while* the daemon carries
    // them. Capacity plus correctness, not capacity instead of it.
    let held = if c10k > 0 {
        // Each held connection costs this process one fd (plus one in the
        // daemon, when it is in-process) — take the hard rlimit up front.
        #[cfg(target_os = "linux")]
        if let Ok(n) = cts_daemon::netpoll::raise_nofile_to_hard() {
            eprintln!("[cts-loadgen] fd limit raised to {n}");
        }
        eprintln!("[cts-loadgen] opening {c10k} idle connections to hold through the run");
        match loadgen::hold_idle_conns(cfg.addr, c10k) {
            Ok(h) => {
                eprintln!("[cts-loadgen] holding {} idle connections", h.len());
                h
            }
            Err(e) => {
                eprintln!("cts-loadgen: c10k connection hold failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        Vec::new()
    };

    let report = match loadgen::run(&suite, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cts-loadgen: load run failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());

    // Time-travel what-if: replay the newest retained epoch of every
    // computation and re-cluster it offline under a different strategy.
    if let Some(spec) = replay_as {
        match loadgen::run_replay_as(&suite, &cfg, spec) {
            Ok(reports) => {
                for r in &reports {
                    println!("[replay-as] {}", r.render());
                }
                if reports.is_empty() {
                    eprintln!("cts-loadgen: --replay-as found no retained epochs to replay");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("cts-loadgen: --replay-as failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Read scale-out measurement: the same warm batched-query workload
    // against the leader alone, then fanned across the followers.
    let mut fleet_entries = Vec::new();
    if !cfg.follower_addrs.is_empty() {
        match loadgen::fleet_bench_entries(&suite, &cfg, 4, 3) {
            Ok(entries) => {
                for e in &entries {
                    eprintln!(
                        "[cts-loadgen] repl/{}: min {:.1} ms over {} items",
                        e.name,
                        e.min_ns / 1e6,
                        e.iters_per_sample
                    );
                }
                fleet_entries = entries;
            }
            Err(e) => {
                eprintln!("cts-loadgen: fleet bench failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &json {
        let mut bencher = Bencher::quick();
        for entry in report.bench_entries() {
            bencher.record_entry(entry);
        }
        for entry in fleet_entries {
            bencher.record_entry(entry);
        }
        if addr.is_none() {
            // Shard-ingest scaling on the widest computations (the
            // in-process pipeline, so the TCP stack stays out of the
            // measurement): the `_s4` / `_s1` ratio in this report is the
            // ingest speedup the sharded runtime delivers on this host.
            eprintln!("[cts-loadgen] recording shard_ingest sweep (1/2/4 shards)");
            for entry in loadgen::shard_sweep_entries(&[1, 2, 4], 3) {
                bencher.record_entry(entry);
            }
        }
        if let Err(e) = std::fs::write(path, bencher.to_json()) {
            eprintln!("cts-loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[cts-loadgen] wrote {path}");
    }

    if !held.is_empty() {
        eprintln!(
            "[cts-loadgen] suite ran clean while {} idle connections were held",
            held.len()
        );
        drop(held);
    }

    for d in own_followers {
        d.shutdown();
    }
    if followers > 0 {
        let _ = std::fs::remove_dir_all(&follower_root);
    }
    if send_shutdown {
        let r = Client::connect(cfg.addr).and_then(|mut c| c.shutdown_daemon());
        match r {
            Ok(()) => eprintln!("[cts-loadgen] daemon acknowledged shutdown"),
            Err(e) => eprintln!("cts-loadgen: shutdown request failed: {e}"),
        }
    }
    if let Some(daemon) = own_daemon {
        daemon.shutdown();
    }

    if report.mismatches > 0 {
        eprintln!(
            "cts-loadgen: {} differential mismatches — daemon answers diverge \
             from the offline engine",
            report.mismatches
        );
        std::process::exit(1);
    }
}
