//! The per-computation ingest pipeline and its snapshot/epoch discipline.
//!
//! Each computation the daemon monitors gets one [`Computation`]: a single
//! ingest worker thread that owns the [`ReorderBuffer`], the online
//! [`ClusterEngine`], and the store's single-writer
//! [`cts_store::IngestHandle`]. Sessions enqueue event batches onto a
//! *bounded* channel (backpressure: a full queue blocks the connection
//! thread, which in turn stops reading its socket, which pushes back on the
//! client through TCP flow control).
//!
//! Queries never touch the engine. The worker periodically *publishes* an
//! immutable [`Snapshot`] — a delivery-order [`Trace`] of everything
//! delivered so far plus the engine's [`ClusterTimestamps`] for exactly that
//! prefix — and query threads read the current `Arc<Snapshot>` without
//! blocking ingest (the engine clone behind
//! [`ClusterEngine::snapshot`] happens on the worker; readers only swap an
//! `Arc`). The `Flush` barrier lets a client wait until a snapshot covering
//! a known event count is live, which is what makes answers deterministic
//! enough to differentially test against the offline batch engine.

use crate::checkpoint::{self, CompMeta, RecoveryReport};
use crate::metrics::Metrics;
use crate::reorder::ReorderBuffer;
use crate::shard::{PlacementParams, StampStrategy};
use crate::sharded::{PlacementInfo, ShardedRuntime};
use crate::wal::{self, WalWriter};
use cts_core::cluster::{AdaptiveEngine, ClusterTimestamps};
use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_model::{Event, EventId, ProcessId, Trace};
use cts_store::{EpochRetainer, EventStore, PartitionedStore, SharedQueryCache, SharedStore};
use cts_util::failpoint::{DurableSink, FailpointFs};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Durability tunables for one computation (see [`crate::wal`] and
/// [`crate::checkpoint`]).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// This computation's data directory (`meta`, checkpoints, WAL
    /// segments live here).
    pub dir: PathBuf,
    /// Group-commit window: the WAL fsyncs at most once per window on the
    /// ingest path (`Duration::ZERO` = fsync every batch). `Flush` barriers
    /// and checkpoints always sync regardless of the window.
    pub sync_window: Duration,
    /// Write a checkpoint (and rotate the WAL) every this many delivered
    /// events; `0` disables checkpointing (WAL-only durability).
    pub checkpoint_every: u64,
    /// Test failpoint: simulate a crash (torn write, then hard errors)
    /// after this many WAL bytes. `None` in production.
    pub wal_byte_budget: Option<u64>,
}

/// Parameters of one monitored computation.
#[derive(Clone, Debug)]
pub struct ComputationConfig {
    pub name: String,
    pub num_processes: u32,
    pub max_cluster_size: u32,
    /// The clustering strategy the engine runs. Must agree with
    /// `max_cluster_size` (the strategy's own size bound is authoritative
    /// for stamping; the field above sizes encodings and metadata).
    pub strategy: StampStrategy,
    /// Bound of the ingest command queue, in batches.
    pub queue_capacity: usize,
    /// Publish a snapshot every this many delivered events (also on flush
    /// and on worker exit).
    pub epoch_every: u64,
    /// Ingest shards. `1` (or a single-process computation) runs the
    /// classic single-worker pipeline; `>= 2` runs the sharded runtime
    /// ([`crate::sharded`]) with one delivery core per process group,
    /// clamped to the number of processes.
    pub shards: u32,
    /// Autoscale the shard count at runtime (`--shards auto`): the sharded
    /// runtime pre-allocates worker slots up to the host's parallelism and
    /// live-splits hot shards / retires cold ones between messages, guided
    /// by the [`crate::shard::PlacementEngine`]. Starts at `shards` active.
    pub auto_scale: bool,
    /// Occupancy-driven cluster stealing at a fixed shard count
    /// (`--balance`). Implied by `auto_scale` once it hits a bound.
    pub balance: bool,
    /// Pin shard workers to topology-chosen CPUs (`--pin-cores`): one
    /// worker per physical core, shards packed into one LLC/NUMA domain.
    pub pin_cores: bool,
    /// Placement tuning; `None` selects [`PlacementParams::default`]
    /// (tests pass aggressive thresholds for determinism).
    pub placement: Option<PlacementParams>,
    /// `Some` makes the computation durable: delivered events are
    /// write-ahead logged and checkpointed, and
    /// [`Computation::spawn_durable`] recovers state from disk.
    pub durability: Option<DurabilityConfig>,
    /// Entry bound per layer of the shared query cache (see
    /// [`cts_store::SharedQueryCache`]); `0` selects the default.
    pub query_cache_capacity: usize,
    /// Retained-epoch ring capacity for time-travel queries (see
    /// [`cts_store::EpochRetainer`]); `0` selects [`DEFAULT_RETAIN_EPOCHS`].
    pub retain_epochs: usize,
    /// Byte budget for retained epochs; `0` means no byte cap.
    pub retain_bytes: u64,
}

/// Default [`ComputationConfig::query_cache_capacity`]: bounds each memo
/// layer at ~64k entries (a stamp entry for an N-process computation is
/// ~4·N bytes, so the worst-case footprint stays in the tens of MB).
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 1 << 16;

/// Default [`ComputationConfig::retain_epochs`]: how many published epochs
/// stay answerable via `QueryAsOf`/`ReplayInterval` before GC retires them.
pub const DEFAULT_RETAIN_EPOCHS: usize = 8;

impl ComputationConfig {
    /// Does this configuration select the sharded runtime?
    pub fn is_sharded(&self) -> bool {
        self.shards >= 2 && self.num_processes >= 2
    }
}

/// An immutable published epoch: the delivered prefix as a valid
/// delivery-order trace, with cluster timestamps for exactly that prefix.
pub struct Snapshot {
    pub epoch: u64,
    /// Events covered (== `trace.num_events()`).
    pub delivered: u64,
    pub trace: Trace,
    pub cts: ClusterTimestamps,
}

impl Snapshot {
    /// Estimated resident bytes of this snapshot — the trace's event array
    /// plus per-event stamp state. Retention accounting only (the byte cap
    /// of [`cts_store::EpochRetainer`]); not an exact heap measurement.
    pub fn footprint(&self) -> u64 {
        let per_event = std::mem::size_of::<Event>() as u64 + 16;
        1024 + self.delivered * per_event
    }
}

/// Commands a session enqueues to the ingest worker.
enum IngestCmd {
    Events(Vec<Event>),
    Publish,
    /// Group-commit tick: sync the WAL if dirty. Sent by the daemon's
    /// timer (timerfd on the epoll backend, a timer thread on the thread
    /// backend) instead of the worker checking the window on every append.
    SyncWal,
}

/// Why a non-blocking enqueue did not accept a batch.
pub enum TryEnqueue {
    /// The ingest queue is full; the (unaccepted remainder of the) batch is
    /// handed back so the caller can retry after backing off. Event order
    /// within the returned vector is preserved.
    Backpressure(Vec<Event>),
    /// The computation is shut down; the batch can never be accepted.
    Closed,
}

#[derive(Default)]
pub(crate) struct Progress {
    pub(crate) delivered: u64,
    pub(crate) snapshot_delivered: u64,
    pub(crate) epoch: u64,
}

/// Why a flush barrier failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushError {
    /// The target count was not delivered before the deadline (the stream is
    /// incomplete or stalled in the reorder buffer). Carries the count
    /// delivered so far.
    Timeout { delivered: u64 },
    /// The computation is shutting down.
    Closed,
}

/// The ingest side refused a batch because the worker is gone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Closed;

/// One committed (durably synced) run of delivered events, broadcast to
/// replication subscribers. `commit` is the durable watermark as of the
/// sync that produced the batch — everything at offset <= `commit` survives
/// a crash of this daemon.
pub(crate) struct ReplBatch {
    /// 1-based delivery offset of `events[0]`.
    pub(crate) first_offset: u64,
    pub(crate) commit: u64,
    pub(crate) events: Vec<Event>,
}

/// Per-subscriber channel bound, in batches. A subscriber that falls this
/// far behind the live stream (a stalled follower connection) is dropped by
/// the ingest worker; its streamer notices the closed channel, ends the
/// connection, and the follower resubscribes from its durable position.
pub(crate) const REPL_SUBSCRIBER_QUEUE: usize = 1024;

/// The replication fan-out point of one computation: live subscriber
/// channels fed by the ingest worker at every successful WAL sync, plus the
/// durable watermark catch-up reads are capped at.
#[derive(Default)]
pub(crate) struct ReplHub {
    pub(crate) subscribers: Mutex<Vec<SyncSender<Arc<ReplBatch>>>>,
    /// Events covered by the last successful WAL sync. Monotone; store
    /// ordering is Release so a subscriber that reads the watermark sees
    /// the on-disk bytes it promises.
    pub(crate) durable: std::sync::atomic::AtomicU64,
}

/// State shared between the ingest worker and query threads. The worker
/// holds only this (not the [`Computation`]), so dropping every
/// `Arc<Computation>` drops the master sender and the worker drains and
/// exits on its own.
pub(crate) struct CompShared {
    pub(crate) snapshot: cts_store::sync::RwLock<Arc<Snapshot>>,
    pub(crate) progress: Mutex<Progress>,
    pub(crate) cond: Condvar,
    pub(crate) metrics: Metrics,
    pub(crate) store: SharedStore,
    /// The sharded runtime's store (its shards write concurrently, so the
    /// single-writer [`SharedStore`] does not fit); `None` in single mode.
    pub(crate) parts: Option<Arc<PartitionedStore>>,
    /// Raised by [`Computation::kill`]: the worker exits at the next
    /// command without the graceful final sync/checkpoint/publish.
    pub(crate) killed: AtomicBool,
    /// Query memo shared by every connection of this computation, carried
    /// across epochs (prefix-monotone snapshots keep old entries valid).
    pub(crate) query_cache: Arc<SharedQueryCache>,
    /// Retained-epoch ring: published snapshots stay answerable for
    /// time-travel queries until GC retires them (see
    /// [`cts_store::EpochRetainer`]).
    pub(crate) retainer: Arc<EpochRetainer<Snapshot>>,
    /// Replication fan-out: subscriber channels + durable watermark.
    pub(crate) repl: ReplHub,
}

/// How a computation's ingest runs: one worker thread, or the sharded
/// runtime.
enum EngineMode {
    Single {
        sender: Mutex<Option<SyncSender<IngestCmd>>>,
        worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    },
    Sharded(Arc<ShardedRuntime>),
}

/// One monitored computation: ingest worker(s) + published snapshot + store.
pub struct Computation {
    pub name: String,
    pub num_processes: u32,
    pub max_cluster_size: u32,
    /// This computation's data directory when durable (where replication
    /// catch-up reads checkpoints and WAL segments from).
    dur_dir: Option<PathBuf>,
    mode: EngineMode,
    shared: Arc<CompShared>,
}

impl Computation {
    /// Spawn the ingest worker for a new computation. Any
    /// [`ComputationConfig::durability`] is honored for *logging*, but
    /// nothing is recovered — use [`spawn_durable`](Self::spawn_durable) to
    /// restore state from disk first.
    pub fn spawn(config: ComputationConfig) -> Arc<Computation> {
        if config.is_sharded() {
            let (comp, rt) = Self::spawn_sharded(&config);
            if let Err(e) = rt.bootstrap(false) {
                eprintln!(
                    "[cts-daemon] {}: sharded bootstrap failed, running in-memory: {e}",
                    comp.name
                );
            }
            return comp;
        }
        Self::spawn_inner(config, Vec::new())
    }

    /// Recover a durable computation from its data directory (newest valid
    /// checkpoint + contiguous WAL tail, torn tails truncated), replay the
    /// recovered delivery order through the normal pipeline, and only then
    /// return. Requires `config.durability`.
    pub fn spawn_durable(
        config: ComputationConfig,
    ) -> io::Result<(Arc<Computation>, RecoveryReport)> {
        if config.is_sharded() {
            assert!(
                config.durability.is_some(),
                "spawn_durable requires a DurabilityConfig"
            );
            let (comp, rt) = Self::spawn_sharded(&config);
            let report = rt.bootstrap(true)?;
            return Ok((comp, report));
        }
        let dur = config
            .durability
            .clone()
            .expect("spawn_durable requires a DurabilityConfig");
        let meta = CompMeta {
            name: config.name.clone(),
            num_processes: config.num_processes,
            max_cluster_size: config.max_cluster_size,
        };
        checkpoint::ensure_meta(&dur.dir, &meta)?;
        let (replay, report) = checkpoint::recover_dir(&dur.dir)?;
        let replayed = replay.len() as u64;
        let comp = Self::spawn_inner(config, replay);
        // Block until the worker has applied the whole recovered prefix, so
        // callers observe fully recovered state.
        if replayed > 0 {
            comp.flush(replayed, Duration::from_secs(600))
                .map_err(|e| io::Error::other(format!("recovery replay stalled: {e:?}")))?;
        }
        Ok((comp, report))
    }

    fn empty_snapshot(config: &ComputationConfig) -> Snapshot {
        Snapshot {
            epoch: 0,
            delivered: 0,
            trace: Trace::from_delivery_order(
                config.name.clone(),
                config.num_processes,
                Vec::new(),
            )
            .expect("empty order is valid"),
            cts: match config.strategy {
                StampStrategy::Merge1st { max_cluster_size } => {
                    ClusterEngine::new(config.num_processes, MergeOnFirst::new(max_cluster_size))
                        .finish()
                }
                StampStrategy::Adaptive(params) => {
                    AdaptiveEngine::new(config.num_processes, params).finish()
                }
            },
        }
    }

    fn new_shared(
        config: &ComputationConfig,
        parts: Option<Arc<PartitionedStore>>,
    ) -> Arc<CompShared> {
        Arc::new(CompShared {
            snapshot: cts_store::sync::RwLock::new(Arc::new(Self::empty_snapshot(config))),
            progress: Mutex::new(Progress::default()),
            cond: Condvar::new(),
            metrics: Metrics::new(),
            store: SharedStore::new(EventStore::new(config.num_processes)),
            parts,
            killed: AtomicBool::new(false),
            query_cache: Arc::new(SharedQueryCache::new(match config.query_cache_capacity {
                0 => DEFAULT_QUERY_CACHE_CAPACITY,
                n => n,
            })),
            retainer: Arc::new(EpochRetainer::new(
                match config.retain_epochs {
                    0 => DEFAULT_RETAIN_EPOCHS,
                    n => n,
                },
                config.retain_bytes,
            )),
            repl: ReplHub::default(),
        })
    }

    /// Spawn the sharded runtime's workers. The caller must still run
    /// [`ShardedRuntime::bootstrap`] (recovery, WAL segments, first cut).
    fn spawn_sharded(config: &ComputationConfig) -> (Arc<Computation>, Arc<ShardedRuntime>) {
        let parts = Arc::new(PartitionedStore::new(config.num_processes));
        let shared = Self::new_shared(config, Some(Arc::clone(&parts)));
        let rt = ShardedRuntime::spawn(config, Arc::clone(&shared), parts);
        let comp = Arc::new(Computation {
            name: config.name.clone(),
            num_processes: config.num_processes,
            max_cluster_size: config.max_cluster_size,
            dur_dir: config.durability.as_ref().map(|d| d.dir.clone()),
            mode: EngineMode::Sharded(Arc::clone(&rt)),
            shared,
        });
        (comp, rt)
    }

    fn spawn_inner(config: ComputationConfig, replay: Vec<Event>) -> Arc<Computation> {
        let (tx, rx) = sync_channel(config.queue_capacity.max(1));
        let shared = Self::new_shared(&config, None);
        // The recovered prefix is on disk already (that is where it came
        // from): publish its length as the durable watermark *before* the
        // worker runs, so a subscription racing recovery cannot observe 0
        // and skip the catch-up read.
        shared
            .repl
            .durable
            .store(replay.len() as u64, Ordering::Release);
        let worker_shared = Arc::clone(&shared);
        let name = config.name.clone();
        let num_processes = config.num_processes;
        let max_cluster_size = config.max_cluster_size;
        let dur_dir = config.durability.as_ref().map(|d| d.dir.clone());
        let handle = std::thread::Builder::new()
            .name(format!("ingest-{name}"))
            .spawn(move || worker_loop(&worker_shared, rx, config, replay))
            .expect("spawn ingest worker");
        Arc::new(Computation {
            name,
            num_processes,
            max_cluster_size,
            dur_dir,
            mode: EngineMode::Single {
                sender: Mutex::new(Some(tx)),
                worker: Mutex::new(Some(handle)),
            },
            shared,
        })
    }

    /// Enqueue a batch for ingest. Blocks when the queue is full
    /// (backpressure); fails only once the computation is shut down.
    pub fn enqueue_events(&self, batch: Vec<Event>) -> Result<(), Closed> {
        match &self.mode {
            EngineMode::Single { sender, .. } => {
                let tx = lock(sender).clone().ok_or(Closed)?;
                tx.send(IngestCmd::Events(batch)).map_err(|_| Closed)
            }
            EngineMode::Sharded(rt) => rt.enqueue(batch).map_err(|()| Closed),
        }
    }

    /// Non-blocking enqueue for the readiness-driven front end: a poller
    /// thread must never park on a full ingest queue (that would stall
    /// every other connection it owns). On backpressure the batch comes
    /// back and the caller re-offers it after its readiness loop turns.
    pub fn try_enqueue_events(&self, batch: Vec<Event>) -> Result<(), TryEnqueue> {
        match &self.mode {
            EngineMode::Single { sender, .. } => {
                let tx = lock(sender).clone().ok_or(TryEnqueue::Closed)?;
                match tx.try_send(IngestCmd::Events(batch)) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Full(IngestCmd::Events(batch))) => {
                        Err(TryEnqueue::Backpressure(batch))
                    }
                    Err(TrySendError::Full(_)) => unreachable!("we only sent Events"),
                    Err(TrySendError::Disconnected(_)) => Err(TryEnqueue::Closed),
                }
            }
            EngineMode::Sharded(rt) => match rt.try_enqueue(batch) {
                Ok(()) => Ok(()),
                Err(Some(leftover)) => Err(TryEnqueue::Backpressure(leftover)),
                Err(None) => Err(TryEnqueue::Closed),
            },
        }
    }

    /// Group-commit tick: ask the worker(s) to sync a dirty WAL. Lossy by
    /// design — if the queue is full the worker is busy ingesting and the
    /// next tick (or flush barrier) covers durability; a full queue must
    /// never block the timer thread driving every computation's windows.
    pub fn nudge_wal_sync(&self) {
        match &self.mode {
            EngineMode::Single { sender, .. } => {
                if let Some(tx) = lock(sender).clone() {
                    let _ = tx.try_send(IngestCmd::SyncWal);
                }
            }
            EngineMode::Sharded(rt) => rt.nudge_wal(),
        }
    }

    /// Non-blocking diagnostic (safe to call from a watchdog).
    #[doc(hidden)]
    #[allow(dead_code)] // diagnostic: referenced from tests only
    pub(crate) fn debug_nofreeze(&self) -> String {
        match &self.mode {
            EngineMode::Single { .. } => "single mode".to_string(),
            EngineMode::Sharded(rt) => rt.debug_nofreeze(),
        }
    }

    /// How many ingest shards this computation runs right now (1 in single
    /// mode; the *active* count under autoscaling).
    pub fn num_shards(&self) -> usize {
        match &self.mode {
            EngineMode::Single { .. } => 1,
            EngineMode::Sharded(rt) => rt.active_shards(),
        }
    }

    /// The placement state behind the `QueryPlacement` wire verb: active
    /// shard count, pinning, rescale/steal totals, per-shard occupancy
    /// shares, and the process→shard routing table. Single mode reports the
    /// trivial one-shard placement.
    pub(crate) fn placement(&self) -> PlacementInfo {
        match &self.mode {
            EngineMode::Single { .. } => PlacementInfo {
                shards: 1,
                pinned: false,
                rescales: 0,
                steals: 0,
                occupancy_q16: vec![1 << 16],
                routing: vec![0; self.num_processes as usize],
            },
            EngineMode::Sharded(rt) => rt.placement_info(),
        }
    }

    /// The current published snapshot (cheap: an `Arc` clone under a read
    /// lock held for nanoseconds).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.snapshot.read())
    }

    /// This computation's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The query cache shared by this computation's connections.
    pub fn query_cache(&self) -> &Arc<SharedQueryCache> {
        &self.shared.query_cache
    }

    /// The retained-epoch ring backing `QueryAsOf`/`ReplayInterval`.
    pub fn retainer(&self) -> &Arc<EpochRetainer<Snapshot>> {
        &self.shared.retainer
    }

    /// Events covered by the last successful WAL sync (the replication
    /// commit watermark). 0 for non-durable computations.
    pub fn durable_offset(&self) -> u64 {
        self.shared.repl.durable.load(Ordering::Acquire)
    }

    /// Register a live replication subscriber: every batch the ingest
    /// worker syncs from now on is offered to `tx`. A subscriber whose
    /// channel fills up or disconnects is silently dropped.
    pub(crate) fn add_repl_subscriber(&self, tx: SyncSender<Arc<ReplBatch>>) {
        lock(&self.shared.repl.subscribers).push(tx);
    }

    /// The data directory this computation persists to, if durable.
    pub fn durability_dir(&self) -> Option<&std::path::Path> {
        self.dur_dir.as_deref()
    }

    /// The shared event store (for window queries). Single mode only — the
    /// sharded runtime writes a [`PartitionedStore`] instead; use the
    /// mode-agnostic [`process_window`](Self::process_window) and
    /// [`stored_len`](Self::stored_len) for queries.
    pub fn store(&self) -> &SharedStore {
        &self.shared.store
    }

    /// Mode-agnostic window query: the ids stored for process `p` with
    /// indices in `[from, to]`.
    pub fn process_window(&self, p: ProcessId, from: u32, to: u32) -> Vec<EventId> {
        match &self.shared.parts {
            Some(parts) => parts
                .process_window(p, from, to)
                .iter()
                .map(|r| r.event.id)
                .collect(),
            None => self
                .shared
                .store
                .read()
                .process_window(p, from, to)
                .iter()
                .map(|r| r.event.id)
                .collect(),
        }
    }

    /// Mode-agnostic store size (events stored exactly once).
    pub fn stored_len(&self) -> u64 {
        match &self.shared.parts {
            Some(parts) => parts.len(),
            None => self.shared.store.read().len() as u64,
        }
    }

    /// Barrier: wait until `expected` events are delivered *and* a snapshot
    /// covering them is published. Returns `(epoch, delivered)`.
    pub fn flush(&self, expected: u64, timeout: Duration) -> Result<(u64, u64), FlushError> {
        let deadline = Instant::now() + timeout;
        let shared = &self.shared;
        let mut g = lock(&shared.progress);
        while g.delivered < expected {
            let now = Instant::now();
            if now >= deadline {
                return Err(FlushError::Timeout {
                    delivered: g.delivered,
                });
            }
            let (g2, _) = shared
                .cond
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
        if g.snapshot_delivered < expected {
            drop(g);
            match &self.mode {
                EngineMode::Single { sender, .. } => {
                    // A publish may race in between; sending a redundant
                    // Publish is harmless (the worker skips no-op publishes).
                    if let Some(tx) = lock(sender).clone() {
                        tx.send(IngestCmd::Publish)
                            .map_err(|_| FlushError::Closed)?;
                    }
                }
                EngineMode::Sharded(rt) => {
                    // The barrier forces durable cuts itself (no worker to
                    // nudge); a failure here is a deadline miss.
                    rt.flush_cut(expected, deadline).map_err(|()| {
                        if rt.closed() {
                            FlushError::Closed
                        } else {
                            FlushError::Timeout {
                                delivered: lock(&shared.progress).delivered,
                            }
                        }
                    })?;
                }
            }
            g = lock(&shared.progress);
            while g.snapshot_delivered < expected {
                let now = Instant::now();
                if now >= deadline {
                    return Err(FlushError::Timeout {
                        delivered: g.delivered,
                    });
                }
                let (g2, _) = shared
                    .cond
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                g = g2;
            }
        }
        Ok((g.epoch, g.delivered))
    }

    /// Stop accepting, drain the queue, publish a final snapshot, and join
    /// the worker(s). Idempotent.
    pub fn shutdown(&self) {
        match &self.mode {
            EngineMode::Single { sender, worker } => {
                drop(lock(sender).take());
                if let Some(h) = lock(worker).take() {
                    let _ = h.join();
                }
            }
            EngineMode::Sharded(rt) => rt.shutdown(),
        }
    }

    /// Crash-stop for recovery testing: the worker exits at the next
    /// command boundary *without* the graceful final WAL sync, checkpoint,
    /// or snapshot — queued batches are discarded. On-disk state is left
    /// exactly as the group-commit discipline last wrote it, which is what
    /// restart-and-recover tests must cope with. Idempotent.
    pub fn kill(&self) {
        self.shared.killed.store(true, Ordering::Release);
        match &self.mode {
            EngineMode::Single { sender, worker } => {
                drop(lock(sender).take());
                if let Some(h) = lock(worker).take() {
                    let _ = h.join();
                }
            }
            EngineMode::Sharded(rt) => rt.kill(),
        }
    }
}

impl Drop for Computation {
    fn drop(&mut self) {
        // Release the worker(s) without joining (they drain and exit once
        // told); an explicit shutdown() already joined.
        match &self.mode {
            EngineMode::Single { sender, .. } => drop(lock(sender).take()),
            EngineMode::Sharded(rt) => rt.request_stop(),
        }
    }
}

/// Open a fresh WAL segment at `start`. A leftover segment with the same
/// start offset has already been fully consumed by the recovery scan (or is
/// empty), so it is replaced.
fn open_segment(
    dur: &DurabilityConfig,
    start: u64,
    fault_budget: &mut Option<u64>,
) -> io::Result<WalWriter<Box<dyn DurableSink + Send>>> {
    let path = dur.dir.join(wal::segment_name(start));
    let _ = std::fs::remove_file(&path);
    let sink: Box<dyn DurableSink + Send> = match *fault_budget {
        Some(budget) => Box::new(FailpointFs::create(&path, budget)?),
        None => Box::new(std::fs::File::create(&path)?),
    };
    WalWriter::from_sink(sink, start, dur.sync_window)
}

/// The single worker's engine under either strategy. The adaptive variant
/// *is* the offline [`AdaptiveEngine`], run in delivery order — which is
/// what makes a single-worker daemon's stamps bit-identical to an offline
/// re-run of its delivered prefix (the oracle `tests/adaptive_recluster.rs`
/// enforces).
enum WorkerEngine {
    Merge1st(Box<ClusterEngine<MergeOnFirst>>),
    Adaptive(Box<AdaptiveEngine>),
}

impl WorkerEngine {
    fn new(n: u32, strategy: StampStrategy) -> WorkerEngine {
        match strategy {
            StampStrategy::Merge1st { max_cluster_size } => WorkerEngine::Merge1st(Box::new(
                ClusterEngine::new(n, MergeOnFirst::new(max_cluster_size)),
            )),
            StampStrategy::Adaptive(params) => {
                WorkerEngine::Adaptive(Box::new(AdaptiveEngine::new(n, params)))
            }
        }
    }

    fn accept(&mut self, ev: Event) {
        match self {
            WorkerEngine::Merge1st(e) => e.accept(ev),
            WorkerEngine::Adaptive(e) => e.accept(ev),
        }
    }

    fn snapshot(&self) -> ClusterTimestamps {
        match self {
            WorkerEngine::Merge1st(e) => e.snapshot(),
            WorkerEngine::Adaptive(e) => e.snapshot(),
        }
    }

    fn num_migrations(&self) -> u64 {
        match self {
            WorkerEngine::Merge1st(_) => 0,
            WorkerEngine::Adaptive(e) => e.num_migrations() as u64,
        }
    }

    fn num_forced_full(&self) -> u64 {
        match self {
            WorkerEngine::Merge1st(_) => 0,
            WorkerEngine::Adaptive(e) => e.num_forced_full() as u64,
        }
    }
}

/// The ingest worker: reorder → engine → WAL → store, publishing epochs.
fn worker_loop(
    shared: &CompShared,
    rx: Receiver<IngestCmd>,
    config: ComputationConfig,
    replay: Vec<Event>,
) {
    let n = config.num_processes;
    let mut buf = ReorderBuffer::new(n);
    let mut engine = WorkerEngine::new(n, config.strategy);
    let mut ingest = shared
        .store
        .ingest_handle()
        .expect("the worker is the store's only writer");
    let mut log: Vec<Event> = Vec::new();
    let mut last_published: Option<u64> = None;

    // `forced_epoch` republishes a recovered retention mark under its
    // original epoch number (recovery replay); `None` is a live publish.
    let publish = |engine: &WorkerEngine,
                   log: &Vec<Event>,
                   last_published: &mut Option<u64>,
                   forced_epoch: Option<u64>| {
        let delivered = log.len() as u64;
        if *last_published == Some(delivered) {
            // Nothing new since the last epoch — but still wake waiters: a
            // recovery flush parks on this condvar *after* the last mark
            // republish already set `last_published` to the full prefix, and
            // this no-op publish is the only call left to wake it.
            shared.cond.notify_all();
            return;
        }
        let trace = Trace::from_delivery_order(config.name.clone(), n, log.clone())
            .expect("reorder buffer emits valid delivery orders");
        let cts = engine.snapshot();
        let mut g = lock(&shared.progress);
        g.epoch = forced_epoch.map_or(g.epoch + 1, |e| e.max(g.epoch + 1));
        g.snapshot_delivered = delivered;
        let epoch = g.epoch;
        drop(g);
        let snap = Arc::new(Snapshot {
            epoch,
            delivered,
            trace,
            cts,
        });
        shared
            .retainer
            .insert(epoch, delivered, snap.footprint(), Arc::clone(&snap));
        *shared.snapshot.write() = snap;
        shared
            .metrics
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
        *last_published = Some(delivered);
        // Persist the retention marks so retained history survives a
        // restart (best-effort: losing them costs epochs, never events).
        if let Some(dur) = &config.durability {
            let marks: Vec<(u64, u64)> = shared
                .retainer
                .list()
                .iter()
                .map(|i| (i.epoch, i.delivered))
                .collect();
            if let Err(e) = checkpoint::write_epoch_marks(&dur.dir, &marks) {
                eprintln!(
                    "[cts-daemon] {}: epoch marks write failed: {e}",
                    config.name
                );
            }
        }
        shared.cond.notify_all();
    };

    // Replay the recovered prefix through the same path live events take —
    // recovery *is* replay. Nothing here is WAL-appended: it is already on
    // disk (that's where it came from). Retention marks republish the
    // retained epochs at their original delivered offsets along the way, so
    // time-travel history survives the restart.
    if !replay.is_empty() {
        let marks: Vec<(u64, u64)> = config
            .durability
            .as_ref()
            .map(|d| checkpoint::load_epoch_marks(&d.dir).unwrap_or_default())
            .unwrap_or_default();
        let mut next_mark = 0;
        for ev in replay {
            match buf.offer(ev) {
                Ok(delivered) => {
                    for d in delivered {
                        engine.accept(d);
                        let _ = ingest.insert(d);
                        log.push(d);
                        while next_mark < marks.len() && marks[next_mark].1 == log.len() as u64 {
                            publish(&engine, &log, &mut last_published, Some(marks[next_mark].0));
                            next_mark += 1;
                        }
                    }
                }
                Err(reason) => {
                    eprintln!(
                        "[cts-daemon] {}: recovered event {} refused: {reason}",
                        config.name, ev.id
                    );
                }
            }
        }
        shared
            .metrics
            .events_ingested
            .store(buf.delivered_total(), Ordering::Relaxed);
        shared
            .metrics
            .drift_migrations
            .store(engine.num_migrations(), Ordering::Relaxed);
        shared
            .metrics
            .drift_forced_full
            .store(engine.num_forced_full(), Ordering::Relaxed);
        {
            let mut g = lock(&shared.progress);
            g.delivered = buf.delivered_total();
        }
        publish(&engine, &log, &mut last_published, None);
    }

    // Durability state: an open segment continuing from the recovered
    // frontier. A WAL that cannot be opened or written degrades the
    // computation to in-memory (loudly) rather than stopping ingest.
    let meta = config.durability.as_ref().map(|_| CompMeta {
        name: config.name.clone(),
        num_processes: n,
        max_cluster_size: config.max_cluster_size,
    });
    let mut fault_budget = config.durability.as_ref().and_then(|d| d.wal_byte_budget);
    let mut last_checkpoint = log.len() as u64;
    // Barriers of the current writer already folded into the shared
    // `wal_syncs` metric (per-writer counters restart at segment rotation).
    let mut wal_syncs_reported: u64 = 0;
    let mut wal = config.durability.as_ref().and_then(|dur| {
        match open_segment(dur, log.len() as u64, &mut fault_budget) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!(
                    "[cts-daemon] {}: cannot open WAL segment, running in-memory: {e}",
                    config.name
                );
                None
            }
        }
    });
    let mut fresh: Vec<Event> = Vec::new();

    // Events appended to the WAL but not yet covered by a durability
    // barrier. The moment a sync succeeds they are *committed*: the
    // watermark advances and the run is broadcast to replication
    // subscribers (only synced events are ever streamed, so a follower
    // never applies state a leader crash could lose).
    let mut pending_first: u64 = 0;
    let mut pending: Vec<Event> = Vec::new();
    let broadcast = |pending_first: &mut u64, pending: &mut Vec<Event>, durable: u64| {
        shared.repl.durable.store(durable, Ordering::Release);
        if pending.is_empty() {
            return;
        }
        let batch = Arc::new(ReplBatch {
            first_offset: *pending_first,
            commit: durable,
            events: std::mem::take(pending),
        });
        // A full or closed channel drops the subscriber: its streamer sees
        // the disconnect and the follower resubscribes from disk.
        lock(&shared.repl.subscribers).retain(|tx| tx.try_send(Arc::clone(&batch)).is_ok());
    };

    for cmd in rx.iter() {
        if shared.killed.load(Ordering::Acquire) {
            return; // crash-stop: no final sync, checkpoint, or publish
        }
        match cmd {
            IngestCmd::Events(batch) => {
                fresh.clear();
                for ev in batch {
                    let t0 = Instant::now();
                    match buf.offer(ev) {
                        Ok(delivered) => {
                            for d in delivered {
                                engine.accept(d);
                                if let Err(e) = ingest.insert(d) {
                                    // Causal delivery makes this unreachable;
                                    // never kill the worker over a store
                                    // refusal.
                                    eprintln!(
                                        "[cts-daemon] {}: store refused {}: {e}",
                                        config.name, d.id
                                    );
                                }
                                log.push(d);
                                fresh.push(d);
                            }
                        }
                        Err(reason) => {
                            eprintln!(
                                "[cts-daemon] {}: dropping event {}: {reason}",
                                config.name, ev.id
                            );
                        }
                    }
                    shared
                        .metrics
                        .ingest_ns
                        .record(t0.elapsed().as_nanos() as u64);
                }
                // Write-ahead log the newly delivered suffix. Group commit
                // is timer-driven: the daemon's sync timer (timerfd on the
                // epoll backend) sends SyncWal each window, so the append
                // path syncs inline only under a zero window (= fsync every
                // batch, the crash-test configuration).
                if !fresh.is_empty() {
                    if let Some(w) = wal.as_mut() {
                        let r = w.append(&fresh).and_then(|()| {
                            if config
                                .durability
                                .as_ref()
                                .is_some_and(|d| d.sync_window.is_zero())
                            {
                                w.sync()
                            } else {
                                Ok(())
                            }
                        });
                        match r {
                            Ok(()) => {
                                if pending.is_empty() {
                                    pending_first = log.len() as u64 - fresh.len() as u64 + 1;
                                }
                                pending.extend_from_slice(&fresh);
                                if config
                                    .durability
                                    .as_ref()
                                    .is_some_and(|d| d.sync_window.is_zero())
                                {
                                    // The inline sync above committed them.
                                    broadcast(&mut pending_first, &mut pending, log.len() as u64);
                                }
                                let s = w.syncs();
                                shared.metrics.wal_syncs.fetch_add(
                                    s.saturating_sub(wal_syncs_reported),
                                    Ordering::Relaxed,
                                );
                                wal_syncs_reported = s;
                            }
                            Err(e) => {
                                eprintln!(
                                    "[cts-daemon] {}: WAL write failed, durability degraded: {e}",
                                    config.name
                                );
                                wal = None;
                            }
                        }
                    }
                }
                shared
                    .metrics
                    .events_ingested
                    .store(buf.delivered_total(), Ordering::Relaxed);
                shared
                    .metrics
                    .duplicates_dropped
                    .store(buf.duplicates(), Ordering::Relaxed);
                shared
                    .metrics
                    .reorder_depth
                    .store(buf.depth() as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .reorder_peak
                    .store(buf.peak_depth() as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .drift_migrations
                    .store(engine.num_migrations(), Ordering::Relaxed);
                shared
                    .metrics
                    .drift_forced_full
                    .store(engine.num_forced_full(), Ordering::Relaxed);
                {
                    let mut g = lock(&shared.progress);
                    g.delivered = buf.delivered_total();
                }
                shared.cond.notify_all();
                let since = buf.delivered_total() - last_published.unwrap_or(0);
                if since >= config.epoch_every {
                    publish(&engine, &log, &mut last_published, None);
                }
                // Checkpoint cadence: once the WAL is synced, persist the
                // delivered prefix and rotate to a fresh segment (the old
                // one, now fully covered, is retired by write_checkpoint).
                if let (Some(dur), Some(m)) = (&config.durability, &meta) {
                    let delivered = log.len() as u64;
                    if wal.is_some()
                        && dur.checkpoint_every > 0
                        && delivered - last_checkpoint >= dur.checkpoint_every
                    {
                        match wal.as_mut().expect("checked above").sync() {
                            Ok(()) => {
                                broadcast(&mut pending_first, &mut pending, delivered);
                                // WAL segments behind the oldest retained
                                // epoch stay on disk even though the
                                // checkpoint covers them.
                                let floor = shared.retainer.oldest_delivered().unwrap_or(delivered);
                                match checkpoint::write_checkpoint_with_floor(
                                    &dur.dir, m, &log, floor,
                                ) {
                                    Ok(()) => {
                                        last_checkpoint = delivered;
                                        let old = wal.take().expect("checked above");
                                        if let Some(b) = fault_budget.as_mut() {
                                            *b = b.saturating_sub(old.bytes_written());
                                        }
                                        // Fold the retiring writer's barriers in
                                        // and restart the per-writer baseline.
                                        shared.metrics.wal_syncs.fetch_add(
                                            old.syncs().saturating_sub(wal_syncs_reported),
                                            Ordering::Relaxed,
                                        );
                                        wal_syncs_reported = 0;
                                        drop(old);
                                        match open_segment(dur, delivered, &mut fault_budget) {
                                            Ok(w) => wal = Some(w),
                                            Err(e) => eprintln!(
                                                "[cts-daemon] {}: WAL rotation failed, \
                                             durability degraded: {e}",
                                                config.name
                                            ),
                                        }
                                    }
                                    Err(e) => eprintln!(
                                        "[cts-daemon] {}: checkpoint failed: {e}",
                                        config.name
                                    ),
                                }
                            }
                            Err(e) => {
                                eprintln!(
                                    "[cts-daemon] {}: WAL sync failed, durability \
                                     degraded: {e}",
                                    config.name
                                );
                                wal = None;
                            }
                        }
                    }
                }
            }
            IngestCmd::Publish => {
                // A flush barrier is also the durability barrier: everything
                // delivered reaches stable storage before the barrier lifts.
                if let Some(w) = wal.as_mut() {
                    match w.sync() {
                        Ok(()) => {
                            broadcast(&mut pending_first, &mut pending, log.len() as u64);
                            let s = w.syncs();
                            shared
                                .metrics
                                .wal_syncs
                                .fetch_add(s.saturating_sub(wal_syncs_reported), Ordering::Relaxed);
                            wal_syncs_reported = s;
                        }
                        Err(e) => {
                            eprintln!(
                                "[cts-daemon] {}: WAL sync failed, durability degraded: {e}",
                                config.name
                            );
                            wal = None;
                        }
                    }
                }
                publish(&engine, &log, &mut last_published, None)
            }
            IngestCmd::SyncWal => {
                // Timer tick: close the group-commit window. sync() is a
                // no-op when nothing was appended since the last barrier.
                if let Some(w) = wal.as_mut() {
                    match w.sync() {
                        Ok(()) => {
                            broadcast(&mut pending_first, &mut pending, log.len() as u64);
                            let s = w.syncs();
                            shared
                                .metrics
                                .wal_syncs
                                .fetch_add(s.saturating_sub(wal_syncs_reported), Ordering::Relaxed);
                            wal_syncs_reported = s;
                        }
                        Err(e) => {
                            eprintln!(
                                "[cts-daemon] {}: WAL sync failed, durability degraded: {e}",
                                config.name
                            );
                            wal = None;
                        }
                    }
                }
            }
        }
    }
    if shared.killed.load(Ordering::Acquire) {
        return; // crash-stop requested while the queue was already empty
    }
    // All senders gone: final snapshot so late readers see everything, and
    // a durable final state (synced WAL + checkpoint) so the next start
    // recovers instantly.
    publish(&engine, &log, &mut last_published, None);
    if let Some(w) = wal.as_mut() {
        match w.sync() {
            Ok(()) => broadcast(&mut pending_first, &mut pending, log.len() as u64),
            Err(e) => {
                eprintln!("[cts-daemon] {}: final WAL sync failed: {e}", config.name);
                wal = None;
            }
        }
    }
    if let (Some(dur), Some(m)) = (&config.durability, &meta) {
        let delivered = log.len() as u64;
        if wal.is_some() && dur.checkpoint_every > 0 && delivered > last_checkpoint {
            let floor = shared.retainer.oldest_delivered().unwrap_or(delivered);
            if let Err(e) = checkpoint::write_checkpoint_with_floor(&dur.dir, m, &log, floor) {
                eprintln!("[cts-daemon] {}: final checkpoint failed: {e}", config.name);
            }
        }
    }
}

/// Poison-tolerant mutex lock (a panicked ingest worker must not wedge
/// every query thread behind a poisoned lock).
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::linearize::relinearize;
    use cts_store::queries::{greatest_concurrent, ClusterBackend};
    use cts_workloads::spmd::Stencil1D;
    use cts_workloads::Workload;

    fn config(name: &str, n: u32) -> ComputationConfig {
        ComputationConfig {
            name: name.to_string(),
            num_processes: n,
            max_cluster_size: 4,
            strategy: StampStrategy::Merge1st {
                max_cluster_size: 4,
            },
            queue_capacity: 8,
            epoch_every: 64,
            shards: 1,
            auto_scale: false,
            balance: false,
            pin_cores: false,
            placement: None,
            durability: None,
            query_cache_capacity: 0,
            retain_epochs: 0,
            retain_bytes: 0,
        }
    }

    #[test]
    fn flush_then_queries_match_offline_engine() {
        let t = Stencil1D { procs: 8, iters: 6 }.generate(7);
        let comp = Computation::spawn(config("pipeline-test", t.num_processes()));
        // Stream a shuffled interleaving in small batches.
        let shuffled = relinearize(&t, 42);
        for chunk in shuffled.events().chunks(37) {
            comp.enqueue_events(chunk.to_vec()).unwrap();
        }
        let (epoch, delivered) = comp
            .flush(t.num_events() as u64, Duration::from_secs(30))
            .unwrap();
        assert!(epoch >= 1);
        assert_eq!(delivered, t.num_events() as u64);

        let snap = comp.snapshot();
        assert_eq!(snap.trace.num_events(), t.num_events());
        let offline = ClusterEngine::run(&t, MergeOnFirst::new(4));
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    snap.cts.precedes(&snap.trace, e, f),
                    offline.precedes(&t, e, f),
                    "{e} -> {f}"
                );
            }
            assert_eq!(
                greatest_concurrent(&mut ClusterBackend(&snap.cts), &snap.trace, e),
                greatest_concurrent(&mut ClusterBackend(&offline), &t, e),
                "gc({e})"
            );
        }
        // The store saw every event exactly once.
        assert_eq!(comp.store().read().len(), t.num_events());
        comp.shutdown();
    }

    #[test]
    fn sharded_flush_then_queries_match_offline_engine() {
        let t = Stencil1D { procs: 8, iters: 6 }.generate(7);
        let mut cfg = config("sharded-pipeline-test", t.num_processes());
        cfg.shards = 4;
        let comp = Computation::spawn(cfg);
        assert_eq!(comp.num_shards(), 4);
        let shuffled = relinearize(&t, 42);
        for chunk in shuffled.events().chunks(37) {
            comp.enqueue_events(chunk.to_vec()).unwrap();
        }
        let (epoch, delivered) = comp
            .flush(t.num_events() as u64, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("flush failed: {e:?}\n{}", comp.debug_nofreeze()));
        assert!(epoch >= 1);
        assert_eq!(delivered, t.num_events() as u64);

        let snap = comp.snapshot();
        assert_eq!(snap.trace.num_events(), t.num_events());
        let offline = ClusterEngine::run(&t, MergeOnFirst::new(4));
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    snap.cts.precedes(&snap.trace, e, f),
                    offline.precedes(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
        assert_eq!(comp.stored_len(), t.num_events() as u64);
        comp.shutdown();
    }

    #[test]
    fn flush_times_out_on_incomplete_stream() {
        let t = Stencil1D { procs: 4, iters: 2 }.generate(3);
        let comp = Computation::spawn(config("timeout-test", t.num_processes()));
        // Withhold the last event.
        let events = &t.events()[..t.num_events() - 1];
        comp.enqueue_events(events.to_vec()).unwrap();
        let err = comp
            .flush(t.num_events() as u64, Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(err, FlushError::Timeout { delivered } if delivered > 0));
        comp.shutdown();
    }

    #[test]
    fn shutdown_publishes_final_snapshot() {
        let t = Stencil1D { procs: 4, iters: 3 }.generate(11);
        let comp = Computation::spawn(config("final-snap", t.num_processes()));
        comp.enqueue_events(t.events().to_vec()).unwrap();
        comp.shutdown();
        let snap = comp.snapshot();
        assert_eq!(snap.delivered, t.num_events() as u64);
        assert!(comp.enqueue_events(Vec::new()).is_err());
        // Flush after shutdown: already satisfied, no waiting needed.
        let (_, delivered) = comp
            .flush(t.num_events() as u64, Duration::from_secs(1))
            .unwrap();
        assert_eq!(delivered, t.num_events() as u64);
    }
}
