//! A blocking, typed client for the daemon's wire protocol — what a
//! visualization front end (or the load generator) links against.

use crate::wire::{self, read_msg, write_msg, Msg, StatsSnapshot};
use cts_model::{Event, EventId};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// One connection to the daemon, carrying at most one session at a time
/// (re-`hello` rebinds the session to another computation).
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

/// Typed form of [`Msg::ClusterMapResult`]: the head snapshot's partition
/// (one cluster representative per process) and drift counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterMap {
    pub epoch: u64,
    pub delivered: u64,
    pub cluster_receives: u64,
    pub merges: u64,
    pub migrations: u64,
    pub forced_full: u64,
    pub partition: Vec<u32>,
}

/// Typed form of [`Msg::PlacementResult`]: the computation's live shard
/// placement — active shard count, per-shard occupancy shares (Q16), the
/// rescale/steal counters, and the process → shard routing table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pub epoch: u64,
    pub delivered: u64,
    pub shards: u64,
    pub pinned: bool,
    pub rescales: u64,
    pub steals: u64,
    pub occupancy_q16: Vec<u64>,
    pub routing: Vec<u32>,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
        })
    }

    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        write_msg(&mut self.writer, msg)?;
        self.writer.flush()
    }

    /// Send a request and read its (single) reply.
    fn call(&mut self, msg: &Msg) -> io::Result<Msg> {
        self.send(msg)?;
        read_msg(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    fn protocol_error(got: &Msg) -> io::Error {
        let text = match got {
            Msg::Error { code, message } => format!("daemon error {code}: {message}"),
            other => format!("unexpected reply: {other:?}"),
        };
        io::Error::new(io::ErrorKind::InvalidData, text)
    }

    /// Bind this connection to a computation. Returns `(session_id,
    /// existed_already)`.
    pub fn hello(
        &mut self,
        computation: &str,
        num_processes: u32,
        max_cluster_size: u32,
    ) -> io::Result<(u64, bool)> {
        match self.call(&Msg::Hello {
            computation: computation.to_string(),
            num_processes,
            max_cluster_size,
        })? {
            Msg::HelloAck { session, existing } => Ok((session, existing)),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Stream events, `batch` per frame, without waiting for any reply
    /// (ingest is fire-and-forget; use [`flush`](Self::flush) as the
    /// barrier).
    pub fn stream_events(&mut self, events: &[Event], batch: usize) -> io::Result<()> {
        for chunk in events.chunks(batch.max(1)) {
            write_msg(&mut self.writer, &Msg::Events(chunk.to_vec()))?;
        }
        self.writer.flush()
    }

    /// Barrier: wait until the daemon has delivered `expected_total` events
    /// of this computation and published a covering snapshot. Returns
    /// `(epoch, delivered)`.
    pub fn flush(&mut self, expected_total: u64) -> io::Result<(u64, u64)> {
        match self.call(&Msg::Flush { expected_total })? {
            Msg::FlushAck { epoch, delivered } => Ok((epoch, delivered)),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Does `e` happen before `f`?
    pub fn precedes(&mut self, e: EventId, f: EventId) -> io::Result<bool> {
        match self.call(&Msg::QueryPrecedes { e, f })? {
            Msg::PrecedesResult { precedes, .. } => Ok(precedes),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Greatest event of every process concurrent with `e`.
    pub fn greatest_concurrent(&mut self, e: EventId) -> io::Result<Vec<Option<EventId>>> {
        match self.call(&Msg::QueryGreatestConcurrent { e })? {
            Msg::GcResult { slots, .. } => Ok(slots),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Batched precedence: one verdict per pair in one round trip; `None`
    /// marks a pair with an event unknown at the answering epoch.
    pub fn precedes_batch(
        &mut self,
        pairs: &[(EventId, EventId)],
    ) -> io::Result<Vec<Option<bool>>> {
        match self.call(&Msg::QueryPrecedesBatch {
            pairs: pairs.to_vec(),
        })? {
            Msg::PrecedesBatchResult { verdicts, .. } => Ok(verdicts),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Batched greatest-concurrent: one slot vector per event in one round
    /// trip; `None` marks an event unknown at the answering epoch.
    pub fn gc_batch(
        &mut self,
        events: &[EventId],
    ) -> io::Result<Vec<Option<Vec<Option<EventId>>>>> {
        match self.call(&Msg::QueryGcBatch {
            events: events.to_vec(),
        })? {
            Msg::GcBatchResult { results, .. } => Ok(results),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Event ids of process `p` with indices in `[from, to)`. Iterates the
    /// server's continuation cursor transparently, so callers see the whole
    /// range however the server paginates it.
    pub fn window(&mut self, process: u32, from: u32, to: u32) -> io::Result<Vec<EventId>> {
        self.window_paged(process, from, to, 0).map(|(ids, _)| ids)
    }

    /// As [`window`](Self::window) with an explicit per-reply page size
    /// (`0` = server default). Returns the ids and the number of pages the
    /// scan took.
    pub fn window_paged(
        &mut self,
        process: u32,
        from: u32,
        to: u32,
        page: u32,
    ) -> io::Result<(Vec<EventId>, u32)> {
        let mut all = Vec::new();
        let mut cursor = from;
        let mut pages = 0u32;
        loop {
            let (ids, next) = self.window_page(process, cursor, to, page)?;
            all.extend(ids);
            pages += 1;
            if next == 0 {
                return Ok((all, pages));
            }
            cursor = next;
        }
    }

    /// One page of a window scan: the ids plus the raw continuation cursor
    /// (`0` = range complete). For callers that interleave paging with
    /// other work — [`window_paged`](Self::window_paged) drives the loop.
    pub fn window_page(
        &mut self,
        process: u32,
        from: u32,
        to: u32,
        limit: u32,
    ) -> io::Result<(Vec<EventId>, u32)> {
        match self.call(&Msg::QueryWindow {
            process,
            from,
            to,
            limit,
        })? {
            Msg::WindowResult { ids, next } => Ok((ids, next)),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Does `e` happen before `f`, as of retained epoch `epoch`? Requires a
    /// prior [`Client::proto_hello`] at level >= 3; a retired epoch fails
    /// with a `code::EPOCH_RETIRED` daemon error.
    pub fn asof_precedes(&mut self, epoch: u64, e: EventId, f: EventId) -> io::Result<bool> {
        match self.call(&Msg::QueryAsOfPrecedes { epoch, e, f })? {
            Msg::PrecedesResult { precedes, .. } => Ok(precedes),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Greatest-concurrent vector as of retained epoch `epoch` (level 3).
    pub fn asof_greatest_concurrent(
        &mut self,
        epoch: u64,
        e: EventId,
    ) -> io::Result<Vec<Option<EventId>>> {
        match self.call(&Msg::QueryAsOfGc { epoch, e })? {
            Msg::GcResult { slots, .. } => Ok(slots),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Window scan as of retained epoch `epoch` (level 3), driving the
    /// continuation cursor transparently like [`Client::window`].
    pub fn asof_window(
        &mut self,
        epoch: u64,
        process: u32,
        from: u32,
        to: u32,
    ) -> io::Result<Vec<EventId>> {
        let mut all = Vec::new();
        let mut cursor = from;
        loop {
            match self.call(&Msg::QueryAsOfWindow {
                epoch,
                process,
                from: cursor,
                to,
                limit: 0,
            })? {
                Msg::WindowResult { ids, next } => {
                    all.extend(ids);
                    if next == 0 {
                        return Ok(all);
                    }
                    cursor = next;
                }
                other => return Err(Self::protocol_error(&other)),
            }
        }
    }

    /// The `(epoch, delivered)` rows still retained for time travel, oldest
    /// first (level 3).
    pub fn list_epochs(&mut self) -> io::Result<Vec<(u64, u64)>> {
        match self.call(&Msg::ListEpochs)? {
            Msg::EpochList { epochs } => Ok(epochs),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// One chunk of an interval replay: events from 1-based delivery offset
    /// `cursor` (0 = start of the interval) and the next cursor (0 = done).
    pub fn replay_page(
        &mut self,
        from_epoch: u64,
        to_epoch: u64,
        cursor: u64,
        limit: u32,
    ) -> io::Result<(u64, Vec<Event>, u64)> {
        match self.call(&Msg::ReplayInterval {
            from_epoch,
            to_epoch,
            cursor,
            limit,
        })? {
            Msg::ReplayChunk {
                first_offset,
                events,
                next,
            } => Ok((first_offset, events, next)),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// The full delivered prefix between two retained epochs, in delivery
    /// order, driving chunk resumption transparently (level 3).
    /// `from_epoch == 0` replays from the beginning of history.
    pub fn replay_interval(&mut self, from_epoch: u64, to_epoch: u64) -> io::Result<Vec<Event>> {
        let mut all = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (_, events, next) = self.replay_page(from_epoch, to_epoch, cursor, 0)?;
            all.extend(events);
            if next == 0 {
                return Ok(all);
            }
            cursor = next;
        }
    }

    /// The head snapshot's cluster map (level 4): `partition[p]` is the
    /// representative of process `p`'s cluster, plus the clustering and
    /// drift counters. Two processes are co-clustered iff their
    /// representatives are equal.
    pub fn cluster_map(&mut self) -> io::Result<ClusterMap> {
        match self.call(&Msg::QueryClusterMap)? {
            Msg::ClusterMapResult {
                epoch,
                delivered,
                cluster_receives,
                merges,
                migrations,
                forced_full,
                partition,
            } => Ok(ClusterMap {
                epoch,
                delivered,
                cluster_receives,
                merges,
                migrations,
                forced_full,
                partition,
            }),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// The computation's live shard placement (level 5): active shard
    /// count, occupancy shares, rescale/steal counters, and routing.
    pub fn placement(&mut self) -> io::Result<Placement> {
        match self.call(&Msg::QueryPlacement)? {
            Msg::PlacementResult {
                epoch,
                delivered,
                shards,
                pinned,
                rescales,
                steals,
                occupancy_q16,
                routing,
            } => Ok(Placement {
                epoch,
                delivered,
                shards,
                pinned,
                rescales,
                steals,
                occupancy_q16,
                routing,
            }),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// The computation's metrics counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(&Msg::Stats)? {
            Msg::StatsResult(s) => Ok(s),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Negotiate the message-set protocol and WAL-format levels (PR 7).
    /// Returns `(protocol, wal)` — the minimum of ours and the server's.
    pub fn proto_hello(&mut self) -> io::Result<(u16, u16)> {
        let msg = Msg::ProtoHello {
            protocol_max: wire::PROTOCOL,
            wal_max: wire::WAL_FORMAT,
        };
        match self.call(&msg)? {
            Msg::ProtoHelloAck { protocol, wal } => Ok((protocol, wal)),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// List the computations the daemon is serving, with their delivered
    /// watermarks. Requires a prior [`Client::proto_hello`] at level >= 2.
    pub fn list_computations(&mut self) -> io::Result<Vec<wire::CompInfo>> {
        match self.call(&Msg::ListComputations)? {
            Msg::ComputationList { comps } => Ok(comps),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Ask the daemon to shut down gracefully; waits for the ack.
    pub fn shutdown_daemon(&mut self) -> io::Result<()> {
        match self.call(&Msg::Shutdown)? {
            Msg::ShutdownAck => Ok(()),
            other => Err(Self::protocol_error(&other)),
        }
    }

    /// Close the session politely.
    pub fn goodbye(mut self) -> io::Result<()> {
        self.send(&Msg::Goodbye)
    }

    /// Expose the raw wire version for diagnostics.
    pub fn protocol_version() -> u8 {
        wire::VERSION
    }
}
