//! The load generator: replays workload suites as concurrent client
//! streams and differentially checks the daemon's answers against the
//! offline batch engine.
//!
//! For every computation the generator:
//!
//! 1. splits the trace's delivery order round-robin into several *slices*
//!    (emulating independently-forwarding monitored processes), window-
//!    shuffles each slice deterministically, and injects duplicates;
//! 2. streams the slices from a pool of concurrent connections;
//! 3. issues a `Flush` barrier for the full event count;
//! 4. replays sampled precedence pairs, greatest-concurrent probes, and a
//!    window scroll against the daemon, comparing every answer with a local
//!    [`ClusterEngine`] batch run over the original in-order trace.
//!
//! Any divergence is a *mismatch* — by the delivery-order-invariance
//! property, the correct count is exactly zero. The report doubles as the
//! ingest/query benchmark behind `results/BENCH_ingest.json`.

use crate::client::Client;
use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_model::{Event, EventId};
use cts_store::queries::{greatest_concurrent, ClusterBackend};
use cts_util::bench::BenchEntry;
use cts_util::hist::AtomicHistogram;
use cts_util::prng::{ChaCha8Rng, Rng};
use cts_workloads::suite::SuiteEntry;
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    pub addr: SocketAddr,
    /// Concurrent client connections during ingest (also bounds the query
    /// pool).
    pub connections: usize,
    /// Seed for the deterministic shuffles and duplicate placement.
    pub seed: u64,
    pub max_cluster_size: u32,
    /// Slices each computation's stream is split into.
    pub slices_per_comp: usize,
    /// Window size of the per-slice shuffle (events may move at most a
    /// window away from their in-order position).
    pub shuffle_window: usize,
    /// Re-send every `duplicate_every`-th event (0 disables).
    pub duplicate_every: usize,
    /// Events per wire frame.
    pub batch: usize,
    /// Sampled precedence pairs per computation.
    pub precedence_queries: usize,
    /// Greatest-concurrent probes per computation.
    pub gc_probes: usize,
    /// Page size for the window-scroll check (0 = server default). Small
    /// values force the continuation cursor to actually continue.
    pub window_page: u32,
    /// Read-only follower daemons replicating `addr` (PR 7). When
    /// non-empty, the query phase also fans the differential checks
    /// across the fleet after waiting for every follower to converge.
    pub follower_addrs: Vec<SocketAddr>,
    /// Historical epochs per computation to time-travel-check (PR 8):
    /// each sampled retained epoch is replayed back over
    /// `ReplayInterval`, re-timestamped offline, and the `QueryAsOf*`
    /// answers compared against that prefix engine. 0 disables.
    pub asof_epochs: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            connections: 8,
            seed: 1,
            max_cluster_size: 8,
            slices_per_comp: 2,
            shuffle_window: 64,
            duplicate_every: 97,
            batch: 512,
            precedence_queries: 200,
            gc_probes: 3,
            window_page: 5,
            follower_addrs: Vec::new(),
            asof_epochs: 0,
        }
    }
}

/// Outcome of a load run.
#[derive(Debug)]
pub struct LoadReport {
    pub computations: usize,
    pub total_events: u64,
    pub duplicates_sent: u64,
    pub ingest_wall_ns: u64,
    pub query_wall_ns: u64,
    pub precedence_checked: u64,
    pub gc_checked: u64,
    pub windows_checked: u64,
    /// Items re-issued through the batched wire messages (warm path).
    pub batch_checked: u64,
    /// Time-travel checks: `QueryAsOf*` answers at retained historical
    /// epochs compared against an offline engine over the replayed prefix.
    pub asof_checked: u64,
    /// Differential failures against the offline engine. Must be zero.
    pub mismatches: u64,
    pub rtt_min_ns: u64,
    pub rtt_p50_ns: u64,
    pub rtt_p95_ns: u64,
    pub rtt_mean_ns: u64,
    pub rtt_samples: u64,
}

impl LoadReport {
    /// Events ingested per second of ingest wall time.
    pub fn ingest_events_per_sec(&self) -> f64 {
        if self.ingest_wall_ns == 0 {
            return 0.0;
        }
        self.total_events as f64 / (self.ingest_wall_ns as f64 / 1e9)
    }

    /// Ingest-side nanoseconds per event (wall clock over the whole pool).
    pub fn ns_per_event(&self) -> f64 {
        if self.total_events == 0 {
            return 0.0;
        }
        self.ingest_wall_ns as f64 / self.total_events as f64
    }

    /// The report as `cts-bench/1` entries for the perf trajectory.
    pub fn bench_entries(&self) -> Vec<BenchEntry> {
        let ns_per_event = self.ns_per_event();
        vec![
            BenchEntry {
                group: "daemon_ingest".into(),
                name: "suite_ns_per_event".into(),
                samples: 1,
                iters_per_sample: self.total_events,
                min_ns: ns_per_event,
                median_ns: ns_per_event,
                p95_ns: ns_per_event,
                mean_ns: ns_per_event,
            },
            BenchEntry {
                group: "daemon_query".into(),
                name: "precedes_rtt".into(),
                samples: self.rtt_samples as usize,
                iters_per_sample: 1,
                min_ns: self.rtt_min_ns as f64,
                median_ns: self.rtt_p50_ns as f64,
                p95_ns: self.rtt_p95_ns as f64,
                mean_ns: self.rtt_mean_ns as f64,
            },
        ]
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        format!(
            "computations      {}\n\
             events streamed   {} (+{} duplicates)\n\
             ingest wall       {:.3} s  ({:.0} events/s, {:.0} ns/event)\n\
             query wall        {:.3} s\n\
             checks            {} precedence, {} greatest-concurrent, {} windows\n\
             batch re-issues   {} items (warm cache, one frame per computation)\n\
             as-of checks      {} (time-travel, historical epochs)\n\
             query RTT         p50 {} ns, p95 {} ns (n = {})\n\
             mismatches        {}",
            self.computations,
            self.total_events,
            self.duplicates_sent,
            self.ingest_wall_ns as f64 / 1e9,
            self.ingest_events_per_sec(),
            self.ns_per_event(),
            self.query_wall_ns as f64 / 1e9,
            self.precedence_checked,
            self.gc_checked,
            self.windows_checked,
            self.batch_checked,
            self.asof_checked,
            self.rtt_p50_ns,
            self.rtt_p95_ns,
            self.rtt_samples,
            self.mismatches,
        )
    }
}

/// The two widest multi-process computations in the workload corpus: the
/// fixtures for the shard-ingest scaling sweep (`shard_ingest/*` bench
/// ids). 128- and 288-process traces with strong group locality plus a
/// cross-group traffic floor — the regime the sharded ingest path is for.
pub fn widest_computations() -> Vec<(&'static str, cts_model::Trace)> {
    use cts_workloads::spmd::BlockedStencil1D;
    use cts_workloads::web::ShardedWebServer;
    use cts_workloads::Workload;
    vec![
        (
            "blocked_stencil1d_128",
            BlockedStencil1D {
                procs: 128,
                iters: 6,
                block: 8,
            }
            .generate(3),
        ),
        (
            "sharded_web_288",
            ShardedWebServer {
                shards: 24,
                clients_per_shard: 6,
                workers_per_shard: 4,
                requests: 1100,
                affinity: 0.85,
                redirect: 0.25,
            }
            .generate(24),
        ),
    ]
}

/// Deliver `arrivals` (a valid delivery order of `t`) through an
/// in-process computation running `shards` ingest shards, from first
/// enqueue to flush completion. Returns the wall nanoseconds.
pub fn ingest_trace_wall_ns(
    label: &str,
    t: &cts_model::Trace,
    arrivals: &[Event],
    shards: u32,
) -> u64 {
    ingest_trace_wall_ns_placed(label, t, arrivals, shards, false, false)
}

/// [`ingest_trace_wall_ns`] with the placement knobs exposed: `auto`
/// enables live shard autoscaling, `pin` pins workers to topology-chosen
/// cores.
pub fn ingest_trace_wall_ns_placed(
    label: &str,
    t: &cts_model::Trace,
    arrivals: &[Event],
    shards: u32,
    auto: bool,
    pin: bool,
) -> u64 {
    let comp = crate::pipeline::Computation::spawn(crate::pipeline::ComputationConfig {
        name: format!("bench-{label}-s{shards}"),
        num_processes: t.num_processes(),
        max_cluster_size: 8,
        strategy: crate::shard::StampStrategy::Merge1st {
            max_cluster_size: 8,
        },
        queue_capacity: 64,
        epoch_every: 4096,
        shards,
        auto_scale: auto,
        balance: false,
        pin_cores: pin,
        placement: None,
        durability: None,
        query_cache_capacity: 0,
        retain_epochs: 0,
        retain_bytes: 0,
    });
    let start = Instant::now();
    for chunk in arrivals.chunks(512) {
        comp.enqueue_events(chunk.to_vec())
            .expect("bench ingest enqueue");
    }
    comp.flush(arrivals.len() as u64, std::time::Duration::from_secs(120))
        .expect("bench ingest flush");
    let ns = start.elapsed().as_nanos() as u64;
    comp.shutdown();
    ns
}

/// `shard_ingest/<label>_s<k>` entries: whole-delivery wall time of each
/// widest computation at each shard count, best of `rounds` runs. The 4-
/// vs-1-shard ratio of these entries is the ingest-scaling claim
/// `scripts/bench_gate.py --require-speedup` gates on.
pub fn shard_sweep_entries(shard_counts: &[u32], rounds: usize) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for (label, t) in widest_computations() {
        let arrivals = cts_model::linearize::relinearize(&t, 7);
        for &s in shard_counts {
            let mut runs: Vec<u64> = (0..rounds.max(1))
                .map(|_| ingest_trace_wall_ns(label, &t, arrivals.events(), s))
                .collect();
            runs.sort_unstable();
            out.push(BenchEntry {
                group: "shard_ingest".into(),
                name: format!("{label}_s{s}"),
                samples: runs.len(),
                iters_per_sample: 1,
                min_ns: runs[0] as f64,
                median_ns: runs[runs.len() / 2] as f64,
                p95_ns: *runs.last().unwrap() as f64,
                mean_ns: runs.iter().sum::<u64>() as f64 / runs.len() as f64,
            });
        }
    }
    out
}

/// Build one slice of a computation's stream: round-robin split, window
/// shuffle, duplicate injection. Deterministic in `(seed, comp, slice)`.
pub fn build_slice(
    events: &[Event],
    slice: usize,
    cfg: &LoadConfig,
    comp_index: usize,
) -> (Vec<Event>, u64) {
    let mut out: Vec<Event> = events
        .iter()
        .enumerate()
        .filter(|(pos, _)| pos % cfg.slices_per_comp.max(1) == slice)
        .map(|(_, &ev)| ev)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((comp_index as u64) << 20)
            .wrapping_add(slice as u64),
    );
    let w = cfg.shuffle_window.max(1);
    for window in out.chunks_mut(w) {
        // Fisher–Yates within the window.
        for i in (1..window.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            window.swap(i, j);
        }
    }
    let mut duplicates = 0u64;
    if cfg.duplicate_every > 0 {
        let mut i = cfg.duplicate_every - 1;
        while i < out.len() {
            let dup = out[i];
            out.insert(i + 1, dup);
            duplicates += 1;
            i += cfg.duplicate_every + 1;
        }
    }
    (out, duplicates)
}

/// Fixed-size thread pool draining a job queue; each worker owns one
/// connection for its whole lifetime.
fn run_pool<J, F>(connections: usize, jobs: Vec<J>, addr: SocketAddr, f: F) -> io::Result<()>
where
    J: Send,
    F: Fn(&mut Client, J) -> io::Result<()> + Sync,
{
    let queue = Mutex::new(VecDeque::from(jobs));
    let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..connections.max(1) {
            s.spawn(|| {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        set_error(&first_error, e);
                        return;
                    }
                };
                loop {
                    if lock(&first_error).is_some() {
                        return;
                    }
                    let Some(job) = lock(&queue).pop_front() else {
                        break;
                    };
                    if let Err(e) = f(&mut client, job) {
                        set_error(&first_error, e);
                        return;
                    }
                }
                let _ = client.goodbye();
            });
        }
    });
    let result = lock(&first_error).take();
    match result {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

fn set_error(slot: &Mutex<Option<io::Error>>, e: io::Error) {
    let mut g = lock(slot);
    if g.is_none() {
        *g = Some(e);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run the full load scenario against a daemon at `cfg.addr`.
pub fn run(suite: &[SuiteEntry], cfg: &LoadConfig) -> io::Result<LoadReport> {
    let total_events: u64 = suite.iter().map(|e| e.trace.num_events() as u64).sum();
    let duplicates_sent = AtomicU64::new(0);

    // ---- ingest phase: all (computation, slice) jobs over the pool ----
    let mut ingest_jobs: Vec<(usize, usize)> = Vec::new();
    for c in 0..suite.len() {
        for s in 0..cfg.slices_per_comp.max(1) {
            ingest_jobs.push((c, s));
        }
    }
    let t0 = Instant::now();
    run_pool(cfg.connections, ingest_jobs, cfg.addr, |client, (c, s)| {
        let entry = &suite[c];
        client.hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )?;
        let (events, dups) = build_slice(entry.trace.events(), s, cfg, c);
        duplicates_sent.fetch_add(dups, Ordering::Relaxed);
        client.stream_events(&events, cfg.batch)
    })?;

    // ---- barrier: every computation fully delivered and snapshotted ----
    let flush_jobs: Vec<usize> = (0..suite.len()).collect();
    run_pool(cfg.connections, flush_jobs, cfg.addr, |client, c| {
        let entry = &suite[c];
        client.hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )?;
        let expected = entry.trace.num_events() as u64;
        let (_, delivered) = client.flush(expected)?;
        if delivered != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: flush delivered {delivered}, expected {expected}",
                    entry.name
                ),
            ));
        }
        Ok(())
    })?;
    let ingest_wall_ns = t0.elapsed().as_nanos() as u64;

    // ---- query phase: differential checks per computation ----
    //
    // Each computation runs the same pattern: *cold* single queries
    // (RTT-timed, populating the daemon's shared cache), then a *warm*
    // batched re-issue of the identical items in one frame. Three answers
    // must agree per item — single, batch, and the offline engine — so a
    // cache that ever returned a stale or cross-wired verdict shows up as
    // a mismatch.
    let counters = QueryCounters::new();
    let t1 = Instant::now();
    let query_jobs: Vec<usize> = (0..suite.len()).collect();
    run_pool(cfg.connections, query_jobs, cfg.addr, |client, c| {
        check_computation(client, &suite[c], c, cfg, &counters, "leader")
    })?;

    // ---- time-travel phase: the same differential idea, one retained
    // epoch back in history at a time (PR 8) ----
    if cfg.asof_epochs > 0 {
        let asof_jobs: Vec<usize> = (0..suite.len()).collect();
        run_pool(cfg.connections, asof_jobs, cfg.addr, |client, c| {
            check_asof(client, &suite[c], cfg, &counters)
        })?;
    }

    // ---- fleet phase: the same checks fanned across the followers ----
    //
    // Each computation is assigned round-robin to one follower, so the
    // whole suite is re-verified by the fleet without querying every
    // computation on every replica. A follower answer is compared against
    // the same offline oracle the leader phase used, which by transitivity
    // is a leader-vs-follower differential too.
    if !cfg.follower_addrs.is_empty() {
        wait_followers_converged(
            &cfg.follower_addrs,
            suite,
            cfg,
            std::time::Duration::from_secs(120),
        )?;
        for (fi, &addr) in cfg.follower_addrs.iter().enumerate() {
            let jobs: Vec<usize> = (0..suite.len())
                .filter(|c| c % cfg.follower_addrs.len() == fi)
                .collect();
            let label = format!("follower {fi}");
            run_pool(cfg.connections, jobs, addr, |client, c| {
                check_computation(client, &suite[c], c, cfg, &counters, &label)
            })?;
        }
    }
    let query_wall_ns = t1.elapsed().as_nanos() as u64;

    let rtt_samples = counters.rtt.count();
    let (rtt_p50_ns, rtt_p95_ns) = counters.rtt.p50_p95();
    Ok(LoadReport {
        computations: suite.len(),
        total_events,
        duplicates_sent: duplicates_sent.into_inner(),
        ingest_wall_ns,
        query_wall_ns,
        precedence_checked: counters.precedence_checked.into_inner(),
        gc_checked: counters.gc_checked.into_inner(),
        windows_checked: counters.windows_checked.into_inner(),
        batch_checked: counters.batch_checked.into_inner(),
        asof_checked: counters.asof_checked.into_inner(),
        mismatches: counters.mismatches.into_inner(),
        rtt_min_ns: if rtt_samples == 0 {
            0
        } else {
            counters.rtt_min.into_inner()
        },
        rtt_p50_ns,
        rtt_p95_ns,
        rtt_mean_ns: counters.rtt.mean() as u64,
        rtt_samples,
    })
}

/// Shared tallies of the differential query phases (leader and fleet).
struct QueryCounters {
    mismatches: AtomicU64,
    precedence_checked: AtomicU64,
    gc_checked: AtomicU64,
    windows_checked: AtomicU64,
    batch_checked: AtomicU64,
    asof_checked: AtomicU64,
    rtt: AtomicHistogram,
    rtt_min: AtomicU64,
}

impl QueryCounters {
    fn new() -> QueryCounters {
        QueryCounters {
            mismatches: AtomicU64::new(0),
            precedence_checked: AtomicU64::new(0),
            gc_checked: AtomicU64::new(0),
            windows_checked: AtomicU64::new(0),
            batch_checked: AtomicU64::new(0),
            asof_checked: AtomicU64::new(0),
            rtt: AtomicHistogram::new(),
            rtt_min: AtomicU64::new(u64::MAX),
        }
    }
}

/// One computation's full differential check against the offline engine:
/// cold single queries, warm batched re-issues, and a paged window
/// scroll. `who` names the daemon under test in mismatch reports.
fn check_computation(
    client: &mut Client,
    entry: &SuiteEntry,
    comp_index: usize,
    cfg: &LoadConfig,
    k: &QueryCounters,
    who: &str,
) -> io::Result<()> {
    let _ = comp_index;
    let trace = &entry.trace;
    client.hello(&entry.name, trace.num_processes(), cfg.max_cluster_size)?;
    let offline = ClusterEngine::run(trace, MergeOnFirst::new(cfg.max_cluster_size as usize));
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    if ids.is_empty() {
        return Ok(());
    }
    let mismatch = |text: String| {
        eprintln!("[cts-loadgen] MISMATCH {} on {who}: {text}", entry.name);
        k.mismatches.fetch_add(1, Ordering::Relaxed);
    };
    // Prime strides decorrelate the sampled pairs from trace layout.
    let mut pairs = Vec::with_capacity(cfg.precedence_queries);
    let mut singles = Vec::with_capacity(cfg.precedence_queries);
    for j in 0..cfg.precedence_queries {
        let e = ids[(j * 7919) % ids.len()];
        let f = ids[(j * 104_729 + 13) % ids.len()];
        let q0 = Instant::now();
        let got = client.precedes(e, f)?;
        let ns = q0.elapsed().as_nanos() as u64;
        k.rtt.record(ns);
        k.rtt_min.fetch_min(ns, Ordering::Relaxed);
        k.precedence_checked.fetch_add(1, Ordering::Relaxed);
        let want = offline.precedes(trace, e, f);
        if got != want {
            mismatch(format!("precedes({e}, {f}) = {got}, offline says {want}"));
        }
        pairs.push((e, f));
        singles.push(want);
    }
    // Warm batch re-issue: the flush barrier (or, on a follower, the
    // convergence barrier) guarantees every sampled event is delivered,
    // so `None` (unknown event) is itself a bug.
    if !pairs.is_empty() {
        let verdicts = client.precedes_batch(&pairs)?;
        k.batch_checked
            .fetch_add(verdicts.len() as u64, Ordering::Relaxed);
        if verdicts.len() != pairs.len() {
            mismatch(format!(
                "precedes_batch returned {} verdicts for {} pairs",
                verdicts.len(),
                pairs.len()
            ));
        }
        for (j, v) in verdicts.iter().enumerate() {
            let (e, f) = pairs[j];
            if *v != Some(singles[j]) {
                mismatch(format!(
                    "warm precedes_batch({e}, {f}) = {v:?}, offline says {}",
                    singles[j]
                ));
            }
        }
    }
    let mut gc_events = Vec::with_capacity(cfg.gc_probes);
    let mut gc_singles = Vec::with_capacity(cfg.gc_probes);
    for j in 0..cfg.gc_probes {
        let e = ids[(j * 15_485_863 + 3) % ids.len()];
        let got = client.greatest_concurrent(e)?;
        k.gc_checked.fetch_add(1, Ordering::Relaxed);
        let want = greatest_concurrent(&mut ClusterBackend(&offline), trace, e);
        if got != want {
            mismatch(format!(
                "greatest_concurrent({e}) = {got:?}, offline says {want:?}"
            ));
        }
        gc_events.push(e);
        gc_singles.push(want);
    }
    if !gc_events.is_empty() {
        let results = client.gc_batch(&gc_events)?;
        k.batch_checked
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        for (j, r) in results.iter().enumerate() {
            if r.as_ref() != Some(&gc_singles[j]) {
                mismatch(format!(
                    "warm gc_batch({}) = {r:?}, offline says {:?}",
                    gc_events[j], gc_singles[j]
                ));
            }
        }
    }
    // One window scroll against the store: process 0's first events,
    // paged with a deliberately small page so the continuation cursor
    // is exercised, with the ids compared against the trace.
    let p0 = cts_model::ProcessId(0);
    let upto = (trace.process_len(p0) as u32).min(16) + 1;
    let (got, pages) = client.window_paged(0, 1, upto, cfg.window_page)?;
    let expect: Vec<EventId> = trace
        .process_events(p0)
        .filter(|id| id.index.0 < upto)
        .collect();
    k.windows_checked.fetch_add(1, Ordering::Relaxed);
    if got != expect {
        mismatch(format!(
            "window(P0, 1, {upto}) returned {} ids, expected {}",
            got.len(),
            expect.len()
        ));
    }
    if cfg.window_page > 0 && expect.len() as u32 > cfg.window_page && pages < 2 {
        mismatch(format!(
            "window(P0, 1, {upto}) with page {} returned {} ids in one page",
            cfg.window_page,
            expect.len()
        ));
    }
    Ok(())
}

/// One computation's time-travel differential: sample up to
/// `cfg.asof_epochs` *historical* retained epochs (everything but the
/// newest), pull each one's delivered prefix back over `ReplayInterval`,
/// re-timestamp the prefix with the offline engine, and require the
/// daemon's `QueryAsOf*` answers at that epoch to match it — the same
/// delivery-order-invariance oracle as the head-epoch phase, applied to
/// every point in retained history.
fn check_asof(
    client: &mut Client,
    entry: &SuiteEntry,
    cfg: &LoadConfig,
    k: &QueryCounters,
) -> io::Result<()> {
    let trace = &entry.trace;
    client.proto_hello()?;
    client.hello(&entry.name, trace.num_processes(), cfg.max_cluster_size)?;
    let epochs = client.list_epochs()?;
    if epochs.len() < 2 {
        // Only the head epoch is retained — nothing historical to check.
        return Ok(());
    }
    let mismatch = |text: String| {
        eprintln!("[cts-loadgen] MISMATCH {} (as-of): {text}", entry.name);
        k.mismatches.fetch_add(1, Ordering::Relaxed);
    };
    // Spread the sample across retained history, oldest epoch included.
    let historical = &epochs[..epochs.len() - 1];
    let step = (historical.len() / cfg.asof_epochs.max(1)).max(1);
    for &(epoch, delivered) in historical.iter().step_by(step).take(cfg.asof_epochs) {
        let events = client.replay_interval(0, epoch)?;
        if events.len() as u64 != delivered {
            mismatch(format!(
                "replay_interval(0, {epoch}) returned {} events, epoch delivered {delivered}",
                events.len()
            ));
            continue;
        }
        let prefix = match cts_model::Trace::from_delivery_order(
            format!("{}@{epoch}", entry.name),
            trace.num_processes(),
            events,
        ) {
            Ok(t) => t,
            Err(e) => {
                mismatch(format!(
                    "replayed prefix of epoch {epoch} is not a valid delivery order: {e}"
                ));
                continue;
            }
        };
        let offline = ClusterEngine::run(&prefix, MergeOnFirst::new(cfg.max_cluster_size as usize));
        let ids: Vec<EventId> = prefix.all_event_ids().collect();
        if ids.is_empty() {
            continue;
        }
        // Same prime strides as the head phase, re-indexed to the prefix.
        for j in 0..cfg.precedence_queries.min(64) {
            let e = ids[(j * 7919) % ids.len()];
            let f = ids[(j * 104_729 + 13) % ids.len()];
            let got = client.asof_precedes(epoch, e, f)?;
            k.asof_checked.fetch_add(1, Ordering::Relaxed);
            let want = offline.precedes(&prefix, e, f);
            if got != want {
                mismatch(format!(
                    "asof_precedes({epoch}, {e}, {f}) = {got}, offline prefix says {want}"
                ));
            }
        }
        for j in 0..cfg.gc_probes {
            let e = ids[(j * 15_485_863 + 3) % ids.len()];
            let got = client.asof_greatest_concurrent(epoch, e)?;
            k.asof_checked.fetch_add(1, Ordering::Relaxed);
            let want = greatest_concurrent(&mut ClusterBackend(&offline), &prefix, e);
            if got != want {
                mismatch(format!(
                    "asof_gc({epoch}, {e}) = {got:?}, offline prefix says {want:?}"
                ));
            }
        }
        let p0 = cts_model::ProcessId(0);
        let upto = (prefix.process_len(p0) as u32).min(16) + 1;
        let got = client.asof_window(epoch, 0, 1, upto)?;
        let expect: Vec<EventId> = prefix
            .process_events(p0)
            .filter(|id| id.index.0 < upto)
            .collect();
        k.asof_checked.fetch_add(1, Ordering::Relaxed);
        if got != expect {
            mismatch(format!(
                "asof_window({epoch}, P0, 1, {upto}) returned {} ids, expected {}",
                got.len(),
                expect.len()
            ));
        }
    }
    Ok(())
}

/// Outcome of `--replay-as` for one computation: the newest retained
/// epoch's delivered prefix, re-timestamped offline under a different
/// clustering strategy, with the paper's space metric for both sides.
#[derive(Debug)]
pub struct ReplayAsReport {
    pub computation: String,
    /// The retained epoch whose prefix was replayed.
    pub epoch: u64,
    /// Events in the replayed prefix.
    pub events: u64,
    pub serving_label: String,
    pub serving_elements: u64,
    pub serving_ratio: f64,
    pub replay_label: String,
    pub replay_elements: u64,
    pub replay_ratio: f64,
}

impl ReplayAsReport {
    /// One-line summary of the strategy comparison.
    pub fn render(&self) -> String {
        let delta = if self.serving_ratio > 0.0 {
            (self.replay_ratio / self.serving_ratio - 1.0) * 100.0
        } else {
            0.0
        };
        format!(
            "{}: epoch {} ({} events): {} ratio {:.4} ({} elements) -> {} ratio {:.4} \
             ({} elements), {delta:+.1}% ratio",
            self.computation,
            self.epoch,
            self.events,
            self.serving_label,
            self.serving_ratio,
            self.serving_elements,
            self.replay_label,
            self.replay_ratio,
            self.replay_elements,
        )
    }
}

/// `cts-loadgen --replay-as`: for each computation, pull the newest
/// retained epoch's delivered prefix back over `ReplayInterval` and
/// re-cluster it offline under `spec`, reporting the paper's
/// stamp-size/ratio deltas against the strategy the daemon served with
/// (merge-on-1st at `cfg.max_cluster_size`). This is the "what if we had
/// clustered differently" loop the time-travel read path exists for —
/// no re-ingest, no second daemon, just the wire replay and the offline
/// engine.
pub fn run_replay_as(
    suite: &[SuiteEntry],
    cfg: &LoadConfig,
    spec: cts_core::StrategySpec,
) -> io::Result<Vec<ReplayAsReport>> {
    use cts_core::{Encoding, SpaceReport};
    let mut out = Vec::new();
    for entry in suite {
        let trace = &entry.trace;
        let mut client = Client::connect(cfg.addr)?;
        client.proto_hello()?;
        client.hello(&entry.name, trace.num_processes(), cfg.max_cluster_size)?;
        let epochs = client.list_epochs()?;
        let Some(&(epoch, delivered)) = epochs.last() else {
            continue;
        };
        let events = client.replay_interval(0, epoch)?;
        if events.len() as u64 != delivered {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: replay of epoch {epoch} returned {} events, epoch delivered {delivered}",
                    entry.name,
                    events.len()
                ),
            ));
        }
        let prefix = cts_model::Trace::from_delivery_order(
            format!("{}@{epoch}", entry.name),
            trace.num_processes(),
            events,
        )
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: replayed prefix of epoch {epoch} is not a valid delivery order: {e}",
                    entry.name
                ),
            )
        })?;
        let _ = client.goodbye();
        let n = prefix.num_processes();
        let serving = ClusterEngine::run(&prefix, MergeOnFirst::new(cfg.max_cluster_size as usize));
        let serving_report = SpaceReport::measure(
            &serving,
            Encoding::paper_default(n, cfg.max_cluster_size as usize),
        );
        let replayed = spec.run(&prefix);
        let replay_report = SpaceReport::measure(
            &replayed,
            Encoding::paper_default(n, spec.max_cluster_size()),
        );
        out.push(ReplayAsReport {
            computation: entry.name.clone(),
            epoch,
            events: delivered,
            serving_label: format!("merge-1st:{}", cfg.max_cluster_size),
            serving_elements: serving_report.cluster_elements,
            serving_ratio: serving_report.ratio,
            replay_label: spec.label(),
            replay_elements: replay_report.cluster_elements,
            replay_ratio: replay_report.ratio,
        });
    }
    Ok(out)
}

/// Block until every follower's *published* snapshot of every suite
/// computation covers the full trace.
///
/// The probe is the last event of each process: delivery respects
/// per-process order, so a snapshot that answers for every process's
/// final event necessarily contains the whole computation. Followers
/// publish the commit point on every idle stream heartbeat, so once the
/// leader has flushed (the ingest barrier already ran), each replica
/// converges within a heartbeat of draining its stream.
pub fn wait_followers_converged(
    addrs: &[SocketAddr],
    suite: &[SuiteEntry],
    cfg: &LoadConfig,
    timeout: std::time::Duration,
) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    for (fi, &addr) in addrs.iter().enumerate() {
        for entry in suite {
            let trace = &entry.trace;
            let probe: Vec<(EventId, EventId)> = (0..trace.num_processes())
                .filter_map(|p| trace.process_events(cts_model::ProcessId(p)).last())
                .map(|id| (id, id))
                .collect();
            if probe.is_empty() {
                continue;
            }
            let mut client = Client::connect(addr)?;
            client.hello(&entry.name, trace.num_processes(), cfg.max_cluster_size)?;
            loop {
                let verdicts = client.precedes_batch(&probe)?;
                if verdicts.len() == probe.len() && verdicts.iter().all(|v| v.is_some()) {
                    break;
                }
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "follower {fi} ({addr}) did not converge on {:?} within {:?}",
                            entry.name, timeout
                        ),
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            let _ = client.goodbye();
        }
        eprintln!(
            "[cts-loadgen] follower {fi} ({addr}) converged on {} computations",
            suite.len()
        );
    }
    Ok(())
}

/// One computation's warm workload: name, process count, and the
/// prime-stride pair sample the query phase already primed caches with.
type WarmJob = (String, u32, Vec<(EventId, EventId)>);

/// `repl/warm_batch_{leader,fleet}` entries: wall time of a fixed warm
/// batched-query workload (every suite computation's precedence-pair
/// batch, several passes, drained from a shared queue) driven by one
/// client thread per follower — first with every thread aimed at the
/// leader, then with thread *i* aimed at follower *i*.
///
/// Identical work, identical client parallelism; only the serving
/// capacity changes. The `leader/fleet >= R` min_ns ratio is therefore a
/// host-independent read scale-out claim — `scripts/bench_gate.py
/// --require-ratio repl/warm_batch_leader:repl/warm_batch_fleet:1.8`
/// gates on it in the `repl` CI stage (where each daemon is capped at
/// one query worker, so two replicas really are twice the capacity).
pub fn fleet_bench_entries(
    suite: &[SuiteEntry],
    cfg: &LoadConfig,
    passes: usize,
    rounds: usize,
) -> io::Result<Vec<BenchEntry>> {
    assert!(
        !cfg.follower_addrs.is_empty(),
        "fleet bench requires follower_addrs"
    );
    // Pre-sample each computation's warm pairs (the query phase already
    // primed the caches with exactly these).
    let work: Vec<WarmJob> = suite
        .iter()
        .map(|entry| {
            let ids: Vec<EventId> = entry.trace.all_event_ids().collect();
            let pairs = (0..cfg.precedence_queries)
                .filter(|_| !ids.is_empty())
                .map(|j| {
                    (
                        ids[(j * 7919) % ids.len()],
                        ids[(j * 104_729 + 13) % ids.len()],
                    )
                })
                .collect();
            (entry.name.clone(), entry.trace.num_processes(), pairs)
        })
        .collect();
    let jobs: Vec<usize> = (0..work.len())
        .flat_map(|c| std::iter::repeat_n(c, passes.max(1)))
        .collect();
    let items_per_round: u64 = jobs.iter().map(|&c| work[c].2.len() as u64).sum();
    wait_followers_converged(
        &cfg.follower_addrs,
        suite,
        cfg,
        std::time::Duration::from_secs(120),
    )?;

    let leader_targets: Vec<SocketAddr> = vec![cfg.addr; cfg.follower_addrs.len()];
    let mut out = Vec::new();
    for (name, targets) in [
        ("warm_batch_leader", &leader_targets),
        ("warm_batch_fleet", &cfg.follower_addrs),
    ] {
        let mut runs: Vec<u64> = Vec::with_capacity(rounds.max(1));
        for _ in 0..rounds.max(1) {
            runs.push(timed_batch_round(
                targets,
                &jobs,
                &work,
                cfg.max_cluster_size,
            )?);
        }
        runs.sort_unstable();
        out.push(BenchEntry {
            group: "repl".into(),
            name: name.into(),
            samples: runs.len(),
            iters_per_sample: items_per_round,
            min_ns: runs[0] as f64,
            median_ns: runs[runs.len() / 2] as f64,
            p95_ns: *runs.last().unwrap() as f64,
            mean_ns: runs.iter().sum::<u64>() as f64 / runs.len() as f64,
        });
    }
    Ok(out)
}

/// One timed pass of the fleet bench workload: `targets.len()` client
/// threads (thread *i* pinned to `targets[i]`) drain a shared queue of
/// per-computation warm `precedes_batch` jobs. Returns wall nanoseconds
/// from first job to last.
fn timed_batch_round(
    targets: &[SocketAddr],
    jobs: &[usize],
    work: &[WarmJob],
    max_cluster_size: u32,
) -> io::Result<u64> {
    let queue = Mutex::new(VecDeque::from(jobs.to_vec()));
    let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let queue = &queue;
        let first_error = &first_error;
        for &addr in targets {
            s.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        set_error(first_error, e);
                        return;
                    }
                };
                let mut current: Option<usize> = None;
                loop {
                    if lock(first_error).is_some() {
                        return;
                    }
                    let Some(c) = lock(queue).pop_front() else {
                        break;
                    };
                    let (name, num_processes, pairs) = &work[c];
                    let r = (|| -> io::Result<()> {
                        if current != Some(c) {
                            client.hello(name, *num_processes, max_cluster_size)?;
                            current = Some(c);
                        }
                        let verdicts = client.precedes_batch(pairs)?;
                        if verdicts.len() != pairs.len() || verdicts.iter().any(|v| v.is_none()) {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("{name}: incomplete warm batch answer"),
                            ));
                        }
                        Ok(())
                    })();
                    if let Err(e) = r {
                        set_error(first_error, e);
                        return;
                    }
                }
                let _ = client.goodbye();
            });
        }
    });
    let wall = t0.elapsed().as_nanos() as u64;
    let result = lock(&first_error).take();
    match result {
        None => Ok(wall),
        Some(e) => Err(e),
    }
}

/// Start `n` in-process follower daemons replicating `leader`, each with
/// its own data directory under `root` (so a restarted follower catches
/// up from its own WAL tail). Used by `cts-loadgen --followers N`.
pub fn spawn_followers(
    leader: SocketAddr,
    n: usize,
    root: &std::path::Path,
) -> io::Result<Vec<crate::server::Daemon>> {
    (0..n)
        .map(|i| {
            let cfg = crate::server::DaemonConfig {
                data_dir: Some(root.join(format!("follower-{i}"))),
                follow: Some(leader),
                ..crate::server::DaemonConfig::default()
            };
            crate::server::Daemon::start(cfg)
        })
        .collect()
}

/// Crash-replay scenario: stream a deterministic prefix of the suite into
/// a durable in-process daemon, **crash-stop** it (workers exit without the
/// final WAL sync/checkpoint; queued batches are discarded), restart a
/// fresh daemon on the same data directory, wait for recovery, then
/// re-stream the *full* suite and run the standard differential checks.
///
/// Re-streaming is safe because the reorder buffer deduplicates: every
/// event the recovered daemon already holds is dropped on arrival, exactly
/// what a real client re-transmitting after a server crash relies on. The
/// returned report's `mismatches` must be zero — recovery that loses,
/// duplicates, or reorders state shows up as a differential failure.
///
/// `kill_after_events` is distributed proportionally across slices, so the
/// bytes *sent* are deterministic; what survives the crash is not (that is
/// the point), but any surviving prefix must recover consistently.
pub fn run_crash_replay(
    suite: &[SuiteEntry],
    cfg: &LoadConfig,
    daemon_cfg: crate::server::DaemonConfig,
    kill_after_events: u64,
    restart: bool,
) -> io::Result<Option<LoadReport>> {
    assert!(
        daemon_cfg.data_dir.is_some(),
        "crash replay requires a durable daemon (data_dir)"
    );
    let total_events: u64 = suite.iter().map(|e| e.trace.num_events() as u64).sum();

    // ---- phase 1: partial stream, then crash-stop ----
    let d1 = crate::server::Daemon::start(daemon_cfg.clone())?;
    let addr1 = d1.local_addr();
    let mut ingest_jobs: Vec<(usize, usize)> = Vec::new();
    for c in 0..suite.len() {
        for s in 0..cfg.slices_per_comp.max(1) {
            ingest_jobs.push((c, s));
        }
    }
    run_pool(cfg.connections, ingest_jobs, addr1, |client, (c, s)| {
        let entry = &suite[c];
        client.hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )?;
        let (events, _) = build_slice(entry.trace.events(), s, cfg, c);
        // This slice's share of the global kill budget.
        let quota = (events.len() as u64)
            .saturating_mul(kill_after_events)
            .checked_div(total_events)
            .unwrap_or(0) as usize;
        client.stream_events(&events[..quota.min(events.len())], cfg.batch)
    })?;
    eprintln!(
        "[cts-loadgen] crash-stopping the daemon after ~{kill_after_events} of \
         {total_events} events"
    );
    d1.kill();
    if !restart {
        return Ok(None);
    }

    // ---- phase 2: restart on the same data dir, recover, re-stream ----
    let d2 = crate::server::Daemon::start(daemon_cfg)?;
    let t0 = Instant::now();
    while d2.is_recovering() {
        if t0.elapsed() > std::time::Duration::from_secs(120) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "daemon recovery did not finish within 120 s",
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    eprintln!(
        "[cts-loadgen] daemon recovered in {:.3} s; re-streaming the full suite",
        t0.elapsed().as_secs_f64()
    );
    let mut cfg2 = cfg.clone();
    cfg2.addr = d2.local_addr();
    let report = run(suite, &cfg2)?;
    d2.shutdown();
    Ok(Some(report))
}

// ---- C10K: idle-connection capacity and cost ----

/// Open `n` connections, complete a `Hello` on each, and return them to be
/// *held idle*. Deliberately raw `TcpStream`s — a [`Client`] wraps its
/// stream in a `BufWriter` whose 8 KiB buffer would dominate the client
/// side of a per-connection memory measurement (and at 10 000 connections,
/// 80 MB of loadgen buffers says nothing about the daemon).
pub fn hold_idle_conns(addr: SocketAddr, n: usize) -> io::Result<Vec<std::net::TcpStream>> {
    use crate::wire::{read_msg, write_msg, Msg};
    let mut conns = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = std::net::TcpStream::connect(addr)?;
        write_msg(
            &mut s,
            &Msg::Hello {
                computation: "c10k-idle".into(),
                num_processes: 1,
                max_cluster_size: 8,
            },
        )?;
        match read_msg(&mut s)? {
            Some(Msg::HelloAck { .. }) => {}
            Some(Msg::Error { code, message }) => {
                return Err(io::Error::other(format!(
                    "daemon refused idle connection {} of {n}: error {code}: {message}",
                    conns.len() + 1
                )));
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected hello reply on idle connection: {other:?}"
                )));
            }
        }
        conns.push(s);
    }
    Ok(conns)
}

/// Process CPU time (user + system, all threads) in milliseconds, from
/// `/proc/self/stat`. Returns 0 where /proc is unavailable.
pub fn proc_cpu_ms() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    // Fields 14/15 (utime/stime) count in clock ticks; the comm field may
    // contain spaces but is parenthesized, so split after the last ')'.
    let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
        return 0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let ticks: u64 = [11usize, 12] // utime, stime (0-indexed after comm)
        .iter()
        .filter_map(|&i| fields.get(i).and_then(|f| f.parse::<u64>().ok()))
        .sum();
    // CLK_TCK is 100 on every Linux ABI this runs on.
    ticks * 10
}

/// Resident set size in bytes, from `/proc/self/statm`. Returns 0 where
/// /proc is unavailable.
pub fn proc_rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse::<u64>().ok())
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// Idle-cost comparison of the two network backends, as `cts-bench/1`
/// entries:
///
/// - `daemon_ingest/c10k_idle_cpu_{epoll,threads}`: process CPU
///   milliseconds (reported in the ns field) burned over a fixed window
///   while `conns` connections sit idle. The thread backend's
///   read-timeout polling wakes every connection thread 20×/s; the epoll
///   backend's pollers sleep in `epoll_wait`.
/// - `daemon_ingest/c10k_rss_per_conn_{epoll,threads}`: resident bytes
///   per held connection (thread stacks vs. one `Conn` struct) — the
///   equal-RSS capacity ratio between the backends.
///
/// Both measurements are floored (1 ms / 1 byte) so ratio gates never
/// divide by an unmeasurably-good zero. The daemon runs in-process; the
/// client side is raw fds (see [`hold_idle_conns`]), identical for both
/// backends, so it cancels out of the ratio.
pub fn c10k_bench_entries(
    epoll_conns: usize,
    thread_conns: usize,
    window: std::time::Duration,
) -> io::Result<Vec<BenchEntry>> {
    use crate::server::{Daemon, DaemonConfig, NetBackend};
    // Both ends of every held connection live in this process.
    #[cfg(target_os = "linux")]
    let _ = crate::netpoll::raise_nofile_to_hard();
    let mut out = Vec::new();
    for (label, net, conns) in [
        ("epoll", NetBackend::Epoll, epoll_conns),
        ("threads", NetBackend::Threads, thread_conns),
    ] {
        let daemon_cfg = DaemonConfig {
            net,
            max_conn_threads: conns + 64,
            ..DaemonConfig::default()
        };
        let daemon = Daemon::start(daemon_cfg)?;
        let rss0 = proc_rss_bytes();
        let held = hold_idle_conns(daemon.local_addr(), conns)?;
        // Let accept bursts, thread spawns, and allocator churn settle
        // before sampling.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let rss1 = proc_rss_bytes();
        let cpu0 = proc_cpu_ms();
        std::thread::sleep(window);
        let cpu_ms = (proc_cpu_ms() - cpu0).max(1);
        let rss_per_conn = (rss1.saturating_sub(rss0) / conns.max(1) as u64).max(1);
        eprintln!(
            "[cts-loadgen] c10k {label}: {conns} idle conns, {cpu_ms} ms CPU / \
             {:.1} s window, {rss_per_conn} B resident per conn",
            window.as_secs_f64()
        );
        drop(held);
        daemon.shutdown();
        let scalar = |name: String, v: f64| BenchEntry {
            group: "daemon_ingest".into(),
            name,
            samples: 1,
            iters_per_sample: conns as u64,
            min_ns: v,
            median_ns: v,
            p95_ns: v,
            mean_ns: v,
        };
        out.push(scalar(format!("c10k_idle_cpu_{label}"), cpu_ms as f64));
        out.push(scalar(
            format!("c10k_rss_per_conn_{label}"),
            rss_per_conn as f64,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::linearize::is_valid_delivery_order;
    use cts_workloads::suite::mini_suite;

    #[test]
    fn slices_partition_the_trace_and_shuffles_are_deterministic() {
        let suite = mini_suite();
        let trace = &suite[0].trace;
        let cfg = LoadConfig::default();
        let (a0, d0) = build_slice(trace.events(), 0, &cfg, 0);
        let (a1, d1) = build_slice(trace.events(), 1, &cfg, 0);
        // Together (minus duplicates) the slices hold every event once.
        let mut seen: Vec<EventId> = a0.iter().chain(a1.iter()).map(|e| e.id).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), trace.num_events());
        assert_eq!(
            (a0.len() + a1.len()) as u64,
            trace.num_events() as u64 + d0 + d1
        );
        // Same inputs, same slice.
        let (b0, _) = build_slice(trace.events(), 0, &cfg, 0);
        assert_eq!(a0, b0);
        // A shuffled slice is genuinely out of order (else the test is
        // vacuous).
        let in_order: Vec<Event> = trace
            .events()
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % 2 == 0)
            .map(|(_, &e)| e)
            .collect();
        let without_dups: Vec<Event> = {
            let mut v = a0.clone();
            v.dedup();
            v
        };
        assert_ne!(in_order, without_dups, "shuffle did nothing");
        assert!(!is_valid_delivery_order(trace.num_processes(), &a0));
    }
}
