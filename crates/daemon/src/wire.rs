//! The `cts-daemon` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[u32 LE payload length][payload]`, and every payload is
//! `[version byte][message-type byte][body]`. All integers are little-endian;
//! strings are `u16 LE` length + UTF-8 bytes; an [`EventId`] is
//! `process u32 + index u32`. The layout is documented normatively in
//! DESIGN.md Appendix A. The event-block layout (`[u32 count][event...]`) is shared
//! with the write-ahead log ([`crate::wal`]) via [`encode_event_block`] /
//! [`decode_event_block`], so WAL records and `Events` frames cannot drift.
//!
//! Version negotiation is two-layered. The *frame* version is a single byte:
//! a peer that receives a frame with an unknown version answers [`Msg::Error`]
//! with [`code::BAD_VERSION`] and may close. There is exactly one frame
//! version today, [`VERSION`] = 1. Above it sits the *message set* level,
//! negotiated by [`Msg::ProtoHello`]: the client states the highest message
//! set and WAL record format it speaks, the server answers the minimum of
//! each side's maximum, and messages introduced after level 1 (currently
//! [`Msg::Subscribe`] and its replies) are refused with [`code::UNSUPPORTED`]
//! on connections that never negotiated a level that carries them. An
//! entirely unknown message-type byte likewise answers `UNSUPPORTED` without
//! dropping the connection, so old daemons degrade politely under new peers.

use cts_model::{Event, EventId, EventIndex, EventKind, ProcessId};
use std::io::{self, Read, Write};

/// Protocol version carried as the first payload byte of every frame.
pub const VERSION: u8 = 1;

/// Highest message-set level this build speaks, as negotiated by
/// [`Msg::ProtoHello`]. Level 1 is the implicit pre-handshake set; level 2
/// adds `ListComputations` / `Subscribe` / `StreamBatch` (replication);
/// level 3 adds the time-travel verbs (`QueryAsOf*`, `ListEpochs`,
/// `ReplayInterval`); level 4 adds `QueryClusterMap` (adaptive
/// re-clustering observability); level 5 adds `QueryPlacement` (shard
/// autoscaling and worker-placement observability).
pub const PROTOCOL: u16 = 5;

/// Highest WAL record format this build can stream and replay (the `CTSWAL2`
/// delta encoding; v1 fixed-width segments are still readable).
pub const WAL_FORMAT: u16 = 2;

/// Upper bound on a frame's payload, to bound a malicious length prefix.
pub const MAX_FRAME: u32 = 1 << 20;

/// Error codes carried by [`Msg::Error`].
pub mod code {
    /// A queried event is not (yet) in the published snapshot.
    pub const UNKNOWN_EVENT: u16 = 1;
    /// Hello for an existing computation with different parameters.
    pub const BAD_HELLO: u16 = 2;
    /// A session-scoped message arrived before `Hello`.
    pub const NO_SESSION: u16 = 3;
    /// A `Flush` barrier timed out before its target was delivered.
    pub const FLUSH_TIMEOUT: u16 = 4;
    /// The payload could not be decoded.
    pub const MALFORMED: u16 = 5;
    /// The daemon is shutting down and no longer ingesting.
    pub const SHUTTING_DOWN: u16 = 6;
    /// Unsupported protocol version byte.
    pub const BAD_VERSION: u16 = 7;
    /// The daemon is replaying its write-ahead log after a restart; ingest
    /// and queries are refused until recovery completes.
    pub const RECOVERING: u16 = 8;
    /// The daemon is out of connection capacity (thread/fd exhaustion);
    /// the connection is refused but the daemon keeps serving others.
    pub const OVERLOADED: u16 = 9;
    /// This daemon is a replication follower: writes (`Events`, `Flush`)
    /// are refused — send them to the leader.
    pub const READ_ONLY: u16 = 10;
    /// The message is not in the negotiated message set (or the type byte
    /// is unknown entirely). The connection stays open.
    pub const UNSUPPORTED: u16 = 11;
    /// A `Subscribe` presented a lease minted by a previous leader
    /// incarnation; the follower must resubscribe from scratch.
    pub const LEASE_EXPIRED: u16 = 12;
    /// A time-travel request named an epoch the retention GC has already
    /// retired (or that was never published); see `Msg::ListEpochs` for
    /// what is still answerable.
    pub const EPOCH_RETIRED: u16 = 13;
}

/// Aggregate counters a [`Msg::StatsResult`] reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Events accepted into the engine (after reordering, excl. duplicates).
    pub events_ingested: u64,
    /// Duplicate deliveries dropped by the reorder buffer.
    pub duplicates_dropped: u64,
    /// Events currently parked in the reorder buffer.
    pub reorder_depth: u64,
    /// High-water mark of the reorder buffer.
    pub reorder_peak: u64,
    /// Queries answered (precedence + greatest-concurrent + window).
    pub queries_served: u64,
    /// Snapshots (epochs) published.
    pub snapshots_published: u64,
    /// Ingest-path apply latency percentiles, nanoseconds.
    pub ingest_p50_ns: u64,
    pub ingest_p95_ns: u64,
    /// Query service latency percentiles, nanoseconds (all query types).
    pub query_p50_ns: u64,
    pub query_p95_ns: u64,
    /// Shared query-cache counters (aggregated over the stamp, verdict and
    /// greatest-concurrent memo layers).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// Batched query messages served (`QueryPrecedesBatch` + `QueryGcBatch`).
    pub batch_queries: u64,
    /// Per-query-type latency percentiles, nanoseconds.
    pub precedes_p50_ns: u64,
    pub precedes_p95_ns: u64,
    pub gc_p50_ns: u64,
    pub gc_p95_ns: u64,
    pub window_p50_ns: u64,
    pub window_p95_ns: u64,
    /// Replication (follower side): leader-acked commit watermark of this
    /// computation's subscription, events applied from the stream, and
    /// stream resubscriptions (lag = `repl_commit - repl_applied`).
    pub repl_commit: u64,
    pub repl_applied: u64,
    pub repl_resubscribes: u64,
    /// Time travel: epochs currently retained (gauge), epochs the retention
    /// GC has retired since start, and as-of queries answered from a
    /// retained (non-head) epoch.
    pub epochs_retained: u64,
    pub epochs_retired: u64,
    pub asof_hits: u64,
    /// Adaptive re-clustering: drift migrations performed, and full stamps
    /// forced by the migration soundness rules (markers + stale sources).
    pub drift_migrations: u64,
    pub drift_forced_full: u64,
    /// Placement: hottest shard's occupancy share (Q16 gauge), active shard
    /// count (gauge), completed splits + retires, and clusters stolen
    /// between shards at a fixed count.
    pub place_occupancy_q16: u64,
    pub place_shards: u64,
    pub place_rescales: u64,
    pub place_steals: u64,
}

/// One computation's identity row in a [`Msg::ComputationList`] reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompInfo {
    pub name: String,
    pub num_processes: u32,
    pub max_cluster_size: u32,
    /// Events delivered so far (follower discovery polls this to decide
    /// when it has caught up).
    pub delivered: u64,
}

/// A protocol message (either direction).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Msg {
    // ---- client → server ----
    /// Bind this session to a computation, creating it if needed.
    Hello {
        computation: String,
        num_processes: u32,
        max_cluster_size: u32,
    },
    /// A batch of observed events, in any order, duplicates allowed.
    Events(Vec<Event>),
    /// Barrier: block until `expected_total` events are delivered and a
    /// snapshot covering them is published.
    Flush {
        expected_total: u64,
    },
    /// Does `e` happen before `f`?
    QueryPrecedes {
        e: EventId,
        f: EventId,
    },
    /// Greatest event of every other process concurrent with `e`.
    QueryGreatestConcurrent {
        e: EventId,
    },
    /// Scroll a window of the partial-order store: process `p`, indices
    /// `[from, to)`. `limit` caps the ids per reply (`0` = server default);
    /// the server answers with at most that many and a continuation cursor.
    QueryWindow {
        process: u32,
        from: u32,
        to: u32,
        limit: u32,
    },
    /// Batched precedence queries, answered pair-for-pair in one reply.
    QueryPrecedesBatch {
        pairs: Vec<(EventId, EventId)>,
    },
    /// Batched greatest-concurrent queries, answered slot-for-slot.
    QueryGcBatch {
        events: Vec<EventId>,
    },
    /// Request the computation's metrics counters.
    Stats,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
    /// Close this session.
    Goodbye,
    /// Negotiate the message-set and WAL-format levels: the client states
    /// the highest of each it speaks; the server answers the minimum of the
    /// two sides' maxima. Messages above level 1 require this handshake.
    ProtoHello {
        protocol_max: u16,
        wal_max: u16,
    },
    /// Enumerate the daemon's computations (level 2; follower discovery).
    ListComputations,
    /// Subscribe to a computation's committed WAL record stream starting at
    /// delivery offset `from_offset` (exclusive: the first streamed event is
    /// `from_offset + 1`). `prev_lease` is 0 on a first subscription, else
    /// the lease from the previous [`Msg::SubscribeAck`] — a lease minted by
    /// an older leader incarnation is refused with [`code::LEASE_EXPIRED`].
    Subscribe {
        computation: String,
        from_offset: u64,
        prev_lease: u64,
    },
    /// Time travel (level 3): [`Msg::QueryPrecedes`] answered against the
    /// retained snapshot published at `epoch` instead of the head. A retired
    /// (or never-published) epoch is refused with [`code::EPOCH_RETIRED`].
    QueryAsOfPrecedes {
        epoch: u64,
        e: EventId,
        f: EventId,
    },
    /// Time travel (level 3): greatest-concurrent as of `epoch`.
    QueryAsOfGc {
        epoch: u64,
        e: EventId,
    },
    /// Time travel (level 3): window scroll as of `epoch`, with the same
    /// pagination contract as [`Msg::QueryWindow`].
    QueryAsOfWindow {
        epoch: u64,
        process: u32,
        from: u32,
        to: u32,
        limit: u32,
    },
    /// Time travel (level 3): enumerate the epochs still retained (and thus
    /// answerable by the `QueryAsOf*` verbs and `ReplayInterval`).
    ListEpochs,
    /// Time travel (level 3): stream the delivered-event interval between
    /// two retained epochs, in delivery order. `from_epoch == 0` means "from
    /// the beginning of history". `cursor` is 0 on the first request, else
    /// the `next` from the previous [`Msg::ReplayChunk`]. `limit` caps the
    /// events per chunk (`0` = server default).
    ReplayInterval {
        from_epoch: u64,
        to_epoch: u64,
        cursor: u64,
        limit: u32,
    },
    /// Adaptive re-clustering (level 4): ask for the cluster map of the
    /// computation's head snapshot — the current partition plus the drift
    /// counters, so clients can watch migrations move processes between
    /// clusters without parsing stats deltas.
    QueryClusterMap,
    /// Shard autoscaling (level 5): ask for the computation's current
    /// placement — active shard count, per-shard occupancy shares, the
    /// rescale/steal counters, and the process → shard routing table.
    QueryPlacement,

    // ---- server → client ----
    HelloAck {
        session: u64,
        existing: bool,
    },
    FlushAck {
        epoch: u64,
        delivered: u64,
    },
    PrecedesResult {
        epoch: u64,
        precedes: bool,
    },
    GcResult {
        epoch: u64,
        slots: Vec<Option<EventId>>,
    },
    WindowResult {
        ids: Vec<EventId>,
        /// Resume-from index for the rest of the window, or `0` when the
        /// reply completes the requested range (indices are 1-based, so 0
        /// is never a valid cursor).
        next: u32,
    },
    /// Reply to [`Msg::QueryPrecedesBatch`]: one verdict per pair, `None`
    /// when either event is unknown at the answering epoch.
    PrecedesBatchResult {
        epoch: u64,
        verdicts: Vec<Option<bool>>,
    },
    /// Reply to [`Msg::QueryGcBatch`]: one slot vector per event, `None`
    /// when the event is unknown at the answering epoch.
    GcBatchResult {
        epoch: u64,
        results: Vec<Option<Vec<Option<EventId>>>>,
    },
    StatsResult(StatsSnapshot),
    ShutdownAck,
    /// Reply to [`Msg::ProtoHello`]: the negotiated levels this connection
    /// will use (min of each side's maximum).
    ProtoHelloAck {
        protocol: u16,
        wal: u16,
    },
    /// Reply to [`Msg::ListComputations`].
    ComputationList {
        comps: Vec<CompInfo>,
    },
    /// Reply to [`Msg::Subscribe`]: the granted lease (high 32 bits are the
    /// leader's incarnation number), the computation's parameters, and the
    /// offset the stream actually starts from (== the requested
    /// `from_offset`, capped at the leader's durable watermark).
    SubscribeAck {
        lease: u64,
        leader_epoch: u64,
        num_processes: u32,
        max_cluster_size: u32,
        start_offset: u64,
    },
    /// One pushed batch of committed (durably synced) WAL records. `commit`
    /// is the leader's durable watermark as of the push — every event at
    /// offset <= `commit` survives a leader crash, so the follower may
    /// publish a snapshot through it.
    StreamBatch {
        lease: u64,
        first_offset: u64,
        commit: u64,
        events: Vec<Event>,
    },
    /// Reply to [`Msg::ListEpochs`]: `(epoch, delivered)` rows, oldest first.
    EpochList {
        epochs: Vec<(u64, u64)>,
    },
    /// One chunk of a [`Msg::ReplayInterval`] stream: events starting at
    /// 1-based delivery offset `first_offset`, and the cursor to resume from
    /// (`0` when the interval is fully delivered — delivery offsets are
    /// 1-based, so 0 is never a valid cursor).
    ReplayChunk {
        first_offset: u64,
        events: Vec<Event>,
        next: u64,
    },
    /// Reply to [`Msg::QueryClusterMap`]: the head snapshot's epoch and
    /// delivered count, its clustering outcome counters, the daemon-lifetime
    /// drift counters, and the partition itself — `partition[p]` is the
    /// cluster representative (canonical member id) of process `p`, so two
    /// processes are clustered together iff their entries are equal.
    ClusterMapResult {
        epoch: u64,
        delivered: u64,
        cluster_receives: u64,
        merges: u64,
        migrations: u64,
        forced_full: u64,
        partition: Vec<u32>,
    },
    /// Reply to [`Msg::QueryPlacement`]: the head snapshot's epoch and
    /// delivered count, the active shard count, whether workers are pinned
    /// to topology-chosen cores, the daemon-lifetime rescale/steal counters,
    /// per-active-shard occupancy shares in Q16 (`occupancy_q16[s]` sums to
    /// ~1.0 across shards), and `routing[p]` = the shard process `p`'s
    /// events are routed to.
    PlacementResult {
        epoch: u64,
        delivered: u64,
        shards: u64,
        pinned: bool,
        rescales: u64,
        steals: u64,
        occupancy_q16: Vec<u64>,
        routing: Vec<u32>,
    },
    Error {
        code: u16,
        message: String,
    },
}

/// Message-type bytes. Client-originated types are `0x01..`, server replies
/// `0x81..`, the error reply `0x7F`.
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const EVENTS: u8 = 0x02;
    pub const FLUSH: u8 = 0x03;
    pub const QUERY_PRECEDES: u8 = 0x04;
    pub const QUERY_GC: u8 = 0x05;
    pub const QUERY_WINDOW: u8 = 0x06;
    pub const STATS: u8 = 0x07;
    pub const SHUTDOWN: u8 = 0x08;
    pub const GOODBYE: u8 = 0x09;
    pub const QUERY_PRECEDES_BATCH: u8 = 0x0A;
    pub const QUERY_GC_BATCH: u8 = 0x0B;
    pub const PROTO_HELLO: u8 = 0x0C;
    pub const LIST_COMPS: u8 = 0x0D;
    pub const SUBSCRIBE: u8 = 0x0E;
    pub const QUERY_ASOF_PRECEDES: u8 = 0x0F;
    pub const QUERY_ASOF_GC: u8 = 0x10;
    pub const QUERY_ASOF_WINDOW: u8 = 0x11;
    pub const LIST_EPOCHS: u8 = 0x12;
    pub const REPLAY_INTERVAL: u8 = 0x13;
    pub const QUERY_CLUSTER_MAP: u8 = 0x14;
    pub const QUERY_PLACEMENT: u8 = 0x15;
    pub const HELLO_ACK: u8 = 0x81;
    pub const FLUSH_ACK: u8 = 0x83;
    pub const PRECEDES_RESULT: u8 = 0x84;
    pub const GC_RESULT: u8 = 0x85;
    pub const WINDOW_RESULT: u8 = 0x86;
    pub const STATS_RESULT: u8 = 0x87;
    pub const SHUTDOWN_ACK: u8 = 0x88;
    pub const PRECEDES_BATCH_RESULT: u8 = 0x89;
    pub const GC_BATCH_RESULT: u8 = 0x8A;
    pub const PROTO_HELLO_ACK: u8 = 0x8B;
    pub const COMP_LIST: u8 = 0x8C;
    pub const SUBSCRIBE_ACK: u8 = 0x8D;
    pub const STREAM_BATCH: u8 = 0x8E;
    pub const EPOCH_LIST: u8 = 0x8F;
    pub const REPLAY_CHUNK: u8 = 0x90;
    pub const CLUSTER_MAP_RESULT: u8 = 0x91;
    pub const PLACEMENT_RESULT: u8 = 0x92;
    pub const ERROR: u8 = 0x7F;
}

/// Decoding failure: the payload does not parse under [`VERSION`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Unknown version byte (the value received).
    BadVersion(u8),
    /// Unknown message-type byte.
    BadTag(u8),
    /// Body too short / trailing garbage / invalid field.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- primitive encoders ----

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_event_id(out: &mut Vec<u8>, id: EventId) {
    put_u32(out, id.process.0);
    put_u32(out, id.index.0);
}

/// Encode an event block — `[u32 count][event...]` — the layout shared by
/// `Msg::Events` bodies and WAL record payloads.
pub fn encode_event_block(out: &mut Vec<u8>, events: &[Event]) {
    put_u32(out, events.len() as u32);
    for ev in events {
        put_event(out, ev);
    }
}

/// Decode an event block occupying exactly `buf`.
pub fn decode_event_block(buf: &[u8]) -> Result<Vec<Event>, WireError> {
    let mut c = Cur { buf, pos: 0 };
    let events = c.event_block(buf.len())?;
    c.finish()?;
    Ok(events)
}

fn put_event(out: &mut Vec<u8>, ev: &Event) {
    put_event_id(out, ev.id);
    match ev.kind {
        EventKind::Internal => out.push(0),
        EventKind::Send { to } => {
            out.push(1);
            put_u32(out, to.0);
        }
        EventKind::Receive { from } => {
            out.push(2);
            put_event_id(out, from);
        }
        EventKind::Sync { peer } => {
            out.push(3);
            put_event_id(out, peer);
        }
    }
}

// ---- primitive decoders (cursor style) ----

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Malformed("truncated body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn event_id(&mut self) -> Result<EventId, WireError> {
        let p = self.u32()?;
        let i = self.u32()?;
        if i == 0 {
            return Err(WireError::Malformed("event index 0 (indices are 1-based)"));
        }
        Ok(EventId::new(ProcessId(p), EventIndex(i)))
    }

    fn event(&mut self) -> Result<Event, WireError> {
        let id = self.event_id()?;
        let kind = match self.u8()? {
            0 => EventKind::Internal,
            1 => EventKind::Send {
                to: ProcessId(self.u32()?),
            },
            2 => EventKind::Receive {
                from: self.event_id()?,
            },
            3 => EventKind::Sync {
                peer: self.event_id()?,
            },
            _ => return Err(WireError::Malformed("unknown event kind")),
        };
        Ok(Event::new(id, kind))
    }

    /// `[u32 count][event...]`; `bound` caps the plausible count (each event
    /// is ≥ 9 bytes, so a count the container can't hold is rejected before
    /// allocation).
    fn event_block(&mut self, bound: usize) -> Result<Vec<Event>, WireError> {
        let n = self.u32()? as usize;
        if n > bound / 9 + 1 {
            return Err(WireError::Malformed("event count exceeds body"));
        }
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(self.event()?);
        }
        Ok(events)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

impl Msg {
    /// Serialize into a payload (version + tag + body), without the frame
    /// length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(VERSION);
        match self {
            Msg::Hello {
                computation,
                num_processes,
                max_cluster_size,
            } => {
                out.push(tag::HELLO);
                put_str(&mut out, computation);
                put_u32(&mut out, *num_processes);
                put_u32(&mut out, *max_cluster_size);
            }
            Msg::Events(events) => {
                out.push(tag::EVENTS);
                encode_event_block(&mut out, events);
            }
            Msg::Flush { expected_total } => {
                out.push(tag::FLUSH);
                put_u64(&mut out, *expected_total);
            }
            Msg::QueryPrecedes { e, f } => {
                out.push(tag::QUERY_PRECEDES);
                put_event_id(&mut out, *e);
                put_event_id(&mut out, *f);
            }
            Msg::QueryGreatestConcurrent { e } => {
                out.push(tag::QUERY_GC);
                put_event_id(&mut out, *e);
            }
            Msg::QueryWindow {
                process,
                from,
                to,
                limit,
            } => {
                out.push(tag::QUERY_WINDOW);
                put_u32(&mut out, *process);
                put_u32(&mut out, *from);
                put_u32(&mut out, *to);
                put_u32(&mut out, *limit);
            }
            Msg::QueryPrecedesBatch { pairs } => {
                out.push(tag::QUERY_PRECEDES_BATCH);
                put_u32(&mut out, pairs.len() as u32);
                for (e, f) in pairs {
                    put_event_id(&mut out, *e);
                    put_event_id(&mut out, *f);
                }
            }
            Msg::QueryGcBatch { events } => {
                out.push(tag::QUERY_GC_BATCH);
                put_u32(&mut out, events.len() as u32);
                for e in events {
                    put_event_id(&mut out, *e);
                }
            }
            Msg::Stats => out.push(tag::STATS),
            Msg::Shutdown => out.push(tag::SHUTDOWN),
            Msg::Goodbye => out.push(tag::GOODBYE),
            Msg::ProtoHello {
                protocol_max,
                wal_max,
            } => {
                out.push(tag::PROTO_HELLO);
                put_u16(&mut out, *protocol_max);
                put_u16(&mut out, *wal_max);
            }
            Msg::ListComputations => out.push(tag::LIST_COMPS),
            Msg::Subscribe {
                computation,
                from_offset,
                prev_lease,
            } => {
                out.push(tag::SUBSCRIBE);
                put_str(&mut out, computation);
                put_u64(&mut out, *from_offset);
                put_u64(&mut out, *prev_lease);
            }
            Msg::QueryAsOfPrecedes { epoch, e, f } => {
                out.push(tag::QUERY_ASOF_PRECEDES);
                put_u64(&mut out, *epoch);
                put_event_id(&mut out, *e);
                put_event_id(&mut out, *f);
            }
            Msg::QueryAsOfGc { epoch, e } => {
                out.push(tag::QUERY_ASOF_GC);
                put_u64(&mut out, *epoch);
                put_event_id(&mut out, *e);
            }
            Msg::QueryAsOfWindow {
                epoch,
                process,
                from,
                to,
                limit,
            } => {
                out.push(tag::QUERY_ASOF_WINDOW);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, *process);
                put_u32(&mut out, *from);
                put_u32(&mut out, *to);
                put_u32(&mut out, *limit);
            }
            Msg::ListEpochs => out.push(tag::LIST_EPOCHS),
            Msg::ReplayInterval {
                from_epoch,
                to_epoch,
                cursor,
                limit,
            } => {
                out.push(tag::REPLAY_INTERVAL);
                put_u64(&mut out, *from_epoch);
                put_u64(&mut out, *to_epoch);
                put_u64(&mut out, *cursor);
                put_u32(&mut out, *limit);
            }
            Msg::QueryClusterMap => out.push(tag::QUERY_CLUSTER_MAP),
            Msg::QueryPlacement => out.push(tag::QUERY_PLACEMENT),
            Msg::HelloAck { session, existing } => {
                out.push(tag::HELLO_ACK);
                put_u64(&mut out, *session);
                out.push(u8::from(*existing));
            }
            Msg::FlushAck { epoch, delivered } => {
                out.push(tag::FLUSH_ACK);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *delivered);
            }
            Msg::PrecedesResult { epoch, precedes } => {
                out.push(tag::PRECEDES_RESULT);
                put_u64(&mut out, *epoch);
                out.push(u8::from(*precedes));
            }
            Msg::GcResult { epoch, slots } => {
                out.push(tag::GC_RESULT);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, slots.len() as u32);
                for slot in slots {
                    match slot {
                        None => out.push(0),
                        Some(id) => {
                            out.push(1);
                            put_event_id(&mut out, *id);
                        }
                    }
                }
            }
            Msg::WindowResult { ids, next } => {
                out.push(tag::WINDOW_RESULT);
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    put_event_id(&mut out, *id);
                }
                put_u32(&mut out, *next);
            }
            Msg::PrecedesBatchResult { epoch, verdicts } => {
                out.push(tag::PRECEDES_BATCH_RESULT);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, verdicts.len() as u32);
                for v in verdicts {
                    out.push(match v {
                        None => 0,
                        Some(false) => 1,
                        Some(true) => 2,
                    });
                }
            }
            Msg::GcBatchResult { epoch, results } => {
                out.push(tag::GC_BATCH_RESULT);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, results.len() as u32);
                for result in results {
                    match result {
                        None => out.push(0),
                        Some(slots) => {
                            out.push(1);
                            put_u32(&mut out, slots.len() as u32);
                            for slot in slots {
                                match slot {
                                    None => out.push(0),
                                    Some(id) => {
                                        out.push(1);
                                        put_event_id(&mut out, *id);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Msg::StatsResult(s) => {
                out.push(tag::STATS_RESULT);
                for v in [
                    s.events_ingested,
                    s.duplicates_dropped,
                    s.reorder_depth,
                    s.reorder_peak,
                    s.queries_served,
                    s.snapshots_published,
                    s.ingest_p50_ns,
                    s.ingest_p95_ns,
                    s.query_p50_ns,
                    s.query_p95_ns,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_evictions,
                    s.batch_queries,
                    s.precedes_p50_ns,
                    s.precedes_p95_ns,
                    s.gc_p50_ns,
                    s.gc_p95_ns,
                    s.window_p50_ns,
                    s.window_p95_ns,
                    s.repl_commit,
                    s.repl_applied,
                    s.repl_resubscribes,
                    s.epochs_retained,
                    s.epochs_retired,
                    s.asof_hits,
                    s.drift_migrations,
                    s.drift_forced_full,
                    s.place_occupancy_q16,
                    s.place_shards,
                    s.place_rescales,
                    s.place_steals,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Msg::ShutdownAck => out.push(tag::SHUTDOWN_ACK),
            Msg::ProtoHelloAck { protocol, wal } => {
                out.push(tag::PROTO_HELLO_ACK);
                put_u16(&mut out, *protocol);
                put_u16(&mut out, *wal);
            }
            Msg::ComputationList { comps } => {
                out.push(tag::COMP_LIST);
                put_u32(&mut out, comps.len() as u32);
                for c in comps {
                    put_str(&mut out, &c.name);
                    put_u32(&mut out, c.num_processes);
                    put_u32(&mut out, c.max_cluster_size);
                    put_u64(&mut out, c.delivered);
                }
            }
            Msg::SubscribeAck {
                lease,
                leader_epoch,
                num_processes,
                max_cluster_size,
                start_offset,
            } => {
                out.push(tag::SUBSCRIBE_ACK);
                put_u64(&mut out, *lease);
                put_u64(&mut out, *leader_epoch);
                put_u32(&mut out, *num_processes);
                put_u32(&mut out, *max_cluster_size);
                put_u64(&mut out, *start_offset);
            }
            Msg::StreamBatch {
                lease,
                first_offset,
                commit,
                events,
            } => {
                out.push(tag::STREAM_BATCH);
                put_u64(&mut out, *lease);
                put_u64(&mut out, *first_offset);
                put_u64(&mut out, *commit);
                encode_event_block(&mut out, events);
            }
            Msg::EpochList { epochs } => {
                out.push(tag::EPOCH_LIST);
                put_u32(&mut out, epochs.len() as u32);
                for (epoch, delivered) in epochs {
                    put_u64(&mut out, *epoch);
                    put_u64(&mut out, *delivered);
                }
            }
            Msg::ReplayChunk {
                first_offset,
                events,
                next,
            } => {
                out.push(tag::REPLAY_CHUNK);
                put_u64(&mut out, *first_offset);
                put_u64(&mut out, *next);
                encode_event_block(&mut out, events);
            }
            Msg::ClusterMapResult {
                epoch,
                delivered,
                cluster_receives,
                merges,
                migrations,
                forced_full,
                partition,
            } => {
                out.push(tag::CLUSTER_MAP_RESULT);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *delivered);
                put_u64(&mut out, *cluster_receives);
                put_u64(&mut out, *merges);
                put_u64(&mut out, *migrations);
                put_u64(&mut out, *forced_full);
                put_u32(&mut out, partition.len() as u32);
                for rep in partition {
                    put_u32(&mut out, *rep);
                }
            }
            Msg::PlacementResult {
                epoch,
                delivered,
                shards,
                pinned,
                rescales,
                steals,
                occupancy_q16,
                routing,
            } => {
                out.push(tag::PLACEMENT_RESULT);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *delivered);
                put_u64(&mut out, *shards);
                out.push(u8::from(*pinned));
                put_u64(&mut out, *rescales);
                put_u64(&mut out, *steals);
                put_u32(&mut out, occupancy_q16.len() as u32);
                for occ in occupancy_q16 {
                    put_u64(&mut out, *occ);
                }
                put_u32(&mut out, routing.len() as u32);
                for shard in routing {
                    put_u32(&mut out, *shard);
                }
            }
            Msg::Error { code, message } => {
                out.push(tag::ERROR);
                put_u16(&mut out, *code);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode a payload (version + tag + body).
    pub fn decode(payload: &[u8]) -> Result<Msg, WireError> {
        let mut c = Cur {
            buf: payload,
            pos: 0,
        };
        let version = c.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let t = c.u8()?;
        let msg = match t {
            tag::HELLO => Msg::Hello {
                computation: c.string()?,
                num_processes: c.u32()?,
                max_cluster_size: c.u32()?,
            },
            tag::EVENTS => Msg::Events(c.event_block(payload.len())?),
            tag::FLUSH => Msg::Flush {
                expected_total: c.u64()?,
            },
            tag::QUERY_PRECEDES => Msg::QueryPrecedes {
                e: c.event_id()?,
                f: c.event_id()?,
            },
            tag::QUERY_GC => Msg::QueryGreatestConcurrent { e: c.event_id()? },
            tag::QUERY_WINDOW => Msg::QueryWindow {
                process: c.u32()?,
                from: c.u32()?,
                to: c.u32()?,
                limit: c.u32()?,
            },
            tag::QUERY_PRECEDES_BATCH => {
                let n = c.u32()? as usize;
                if n > payload.len() / 16 + 1 {
                    return Err(WireError::Malformed("pair count exceeds body"));
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((c.event_id()?, c.event_id()?));
                }
                Msg::QueryPrecedesBatch { pairs }
            }
            tag::QUERY_GC_BATCH => {
                let n = c.u32()? as usize;
                if n > payload.len() / 8 + 1 {
                    return Err(WireError::Malformed("event count exceeds body"));
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(c.event_id()?);
                }
                Msg::QueryGcBatch { events }
            }
            tag::STATS => Msg::Stats,
            tag::SHUTDOWN => Msg::Shutdown,
            tag::GOODBYE => Msg::Goodbye,
            tag::PROTO_HELLO => Msg::ProtoHello {
                protocol_max: c.u16()?,
                wal_max: c.u16()?,
            },
            tag::LIST_COMPS => Msg::ListComputations,
            tag::SUBSCRIBE => Msg::Subscribe {
                computation: c.string()?,
                from_offset: c.u64()?,
                prev_lease: c.u64()?,
            },
            tag::QUERY_ASOF_PRECEDES => Msg::QueryAsOfPrecedes {
                epoch: c.u64()?,
                e: c.event_id()?,
                f: c.event_id()?,
            },
            tag::QUERY_ASOF_GC => Msg::QueryAsOfGc {
                epoch: c.u64()?,
                e: c.event_id()?,
            },
            tag::QUERY_ASOF_WINDOW => Msg::QueryAsOfWindow {
                epoch: c.u64()?,
                process: c.u32()?,
                from: c.u32()?,
                to: c.u32()?,
                limit: c.u32()?,
            },
            tag::LIST_EPOCHS => Msg::ListEpochs,
            tag::REPLAY_INTERVAL => Msg::ReplayInterval {
                from_epoch: c.u64()?,
                to_epoch: c.u64()?,
                cursor: c.u64()?,
                limit: c.u32()?,
            },
            tag::QUERY_CLUSTER_MAP => Msg::QueryClusterMap,
            tag::QUERY_PLACEMENT => Msg::QueryPlacement,
            tag::HELLO_ACK => Msg::HelloAck {
                session: c.u64()?,
                existing: c.u8()? != 0,
            },
            tag::FLUSH_ACK => Msg::FlushAck {
                epoch: c.u64()?,
                delivered: c.u64()?,
            },
            tag::PRECEDES_RESULT => Msg::PrecedesResult {
                epoch: c.u64()?,
                precedes: c.u8()? != 0,
            },
            tag::GC_RESULT => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(WireError::Malformed("slot count exceeds body"));
                }
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    slots.push(match c.u8()? {
                        0 => None,
                        1 => Some(c.event_id()?),
                        _ => return Err(WireError::Malformed("bad option flag")),
                    });
                }
                Msg::GcResult { epoch, slots }
            }
            tag::WINDOW_RESULT => {
                let n = c.u32()? as usize;
                if n > payload.len() / 8 + 1 {
                    return Err(WireError::Malformed("id count exceeds body"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(c.event_id()?);
                }
                Msg::WindowResult {
                    ids,
                    next: c.u32()?,
                }
            }
            tag::PRECEDES_BATCH_RESULT => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(WireError::Malformed("verdict count exceeds body"));
                }
                let mut verdicts = Vec::with_capacity(n);
                for _ in 0..n {
                    verdicts.push(match c.u8()? {
                        0 => None,
                        1 => Some(false),
                        2 => Some(true),
                        _ => return Err(WireError::Malformed("bad verdict byte")),
                    });
                }
                Msg::PrecedesBatchResult { epoch, verdicts }
            }
            tag::GC_BATCH_RESULT => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(WireError::Malformed("result count exceeds body"));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(match c.u8()? {
                        0 => None,
                        1 => {
                            let m = c.u32()? as usize;
                            if m > payload.len() {
                                return Err(WireError::Malformed("slot count exceeds body"));
                            }
                            let mut slots = Vec::with_capacity(m);
                            for _ in 0..m {
                                slots.push(match c.u8()? {
                                    0 => None,
                                    1 => Some(c.event_id()?),
                                    _ => return Err(WireError::Malformed("bad option flag")),
                                });
                            }
                            Some(slots)
                        }
                        _ => return Err(WireError::Malformed("bad option flag")),
                    });
                }
                Msg::GcBatchResult { epoch, results }
            }
            tag::STATS_RESULT => Msg::StatsResult(StatsSnapshot {
                events_ingested: c.u64()?,
                duplicates_dropped: c.u64()?,
                reorder_depth: c.u64()?,
                reorder_peak: c.u64()?,
                queries_served: c.u64()?,
                snapshots_published: c.u64()?,
                ingest_p50_ns: c.u64()?,
                ingest_p95_ns: c.u64()?,
                query_p50_ns: c.u64()?,
                query_p95_ns: c.u64()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
                cache_evictions: c.u64()?,
                batch_queries: c.u64()?,
                precedes_p50_ns: c.u64()?,
                precedes_p95_ns: c.u64()?,
                gc_p50_ns: c.u64()?,
                gc_p95_ns: c.u64()?,
                window_p50_ns: c.u64()?,
                window_p95_ns: c.u64()?,
                repl_commit: c.u64()?,
                repl_applied: c.u64()?,
                repl_resubscribes: c.u64()?,
                epochs_retained: c.u64()?,
                epochs_retired: c.u64()?,
                asof_hits: c.u64()?,
                drift_migrations: c.u64()?,
                drift_forced_full: c.u64()?,
                place_occupancy_q16: c.u64()?,
                place_shards: c.u64()?,
                place_rescales: c.u64()?,
                place_steals: c.u64()?,
            }),
            tag::SHUTDOWN_ACK => Msg::ShutdownAck,
            tag::PROTO_HELLO_ACK => Msg::ProtoHelloAck {
                protocol: c.u16()?,
                wal: c.u16()?,
            },
            tag::COMP_LIST => {
                let n = c.u32()? as usize;
                // Each row costs >= 18 bytes (2-byte name length + 16 of
                // integers), bounding a corrupt count before allocation.
                if n > payload.len() / 18 + 1 {
                    return Err(WireError::Malformed("computation count exceeds body"));
                }
                let mut comps = Vec::with_capacity(n);
                for _ in 0..n {
                    comps.push(CompInfo {
                        name: c.string()?,
                        num_processes: c.u32()?,
                        max_cluster_size: c.u32()?,
                        delivered: c.u64()?,
                    });
                }
                Msg::ComputationList { comps }
            }
            tag::SUBSCRIBE_ACK => Msg::SubscribeAck {
                lease: c.u64()?,
                leader_epoch: c.u64()?,
                num_processes: c.u32()?,
                max_cluster_size: c.u32()?,
                start_offset: c.u64()?,
            },
            tag::STREAM_BATCH => Msg::StreamBatch {
                lease: c.u64()?,
                first_offset: c.u64()?,
                commit: c.u64()?,
                events: c.event_block(payload.len())?,
            },
            tag::EPOCH_LIST => {
                let n = c.u32()? as usize;
                if n > payload.len() / 16 + 1 {
                    return Err(WireError::Malformed("epoch count exceeds body"));
                }
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push((c.u64()?, c.u64()?));
                }
                Msg::EpochList { epochs }
            }
            tag::REPLAY_CHUNK => Msg::ReplayChunk {
                first_offset: c.u64()?,
                next: c.u64()?,
                events: c.event_block(payload.len())?,
            },
            tag::CLUSTER_MAP_RESULT => {
                let epoch = c.u64()?;
                let delivered = c.u64()?;
                let cluster_receives = c.u64()?;
                let merges = c.u64()?;
                let migrations = c.u64()?;
                let forced_full = c.u64()?;
                let n = c.u32()? as usize;
                if n > payload.len() / 4 + 1 {
                    return Err(WireError::Malformed("partition size exceeds body"));
                }
                let mut partition = Vec::with_capacity(n);
                for _ in 0..n {
                    partition.push(c.u32()?);
                }
                Msg::ClusterMapResult {
                    epoch,
                    delivered,
                    cluster_receives,
                    merges,
                    migrations,
                    forced_full,
                    partition,
                }
            }
            tag::PLACEMENT_RESULT => {
                let epoch = c.u64()?;
                let delivered = c.u64()?;
                let shards = c.u64()?;
                let pinned = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad bool flag")),
                };
                let rescales = c.u64()?;
                let steals = c.u64()?;
                let n = c.u32()? as usize;
                if n > payload.len() / 8 + 1 {
                    return Err(WireError::Malformed("occupancy size exceeds body"));
                }
                let mut occupancy_q16 = Vec::with_capacity(n);
                for _ in 0..n {
                    occupancy_q16.push(c.u64()?);
                }
                let n = c.u32()? as usize;
                if n > payload.len() / 4 + 1 {
                    return Err(WireError::Malformed("routing size exceeds body"));
                }
                let mut routing = Vec::with_capacity(n);
                for _ in 0..n {
                    routing.push(c.u32()?);
                }
                Msg::PlacementResult {
                    epoch,
                    delivered,
                    shards,
                    pinned,
                    rescales,
                    steals,
                    occupancy_q16,
                    routing,
                }
            }
            tag::ERROR => Msg::Error {
                code: c.u16()?,
                message: c.string()?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

/// Write one message as a frame.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    let payload = msg.encode();
    debug_assert!(payload.len() as u32 <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    Ok(())
}

/// Outcome of one [`recv_frame`] attempt on a possibly-timeouted socket.
pub enum Recv {
    /// A complete payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// Read timeout fired before the first byte of a frame — poll again.
    Idle,
}

/// Read one frame. Tolerates read timeouts: a timeout before the frame's
/// first byte yields [`Recv::Idle`]; mid-frame timeouts keep reading (the
/// sender has committed to the frame). A close at a frame boundary is
/// [`Recv::Eof`]; a close mid-frame is an error.
pub fn recv_frame<R: Read>(r: &mut R) -> io::Result<Recv> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(Recv::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    return Ok(Recv::Idle);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Recv::Frame(payload))
}

/// Blocking read of exactly one message (client side; no timeout tolerance
/// needed because replies follow requests promptly).
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Option<Msg>> {
    match recv_frame(r)? {
        Recv::Eof => Ok(None),
        Recv::Idle => unreachable!("read_msg requires a blocking stream"),
        Recv::Frame(payload) => Msg::decode(&payload)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Incremental frame reassembly for non-blocking sockets.
///
/// The blocking path ([`recv_frame`]) can loop until a frame completes; an
/// edge-triggered readiness loop cannot — it gets whatever bytes the kernel
/// has and must come back later for the rest. `FrameBuffer` accumulates
/// those arbitrary chunks and yields complete payloads as they form,
/// enforcing [`MAX_FRAME`] as soon as a header is visible so a malicious
/// length prefix is rejected before any payload is buffered.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted between readiness events rather
    /// than per frame so a burst of small frames costs one memmove.
    pos: usize,
}

/// Keep at most this much slack allocated in an idle [`FrameBuffer`].
const FRAME_BUF_IDLE_CAP: usize = 64 * 1024;

impl FrameBuffer {
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame payload, if one has fully arrived.
    /// `Ok(None)` means "need more bytes"; an oversized length prefix is a
    /// protocol error that must end the connection.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds limit {MAX_FRAME}"),
            ));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            self.compact();
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.pos += total;
        Ok(Some(payload))
    }

    /// Drop the consumed prefix and release oversized capacity once the
    /// buffer is empty — a connection that once carried a 1 MiB frame must
    /// not pin that allocation forever.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        if self.buf.is_empty() && self.buf.capacity() > FRAME_BUF_IDLE_CAP {
            self.buf.shrink_to(FRAME_BUF_IDLE_CAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(p: u32, i: u32) -> EventId {
        EventId::new(ProcessId(p), EventIndex(i))
    }

    fn all_messages() -> Vec<Msg> {
        vec![
            Msg::Hello {
                computation: "pvm/stencil".into(),
                num_processes: 64,
                max_cluster_size: 13,
            },
            Msg::Events(vec![
                Event::new(id(0, 1), EventKind::Internal),
                Event::new(id(0, 2), EventKind::Send { to: ProcessId(1) }),
                Event::new(id(1, 1), EventKind::Receive { from: id(0, 2) }),
                Event::new(id(1, 2), EventKind::Sync { peer: id(2, 1) }),
            ]),
            Msg::Flush {
                expected_total: 338_320,
            },
            Msg::QueryPrecedes {
                e: id(3, 7),
                f: id(5, 2),
            },
            Msg::QueryGreatestConcurrent { e: id(9, 1) },
            Msg::QueryWindow {
                process: 4,
                from: 10,
                to: 20,
                limit: 5,
            },
            Msg::QueryPrecedesBatch {
                pairs: vec![(id(3, 7), id(5, 2)), (id(0, 1), id(0, 2))],
            },
            Msg::QueryGcBatch {
                events: vec![id(9, 1), id(2, 4)],
            },
            Msg::Stats,
            Msg::Shutdown,
            Msg::Goodbye,
            Msg::ProtoHello {
                protocol_max: PROTOCOL,
                wal_max: WAL_FORMAT,
            },
            Msg::ListComputations,
            Msg::Subscribe {
                computation: "pvm/stencil".into(),
                from_offset: 4096,
                prev_lease: (3 << 32) | 7,
            },
            Msg::QueryAsOfPrecedes {
                epoch: 11,
                e: id(3, 7),
                f: id(5, 2),
            },
            Msg::QueryAsOfGc {
                epoch: 11,
                e: id(9, 1),
            },
            Msg::QueryAsOfWindow {
                epoch: 11,
                process: 4,
                from: 10,
                to: 20,
                limit: 5,
            },
            Msg::ListEpochs,
            Msg::ReplayInterval {
                from_epoch: 9,
                to_epoch: 11,
                cursor: 512,
                limit: 256,
            },
            Msg::QueryClusterMap,
            Msg::QueryPlacement,
            Msg::HelloAck {
                session: 42,
                existing: true,
            },
            Msg::FlushAck {
                epoch: 3,
                delivered: 1000,
            },
            Msg::PrecedesResult {
                epoch: 3,
                precedes: true,
            },
            Msg::GcResult {
                epoch: 7,
                slots: vec![None, Some(id(1, 5)), Some(id(2, 1)), None],
            },
            Msg::WindowResult {
                ids: vec![id(0, 1), id(0, 2)],
                next: 3,
            },
            Msg::PrecedesBatchResult {
                epoch: 9,
                verdicts: vec![Some(true), None, Some(false)],
            },
            Msg::GcBatchResult {
                epoch: 9,
                results: vec![None, Some(vec![None, Some(id(1, 5))]), Some(vec![])],
            },
            Msg::StatsResult(StatsSnapshot {
                events_ingested: 1,
                duplicates_dropped: 2,
                reorder_depth: 3,
                reorder_peak: 4,
                queries_served: 5,
                snapshots_published: 6,
                ingest_p50_ns: 7,
                ingest_p95_ns: 8,
                query_p50_ns: 9,
                query_p95_ns: 10,
                cache_hits: 11,
                cache_misses: 12,
                cache_evictions: 13,
                batch_queries: 14,
                precedes_p50_ns: 15,
                precedes_p95_ns: 16,
                gc_p50_ns: 17,
                gc_p95_ns: 18,
                window_p50_ns: 19,
                window_p95_ns: 20,
                repl_commit: 21,
                repl_applied: 22,
                repl_resubscribes: 23,
                epochs_retained: 24,
                epochs_retired: 25,
                asof_hits: 26,
                drift_migrations: 27,
                drift_forced_full: 28,
                place_occupancy_q16: 29,
                place_shards: 30,
                place_rescales: 31,
                place_steals: 32,
            }),
            Msg::ShutdownAck,
            Msg::ProtoHelloAck {
                protocol: PROTOCOL,
                wal: WAL_FORMAT,
            },
            Msg::ComputationList {
                comps: vec![
                    CompInfo {
                        name: "pvm/stencil".into(),
                        num_processes: 64,
                        max_cluster_size: 13,
                        delivered: 338_320,
                    },
                    CompInfo {
                        name: "web/shard".into(),
                        num_processes: 288,
                        max_cluster_size: 8,
                        delivered: 0,
                    },
                ],
            },
            Msg::SubscribeAck {
                lease: (5 << 32) | 1,
                leader_epoch: 5,
                num_processes: 64,
                max_cluster_size: 13,
                start_offset: 4096,
            },
            Msg::StreamBatch {
                lease: (5 << 32) | 1,
                first_offset: 4097,
                commit: 4100,
                events: vec![
                    Event::new(id(0, 1), EventKind::Internal),
                    Event::new(id(0, 2), EventKind::Send { to: ProcessId(1) }),
                ],
            },
            Msg::EpochList {
                epochs: vec![(9, 4000), (10, 4050), (11, 4100)],
            },
            Msg::ReplayChunk {
                first_offset: 513,
                events: vec![
                    Event::new(id(0, 1), EventKind::Internal),
                    Event::new(id(1, 1), EventKind::Receive { from: id(0, 2) }),
                ],
                next: 515,
            },
            Msg::ClusterMapResult {
                epoch: 12,
                delivered: 4200,
                cluster_receives: 900,
                merges: 14,
                migrations: 3,
                forced_full: 21,
                partition: vec![0, 0, 2, 2, 0],
            },
            Msg::PlacementResult {
                epoch: 13,
                delivered: 4300,
                shards: 3,
                pinned: true,
                rescales: 2,
                steals: 5,
                occupancy_q16: vec![30000, 20000, 15536],
                routing: vec![0, 0, 1, 2, 1],
            },
            Msg::Error {
                code: code::UNKNOWN_EVENT,
                message: "P9#99 not in snapshot".into(),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let enc = msg.encode();
            assert_eq!(enc[0], VERSION);
            let dec = Msg::decode(&enc).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(dec, msg);
        }
    }

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            write_msg(&mut buf, &msg).unwrap();
        }
        let mut r = &buf[..];
        for expect in all_messages() {
            assert_eq!(read_msg(&mut r).unwrap(), Some(expect));
        }
        assert_eq!(read_msg(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn bad_version_and_tag_are_rejected() {
        let mut enc = Msg::Stats.encode();
        enc[0] = 99;
        assert_eq!(Msg::decode(&enc), Err(WireError::BadVersion(99)));
        let mut enc = Msg::Stats.encode();
        enc[1] = 0x60;
        assert_eq!(Msg::decode(&enc), Err(WireError::BadTag(0x60)));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let enc = Msg::Flush { expected_total: 7 }.encode();
        assert!(matches!(
            Msg::decode(&enc[..enc.len() - 1]),
            Err(WireError::Malformed(_))
        ));
        let mut padded = enc;
        padded.push(0);
        assert!(matches!(Msg::decode(&padded), Err(WireError::Malformed(_))));
    }

    #[test]
    fn zero_event_index_is_rejected() {
        let mut enc = Msg::QueryGreatestConcurrent { e: id(1, 1) }.encode();
        // Overwrite the index field (last 4 bytes) with 0.
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(Msg::decode(&enc), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(recv_frame(&mut r).is_err());
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let msg = Msg::Hello {
            computation: "frame-buffer".into(),
            num_processes: 5,
            max_cluster_size: 3,
        };
        let mut wire = Vec::new();
        write_msg(&mut wire, &msg).unwrap();
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        // Worst-case fragmentation: one byte per readiness event.
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(payload) = fb.next_frame().unwrap() {
                out.push(Msg::decode(&payload).unwrap());
            }
        }
        assert_eq!(out, vec![msg]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_yields_multiple_frames_from_one_chunk() {
        let msgs = all_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            write_msg(&mut wire, m).unwrap();
        }
        // One chunk carrying every frame plus a dangling partial header.
        wire.extend_from_slice(&[3, 0]);
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        let mut out = Vec::new();
        while let Some(payload) = fb.next_frame().unwrap() {
            out.push(Msg::decode(&payload).unwrap());
        }
        assert_eq!(out, msgs);
        assert_eq!(fb.pending(), 2);
    }

    #[test]
    fn frame_buffer_rejects_oversized_length_before_payload() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn frame_buffer_releases_large_allocations_when_idle() {
        let mut fb = FrameBuffer::new();
        let big = vec![0xABu8; (MAX_FRAME as usize) / 2];
        let mut wire = (big.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&big);
        fb.extend(&wire);
        assert_eq!(fb.next_frame().unwrap().unwrap(), big);
        assert!(fb.next_frame().unwrap().is_none());
        assert!(
            fb.buf.capacity() <= FRAME_BUF_IDLE_CAP,
            "idle buffer still holds {} bytes",
            fb.buf.capacity()
        );
    }
}
