//! Lock-free per-computation metrics: monotone counters updated by the
//! ingest worker and connection threads, latency histograms
//! ([`cts_util::hist::AtomicHistogram`]), and a consistent-enough snapshot
//! for the `Stats` wire message.

use crate::wire::StatsSnapshot;
use cts_store::CacheStats;
use cts_util::hist::AtomicHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters and histograms for one computation.
#[derive(Debug, Default)]
pub struct Metrics {
    pub events_ingested: AtomicU64,
    pub duplicates_dropped: AtomicU64,
    pub reorder_depth: AtomicU64,
    pub reorder_peak: AtomicU64,
    pub queries_served: AtomicU64,
    pub snapshots_published: AtomicU64,
    /// Batched query messages served.
    pub batch_queries: AtomicU64,
    /// WAL durability barriers issued (group-commit windows closed). Not on
    /// the wire — a process-local observable for the group-commit tests.
    pub wal_syncs: AtomicU64,
    /// Replication, follower side: the leader's commit watermark as of the
    /// last `StreamBatch`, events applied from the stream, and how many
    /// times the subscription was re-established.
    pub repl_commit: AtomicU64,
    pub repl_applied: AtomicU64,
    pub repl_resubscribes: AtomicU64,
    /// As-of queries answered from a retained (non-head) epoch.
    pub asof_hits: AtomicU64,
    /// Adaptive strategy: drift migrations performed by the engine.
    pub drift_migrations: AtomicU64,
    /// Adaptive strategy: full stamps forced by the migration soundness
    /// rules (pending markers + stale-source watermarks).
    pub drift_forced_full: AtomicU64,
    /// Placement: hottest shard's occupancy share, Q16 gauge.
    pub place_occupancy_q16: AtomicU64,
    /// Placement: active shard count gauge (slots carrying routed traffic).
    pub place_shards: AtomicU64,
    /// Placement: completed splits + retires.
    pub place_rescales: AtomicU64,
    /// Placement: clusters stolen between shards at a fixed count.
    pub place_steals: AtomicU64,
    /// Per-event ingest-apply latency (reorder + engine + store), ns.
    pub ingest_ns: AtomicHistogram,
    /// Per-query service latency, ns (all query types).
    pub query_ns: AtomicHistogram,
    /// Per-query-type service latency, ns.
    pub precedes_ns: AtomicHistogram,
    pub gc_ns: AtomicHistogram,
    pub window_ns: AtomicHistogram,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Materialize the counters for the wire, folding in the computation's
    /// query-cache counters and the epoch retainer's gauge/counter pair.
    /// Individually atomic, not mutually consistent — fine for monitoring.
    pub fn snapshot(
        &self,
        cache: CacheStats,
        epochs_retained: u64,
        epochs_retired: u64,
    ) -> StatsSnapshot {
        let (ingest_p50_ns, ingest_p95_ns) = self.ingest_ns.p50_p95();
        let (query_p50_ns, query_p95_ns) = self.query_ns.p50_p95();
        let (precedes_p50_ns, precedes_p95_ns) = self.precedes_ns.p50_p95();
        let (gc_p50_ns, gc_p95_ns) = self.gc_ns.p50_p95();
        let (window_p50_ns, window_p95_ns) = self.window_ns.p50_p95();
        StatsSnapshot {
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            reorder_depth: self.reorder_depth.load(Ordering::Relaxed),
            reorder_peak: self.reorder_peak.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            ingest_p50_ns,
            ingest_p95_ns,
            query_p50_ns,
            query_p95_ns,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            precedes_p50_ns,
            precedes_p95_ns,
            gc_p50_ns,
            gc_p95_ns,
            window_p50_ns,
            window_p95_ns,
            repl_commit: self.repl_commit.load(Ordering::Relaxed),
            repl_applied: self.repl_applied.load(Ordering::Relaxed),
            repl_resubscribes: self.repl_resubscribes.load(Ordering::Relaxed),
            epochs_retained,
            epochs_retired,
            asof_hits: self.asof_hits.load(Ordering::Relaxed),
            drift_migrations: self.drift_migrations.load(Ordering::Relaxed),
            drift_forced_full: self.drift_forced_full.load(Ordering::Relaxed),
            place_occupancy_q16: self.place_occupancy_q16.load(Ordering::Relaxed),
            place_shards: self.place_shards.load(Ordering::Relaxed),
            place_rescales: self.place_rescales.load(Ordering::Relaxed),
            place_steals: self.place_steals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.events_ingested.store(10, Ordering::Relaxed);
        m.duplicates_dropped.store(2, Ordering::Relaxed);
        m.queries_served.store(5, Ordering::Relaxed);
        m.ingest_ns.record(1_000);
        m.query_ns.record(2_000);
        m.precedes_ns.record(500);
        m.repl_commit.store(40, Ordering::Relaxed);
        m.repl_applied.store(38, Ordering::Relaxed);
        m.repl_resubscribes.store(1, Ordering::Relaxed);
        let cache = CacheStats {
            hits: 7,
            misses: 3,
            evictions: 1,
        };
        m.asof_hits.store(4, Ordering::Relaxed);
        m.drift_migrations.store(3, Ordering::Relaxed);
        m.drift_forced_full.store(9, Ordering::Relaxed);
        m.place_occupancy_q16.store(1 << 15, Ordering::Relaxed);
        m.place_shards.store(3, Ordering::Relaxed);
        m.place_rescales.store(2, Ordering::Relaxed);
        m.place_steals.store(7, Ordering::Relaxed);
        let s = m.snapshot(cache, 6, 2);
        assert_eq!(s.events_ingested, 10);
        assert_eq!(s.duplicates_dropped, 2);
        assert_eq!(s.queries_served, 5);
        assert!(s.ingest_p50_ns > 0);
        assert!(s.query_p50_ns > 0);
        assert!(s.precedes_p50_ns > 0);
        assert_eq!(s.cache_hits, 7);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.cache_evictions, 1);
        assert_eq!(s.repl_commit, 40);
        assert_eq!(s.repl_applied, 38);
        assert_eq!(s.repl_resubscribes, 1);
        assert_eq!(s.epochs_retained, 6);
        assert_eq!(s.epochs_retired, 2);
        assert_eq!(s.asof_hits, 4);
        assert_eq!(s.drift_migrations, 3);
        assert_eq!(s.drift_forced_full, 9);
        assert_eq!(s.place_occupancy_q16, 1 << 15);
        assert_eq!(s.place_shards, 3);
        assert_eq!(s.place_rescales, 2);
        assert_eq!(s.place_steals, 7);
    }
}
