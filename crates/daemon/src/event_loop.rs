//! The readiness-driven network front end: a small pool of poller threads
//! owning *all* connections through one epoll instance each.
//!
//! ## Architecture
//!
//! Every poller registers:
//!
//! - a dup of the shared listener, level-triggered `EPOLLIN | EPOLLEXCLUSIVE`
//!   (dup'd fds share the open file description, so the kernel wakes exactly
//!   one poller per connection burst — no thundering herd, and whichever
//!   poller accepts owns the socket from then on);
//! - a wake eventfd, through which [`DaemonShared::request_shutdown`] and
//!   flush-helper completions interrupt `epoll_wait`;
//! - an ingest-retry timerfd, armed one-shot whenever a connection parks a
//!   batch against a full ingest queue;
//! - on poller 0 only, the WAL group-commit timerfd: each expiry nudges
//!   every computation's worker to fsync a dirty WAL, replacing the old
//!   per-append window check in `pipeline.rs`.
//!
//! Connection sockets are edge-triggered (`EPOLLIN | EPOLLRDHUP | EPOLLET`):
//! each readiness edge drains the socket to `EAGAIN` into a
//! [`FrameBuffer`], and complete frames run the same session state machine
//! as the thread backend ([`crate::server`]). The two backends answer
//! byte-identically — the soak tests run both differentially.
//!
//! ## The per-connection state machine
//!
//! A connection is always in exactly one of these states, enforced by the
//! order of checks in [`Worker::pump`]:
//!
//! 1. **draining**: queued reply bytes flush until `EAGAIN`; a partial
//!    write arms `EPOLLOUT` (write backpressure) and the next writable
//!    edge resumes. Reply production stops while the write buffer is over
//!    its cap, so a client that stops reading cannot balloon the daemon.
//! 2. **parked on ingest**: a batch refused by a full ingest queue waits
//!    in `pending`; frame processing stops (order must be preserved) and
//!    the retry timer re-offers it. The poller thread itself NEVER blocks
//!    on the queue — that would stall every connection it owns.
//! 3. **blocked on flush**: a `Flush` barrier runs on a helper thread (it
//!    legitimately waits for the ingest pipeline); the reply re-enters
//!    through the completion queue + wake eventfd. Frame processing stops
//!    so replies stay in request order.
//! 4. **pumping**: otherwise, decode frames and answer inline — queries,
//!    hello, stats are all non-blocking against published snapshots.
//!
//! Closing (`Goodbye`, `Shutdown`, protocol errors) drains queued replies
//! first, then deregisters and drops the socket.

use crate::netpoll::{
    EpollEvent, EventFd, Poller, TimerFd, EPOLLERR, EPOLLET, EPOLLEXCLUSIVE, EPOLLHUP, EPOLLIN,
    EPOLLOUT, EPOLLRDHUP,
};
use crate::pipeline::{Computation, FlushError, TryEnqueue};
use crate::replication;
use crate::server::{
    cluster_map, hello, list_computations, lock, needs_protocol_2, needs_protocol_3,
    needs_protocol_4, needs_protocol_5, no_session, placement_result, read_only, refuse_overloaded,
    serve_query, time_travel_verb, DaemonShared,
};
use crate::wire::{self, code, write_msg, FrameBuffer, Msg};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TOK_LISTENER: u64 = 0;
const TOK_WAKE: u64 = 1;
const TOK_WAL: u64 = 2;
const TOK_RETRY: u64 = 3;
/// First connection token; below are the fixed per-poller fds.
const TOK_CONN0: u64 = 8;

/// Accepts per listener readiness before yielding back to the event loop.
const ACCEPT_BURST: usize = 256;

/// Stop producing replies while this many bytes are queued unsent.
const WBUF_CAP: usize = 1 << 20;

/// Listener backlog: a C10K connect storm must not see resets.
const LISTEN_BACKLOG: i32 = 4096;

/// Delay before re-offering a batch parked on a full ingest queue.
const RETRY_DELAY: Duration = Duration::from_millis(1);

/// How poller completions re-enter the loop: flush helpers push the reply
/// here and ring the eventfd.
struct PollerShared {
    wake: Arc<EventFd>,
    completions: Mutex<Vec<(u64, Msg)>>,
}

impl PollerShared {
    fn complete(&self, conn: u64, reply: Msg) {
        lock(&self.completions).push((conn, reply));
        self.wake.wake();
    }
}

struct Conn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    /// Encoded, not-yet-written reply bytes (`wpos` = sent prefix).
    wbuf: Vec<u8>,
    wpos: usize,
    session: Option<Arc<Computation>>,
    /// A batch the ingest queue refused; re-offered by the retry timer.
    pending: Option<Vec<cts_model::Event>>,
    /// A flush helper thread owns the next reply slot.
    blocked_on_flush: bool,
    /// The socket may have unread bytes (edge-triggered: readiness is
    /// remembered here, not re-reported by the kernel).
    read_ready: bool,
    /// Peer closed its write side; remaining buffered frames still run.
    eof: bool,
    /// Drain `wbuf`, then close.
    closing: bool,
    /// `EPOLLOUT` currently armed.
    want_write: bool,
    /// Message-set level negotiated via ProtoHello (level-2 verbs are
    /// refused below it).
    protocol: u16,
    /// A granted Subscribe: the poller hands the socket to a dedicated
    /// streamer thread (replication pushes for the connection's lifetime —
    /// the antithesis of a readiness loop's non-blocking contract).
    subscribe: Option<replication::Grant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            session: None,
            pending: None,
            blocked_on_flush: false,
            read_ready: false,
            eof: false,
            closing: false,
            want_write: false,
            protocol: 1,
            subscribe: None,
        }
    }

    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn queue_msg(&mut self, msg: &Msg) {
        // Writing into a Vec cannot fail.
        write_msg(&mut self.wbuf, msg).expect("vec write");
    }

    fn interest(&self) -> u32 {
        let mut i = EPOLLIN | EPOLLRDHUP | EPOLLET;
        if self.want_write {
            i |= EPOLLOUT;
        }
        i
    }
}

/// How many pollers `config.pollers = 0` resolves to.
fn auto_pollers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Start the poller pool on `listener`. Returns the poller join handles;
/// they exit when [`DaemonShared::request_shutdown`] runs.
pub(crate) fn start(
    listener: TcpListener,
    shared: Arc<DaemonShared>,
) -> io::Result<Vec<std::thread::JoinHandle<()>>> {
    listener.set_nonblocking(true)?;
    // Best-effort capacity raises: a refused setrlimit or listen just
    // lowers the ceiling, it does not break the backend.
    let _ = crate::netpoll::raise_backlog(listener.as_raw_fd(), LISTEN_BACKLOG);
    let _ = crate::netpoll::raise_nofile_to_hard();
    let n = match shared.config.pollers {
        0 => auto_pollers(),
        n => n,
    };
    // With --pin-cores, pollers take CPUs from the back of the topology's
    // candidate list — shard workers take theirs from the front, so the two
    // pools stay disjoint whenever the host has enough cores.
    let plan = if shared.config.pin_cores {
        crate::topology::CpuTopology::discover()
            .ok()
            .map(|t| t.plan(0, n))
    } else {
        None
    };
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let mut worker = Worker::new(i, listener.try_clone()?, Arc::clone(&shared))?;
        let cpu = plan.as_ref().map(|pl| pl.poller_cpus[i]);
        handles.push(
            std::thread::Builder::new()
                .name(format!("cts-daemon-poll-{i}"))
                .spawn(move || {
                    if let Some(cpu) = cpu {
                        let _ = crate::netpoll::pin_current_thread(cpu);
                    }
                    worker.run()
                })?,
        );
    }
    Ok(handles)
}

struct Worker {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<DaemonShared>,
    ps: Arc<PollerShared>,
    /// Poller 0 only: the WAL group-commit clock.
    wal_timer: Option<TimerFd>,
    retry_timer: TimerFd,
    retry_armed: bool,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    scratch: Vec<u8>,
}

impl Worker {
    fn new(index: usize, listener: TcpListener, shared: Arc<DaemonShared>) -> io::Result<Worker> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), EPOLLIN | EPOLLEXCLUSIVE, TOK_LISTENER)?;
        let wake = Arc::new(EventFd::new()?);
        poller.add(wake.fd(), EPOLLIN, TOK_WAKE)?;
        lock(&shared.net_wakes).push(Arc::clone(&wake));
        let wal_timer = if index == 0
            && shared.config.data_dir.is_some()
            && !shared.config.sync_window.is_zero()
        {
            let t = TimerFd::new()?;
            t.set_periodic(shared.config.sync_window)?;
            poller.add(t.fd(), EPOLLIN, TOK_WAL)?;
            Some(t)
        } else {
            None
        };
        let retry_timer = TimerFd::new()?;
        poller.add(retry_timer.fd(), EPOLLIN, TOK_RETRY)?;
        Ok(Worker {
            poller,
            listener,
            shared,
            ps: Arc::new(PollerShared {
                wake,
                completions: Mutex::new(Vec::new()),
            }),
            wal_timer,
            retry_timer,
            retry_armed: false,
            conns: HashMap::new(),
            next_token: TOK_CONN0,
            scratch: vec![0u8; 64 * 1024],
        })
    }

    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            if self.shared.shutting_down() {
                self.shutdown_conns();
                return;
            }
            let n = match self.poller.wait(&mut events, -1) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("[cts-daemon] poller died: {e}");
                    return;
                }
            };
            for ev in &events[..n] {
                let (token, ready) = (ev.data, ev.events);
                match token {
                    TOK_LISTENER => self.accept_burst(),
                    TOK_WAKE => {
                        self.ps.wake.drain();
                        self.drain_completions();
                    }
                    TOK_WAL => {
                        if let Some(t) = &self.wal_timer {
                            t.drain();
                        }
                        self.nudge_wal_windows();
                    }
                    TOK_RETRY => {
                        self.retry_timer.drain();
                        self.retry_armed = false;
                        self.retry_parked();
                    }
                    id => self.on_conn_event(id, ready),
                }
                if self.shared.shutting_down() {
                    break;
                }
            }
        }
    }

    /// Accept until `EAGAIN` (or a burst cap, to keep latency fair for the
    /// connections already owned).
    fn accept_burst(&mut self) {
        for _ in 0..ACCEPT_BURST {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Out of fds (EMFILE/ENFILE) or a transient accept
                    // error: leave the rest in the backlog and come back
                    // on the next readiness report.
                    eprintln!("[cts-daemon] accept failed: {e}");
                    break;
                }
            };
            if self.shared.shutting_down() {
                return;
            }
            if self.shared.spawns_failing() {
                // The injected-exhaustion hook applies to both backends so
                // the OVERLOADED regression runs parameterized.
                refuse_overloaded(stream, &self.shared, "cannot take new connections");
                continue;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let id = self.next_token;
            self.next_token += 1;
            let conn = Conn::new(stream);
            if self
                .poller
                .add(conn.stream.as_raw_fd(), conn.interest(), id)
                .is_err()
            {
                continue;
            }
            self.shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
            self.shared.live_conns.fetch_add(1, Ordering::AcqRel);
            self.conns.insert(id, conn);
        }
    }

    fn on_conn_event(&mut self, id: u64, ready: u32) {
        // Take the connection out of the map for the duration of the pump
        // (split-borrow dance: pump needs &mut self for timers/epoll).
        let Some(mut conn) = self.conns.remove(&id) else {
            return; // stale event for an already-closed connection
        };
        if ready & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
            conn.read_ready = true;
        }
        match self.pump(id, &mut conn) {
            Pump::Keep => {
                self.conns.insert(id, conn);
            }
            Pump::Close => self.close_conn(conn),
            Pump::Handoff => self.handoff_subscription(conn),
        }
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        // conn drops here, closing the socket.
    }

    /// Drive one connection as far as it can go without blocking. Returns
    /// whether to keep it, close it, or hand it to a replication streamer.
    fn pump(&mut self, id: u64, conn: &mut Conn) -> Pump {
        loop {
            // 1. Drain queued replies first — freeing reply buffer is what
            //    un-gates everything else.
            match self.flush_writes(id, conn) {
                Ok(()) => {}
                Err(_) => return Pump::Close,
            }
            if conn.closing {
                // Keep only to finish draining; EPOLLOUT re-enters here.
                return if conn.unsent() > 0 {
                    Pump::Keep
                } else {
                    Pump::Close
                };
            }
            // 2. A parked batch must go first (order within the stream).
            if let Some(batch) = conn.pending.take() {
                match self.offer_ingest(conn, batch) {
                    Offer::Accepted => continue,
                    Offer::Parked => return Pump::Keep,
                    Offer::Closed => continue, // error already queued
                }
            }
            // 3. A flush in flight owns the next reply slot.
            if conn.blocked_on_flush {
                return Pump::Keep;
            }
            // 4. Write backpressure: stop producing replies (and reading)
            //    until the peer drains what it already asked for.
            if conn.unsent() >= WBUF_CAP {
                return Pump::Keep;
            }
            // 5. Next frame, or more bytes.
            match conn.rbuf.next_frame() {
                Ok(Some(payload)) => {
                    if !self.handle_frame(id, conn, &payload) {
                        return Pump::Close;
                    }
                    if conn.subscribe.is_some() {
                        // Granted Subscribe: the connection leaves the
                        // readiness loop (the streamer writes the queued
                        // SubscribeAck and everything after it).
                        return Pump::Handoff;
                    }
                }
                Ok(None) => {
                    if conn.read_ready {
                        if self.fill_rbuf(conn).is_err() {
                            return Pump::Close;
                        }
                    } else if conn.eof {
                        // All complete frames processed; a dangling partial
                        // frame is a mid-frame hangup either way.
                        return if conn.unsent() > 0 {
                            conn.closing = true;
                            Pump::Keep
                        } else {
                            Pump::Close
                        };
                    } else {
                        return Pump::Keep; // wait for the next readiness edge
                    }
                }
                Err(_) => return Pump::Close, // oversized frame: hang up
            }
        }
    }

    /// Move a granted subscription off the poller: deregister the socket,
    /// restore blocking mode, and run the stream on a dedicated thread (it
    /// pushes for the connection's lifetime, which a poller thread must
    /// never do).
    fn handoff_subscription(&mut self, conn: Conn) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        let shared = Arc::clone(&self.shared);
        let Conn {
            stream,
            wbuf,
            wpos,
            subscribe,
            ..
        } = conn;
        let Some(grant) = subscribe else {
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            return;
        };
        let spawned = std::thread::Builder::new()
            .name("cts-repl-stream".into())
            .spawn(move || {
                let mut stream = stream;
                let r = (|| -> io::Result<()> {
                    stream.set_nonblocking(false)?;
                    // Queued replies (ending in the SubscribeAck) go first.
                    stream.write_all(&wbuf[wpos..])?;
                    replication::serve_subscription(stream, &shared, &grant)
                })();
                if let Err(e) = r {
                    eprintln!(
                        "[cts-daemon] replication stream for {:?} ended: {e}",
                        grant.comp.name
                    );
                }
                shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            // Thread exhaustion: the follower sees the hangup and retries.
            self.shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Read the socket to `EAGAIN` (edge-triggered contract) into the
    /// frame buffer.
    fn fill_rbuf(&mut self, conn: &mut Conn) -> Result<(), ()> {
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.eof = true;
                    conn.read_ready = false;
                    return Ok(());
                }
                Ok(n) => {
                    conn.rbuf.extend(&self.scratch[..n]);
                    // Process what we have before reading more once a
                    // decent chunk is buffered — bounds rbuf growth.
                    if conn.rbuf.pending() >= WBUF_CAP {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.read_ready = false;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
    }

    /// Write queued bytes to `EAGAIN`, arming/disarming `EPOLLOUT` as the
    /// drain state changes.
    fn flush_writes(&mut self, id: u64, conn: &mut Conn) -> Result<(), ()> {
        while conn.unsent() > 0 {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return Err(()),
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self
                            .poller
                            .modify(conn.stream.as_raw_fd(), conn.interest(), id);
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.want_write {
            conn.want_write = false;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.interest(), id);
        }
        Ok(())
    }

    /// Offer a batch to the ingest queue without blocking.
    fn offer_ingest(&mut self, conn: &mut Conn, batch: Vec<cts_model::Event>) -> Offer {
        let Some(comp) = conn.session.as_ref() else {
            conn.queue_msg(&no_session());
            return Offer::Closed;
        };
        match comp.try_enqueue_events(batch) {
            Ok(()) => Offer::Accepted,
            Err(TryEnqueue::Backpressure(leftover)) => {
                conn.pending = Some(leftover);
                self.arm_retry();
                Offer::Parked
            }
            Err(TryEnqueue::Closed) => {
                conn.queue_msg(&Msg::Error {
                    code: code::SHUTTING_DOWN,
                    message: "computation is shut down".into(),
                });
                Offer::Closed
            }
        }
    }

    fn arm_retry(&mut self) {
        if !self.retry_armed {
            let _ = self.retry_timer.set_oneshot(RETRY_DELAY);
            self.retry_armed = true;
        }
    }

    /// Retry every parked connection; re-arm if any stay parked.
    fn retry_parked(&mut self) {
        let parked: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.pending.is_some())
            .map(|(id, _)| *id)
            .collect();
        for id in parked {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            match self.pump(id, &mut conn) {
                Pump::Keep => {
                    self.conns.insert(id, conn);
                }
                Pump::Close => self.close_conn(conn),
                Pump::Handoff => self.handoff_subscription(conn),
            }
        }
    }

    /// Flush-helper completions: queue the reply and resume the stream.
    fn drain_completions(&mut self) {
        let done: Vec<(u64, Msg)> = std::mem::take(&mut *lock(&self.ps.completions));
        for (id, reply) in done {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue; // the connection died while its flush ran
            };
            conn.blocked_on_flush = false;
            conn.queue_msg(&reply);
            match self.pump(id, &mut conn) {
                Pump::Keep => {
                    self.conns.insert(id, conn);
                }
                Pump::Close => self.close_conn(conn),
                Pump::Handoff => self.handoff_subscription(conn),
            }
        }
    }

    /// Group-commit tick: fsync every computation's dirty WAL.
    fn nudge_wal_windows(&self) {
        let comps: Vec<_> = lock(&self.shared.computations).values().cloned().collect();
        for comp in comps {
            comp.nudge_wal_sync();
        }
    }

    /// One decoded frame through the session state machine. Returns false
    /// to drop the connection immediately.
    fn handle_frame(&mut self, id: u64, conn: &mut Conn, payload: &[u8]) -> bool {
        let msg = match Msg::decode(payload) {
            Ok(m) => m,
            Err(e) => {
                let code = match e {
                    wire::WireError::BadVersion(_) => code::BAD_VERSION,
                    // Unknown verb from a newer message set: typed refusal,
                    // connection stays up.
                    wire::WireError::BadTag(_) => code::UNSUPPORTED,
                    _ => code::MALFORMED,
                };
                conn.queue_msg(&Msg::Error {
                    code,
                    message: e.to_string(),
                });
                if code == code::BAD_VERSION {
                    conn.closing = true; // no common language; hang up
                }
                return true;
            }
        };
        if self.shared.recovering.load(Ordering::Acquire)
            && !matches!(msg, Msg::Shutdown | Msg::Goodbye)
        {
            conn.queue_msg(&Msg::Error {
                code: code::RECOVERING,
                message: "daemon is recovering; retry shortly".into(),
            });
            return true;
        }
        match msg {
            Msg::Hello {
                computation,
                num_processes,
                max_cluster_size,
            } => match hello(&self.shared, computation, num_processes, max_cluster_size) {
                Ok((comp, existing)) => {
                    conn.session = Some(comp);
                    let session = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
                    conn.queue_msg(&Msg::HelloAck { session, existing });
                }
                Err(message) => conn.queue_msg(&Msg::Error {
                    code: code::BAD_HELLO,
                    message,
                }),
            },
            Msg::Events(events) => {
                if self.shared.config.follow.is_some() {
                    conn.queue_msg(&read_only());
                    return true;
                }
                let Some(comp) = conn.session.as_ref() else {
                    conn.queue_msg(&no_session());
                    return true;
                };
                if let Some(bad) = events.iter().find(|e| e.process().0 >= comp.num_processes) {
                    conn.queue_msg(&Msg::Error {
                        code: code::MALFORMED,
                        message: format!(
                            "event {} names process {} outside 0..{}",
                            bad.id,
                            bad.process().0,
                            comp.num_processes
                        ),
                    });
                    return true;
                }
                let _ = self.offer_ingest(conn, events);
            }
            Msg::Flush { expected_total } => {
                if self.shared.config.follow.is_some() {
                    conn.queue_msg(&read_only());
                    return true;
                }
                let Some(comp) = conn.session.as_ref() else {
                    conn.queue_msg(&no_session());
                    return true;
                };
                // A flush legitimately waits (possibly seconds) for the
                // pipeline — never on the poller thread. A helper carries
                // it and completes through the wake eventfd.
                let comp = Arc::clone(comp);
                let ps = Arc::clone(&self.ps);
                let timeout = self.shared.config.flush_timeout;
                let spawned = std::thread::Builder::new()
                    .name("cts-daemon-flush".into())
                    .spawn(move || {
                        let reply = match comp.flush(expected_total, timeout) {
                            Ok((epoch, delivered)) => Msg::FlushAck { epoch, delivered },
                            Err(FlushError::Timeout { delivered }) => Msg::Error {
                                code: code::FLUSH_TIMEOUT,
                                message: format!(
                                    "flush target {expected_total} not reached \
                                     (delivered {delivered})"
                                ),
                            },
                            Err(FlushError::Closed) => Msg::Error {
                                code: code::SHUTTING_DOWN,
                                message: "computation is shut down".into(),
                            },
                        };
                        ps.complete(id, reply);
                    });
                match spawned {
                    Ok(_) => conn.blocked_on_flush = true,
                    // Thread exhaustion degrades this one request, not the
                    // daemon: the client backs off and retries.
                    Err(_) => conn.queue_msg(&Msg::Error {
                        code: code::OVERLOADED,
                        message: "cannot service flush right now; retry".into(),
                    }),
                }
            }
            Msg::QueryPrecedes { .. }
            | Msg::QueryGreatestConcurrent { .. }
            | Msg::QueryWindow { .. }
            | Msg::QueryPrecedesBatch { .. }
            | Msg::QueryGcBatch { .. } => {
                let Some(comp) = conn.session.as_ref() else {
                    conn.queue_msg(&no_session());
                    return true;
                };
                let reply = serve_query(comp, &self.shared.query_pool, &msg);
                conn.queue_msg(&reply);
            }
            Msg::QueryAsOfPrecedes { .. }
            | Msg::QueryAsOfGc { .. }
            | Msg::QueryAsOfWindow { .. }
            | Msg::ListEpochs
            | Msg::ReplayInterval { .. } => {
                let reply = if conn.protocol < 3 {
                    needs_protocol_3(time_travel_verb(&msg))
                } else if let Some(comp) = conn.session.as_ref() {
                    serve_query(comp, &self.shared.query_pool, &msg)
                } else {
                    no_session()
                };
                conn.queue_msg(&reply);
            }
            Msg::QueryClusterMap => {
                let reply = if conn.protocol < 4 {
                    needs_protocol_4("QueryClusterMap")
                } else if let Some(comp) = conn.session.as_ref() {
                    cluster_map(comp)
                } else {
                    no_session()
                };
                conn.queue_msg(&reply);
            }
            Msg::QueryPlacement => {
                let reply = if conn.protocol < 5 {
                    needs_protocol_5("QueryPlacement")
                } else if let Some(comp) = conn.session.as_ref() {
                    placement_result(comp)
                } else {
                    no_session()
                };
                conn.queue_msg(&reply);
            }
            Msg::Stats => {
                let Some(comp) = conn.session.as_ref() else {
                    conn.queue_msg(&no_session());
                    return true;
                };
                let retainer = comp.retainer();
                let stats = comp.metrics().snapshot(
                    comp.query_cache().stats(),
                    retainer.retained(),
                    retainer.retired(),
                );
                conn.queue_msg(&Msg::StatsResult(stats));
            }
            Msg::ProtoHello {
                protocol_max,
                wal_max,
            } => {
                conn.protocol = protocol_max.min(wire::PROTOCOL);
                conn.queue_msg(&Msg::ProtoHelloAck {
                    protocol: conn.protocol,
                    wal: wal_max.min(wire::WAL_FORMAT),
                });
            }
            Msg::ListComputations => {
                let reply = if conn.protocol < 2 {
                    needs_protocol_2("ListComputations")
                } else {
                    Msg::ComputationList {
                        comps: list_computations(&self.shared),
                    }
                };
                conn.queue_msg(&reply);
            }
            Msg::Subscribe {
                computation,
                from_offset,
                prev_lease,
            } => match replication::check_subscribe(
                &self.shared,
                conn.protocol,
                &computation,
                from_offset,
                prev_lease,
            ) {
                Ok(grant) => {
                    conn.queue_msg(&grant.ack(&self.shared));
                    conn.subscribe = Some(grant); // pump hands the socket off
                }
                Err(refusal) => conn.queue_msg(&refusal),
            },
            Msg::Shutdown => {
                conn.queue_msg(&Msg::ShutdownAck);
                conn.closing = true;
                self.shared.request_shutdown();
            }
            Msg::Goodbye => {
                conn.closing = true;
            }
            _ => {
                conn.queue_msg(&Msg::Error {
                    code: code::MALFORMED,
                    message: "server-side message sent by client".into(),
                });
            }
        }
        true
    }

    /// Best-effort shutdown notice to every connection, then drop them all.
    fn shutdown_conns(&mut self) {
        let conns: Vec<Conn> = std::mem::take(&mut self.conns).into_values().collect();
        for mut conn in conns {
            if !conn.closing {
                conn.queue_msg(&Msg::Error {
                    code: code::SHUTTING_DOWN,
                    message: "daemon is shutting down".into(),
                });
            }
            while conn.unsent() > 0 {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(n) if n > 0 => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    _ => break, // would block or closed: best effort only
                }
            }
            self.close_conn(conn);
        }
    }
}

enum Offer {
    Accepted,
    Parked,
    Closed,
}

/// Outcome of [`Worker::pump`].
enum Pump {
    Keep,
    Close,
    /// A granted Subscribe: hand the socket to a streamer thread.
    Handoff,
}
