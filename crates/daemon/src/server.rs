//! The TCP daemon: network front end, per-connection sessions, graceful
//! shutdown.
//!
//! Two network backends share the same session semantics:
//!
//! - [`NetBackend::Epoll`] (Linux, the default): a small pool of poller
//!   threads (see [`crate::event_loop`]) owns *all* sockets via
//!   edge-triggered readiness — non-blocking accept, partial-frame
//!   reassembly, write backpressure by re-arming `EPOLLOUT`, and a timerfd
//!   in the same epoll set driving WAL group-commit windows. Connection
//!   count is bounded by fds, not threads.
//! - [`NetBackend::Threads`]: one *accept* thread owns the listener and
//!   spawns one *connection* thread per client. Sockets carry a short read
//!   timeout so idle connections poll the shutdown flag. This is the
//!   portable fallback and the differential oracle the epoll backend is
//!   tested against.
//!
//! Either way, one *ingest worker* thread (or shard pool) per computation
//! does the actual clustering work (see [`crate::pipeline::Computation`]).
//!
//! Shutdown is cooperative: [`Daemon::shutdown`] raises the flag, wakes the
//! pollers (eventfd) or the accept loop (loopback connect), joins the
//! network threads, then shuts every computation down (drop the master
//! sender → the worker drains its queue, publishes a final snapshot, and
//! exits).

use crate::checkpoint;
use crate::pipeline::{Computation, ComputationConfig, DurabilityConfig, FlushError, Snapshot};
use crate::query_pool::QueryPool;
use crate::replication;
use crate::shard::{PlacementParams, StampStrategy};
use crate::wire::{self, code, recv_frame, write_msg, CompInfo, Msg, Recv};
use cts_core::cluster::AdaptiveParams;
use cts_model::{EventId, EventIndex, ProcessId};
use cts_store::queries::{greatest_concurrent, PrecedenceBackend};
use cts_store::{CachedClusterBackend, EpochRetainer, SharedQueryCache};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which network front end serves connections.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetBackend {
    /// Readiness-driven poller pool over epoll (Linux only; selecting it
    /// elsewhere falls back to [`NetBackend::Threads`] loudly).
    Epoll,
    /// Thread-per-connection with a polling read timeout.
    Threads,
}

impl Default for NetBackend {
    fn default() -> NetBackend {
        if cfg!(target_os = "linux") {
            NetBackend::Epoll
        } else {
            NetBackend::Threads
        }
    }
}

/// Daemon-wide tunables.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: SocketAddr,
    /// Network front end (default: epoll on Linux, threads elsewhere).
    pub net: NetBackend,
    /// Poller threads for the epoll backend; `0` = one per core, capped
    /// at 4 (pollers do little CPU work per event — more just shards the
    /// fd space).
    pub pollers: usize,
    /// Connection-thread ceiling for the thread backend: connections past
    /// it are refused with `code::OVERLOADED` instead of spawning a thread
    /// that may abort the process.
    pub max_conn_threads: usize,
    /// Ingest queue bound per computation, in batches.
    pub queue_capacity: usize,
    /// Snapshot publication cadence, in delivered events.
    pub epoch_every: u64,
    /// Socket read timeout: how often idle connections poll the shutdown
    /// flag.
    pub poll_interval: Duration,
    /// How long a `Flush` barrier may wait before reporting a stall.
    pub flush_timeout: Duration,
    /// Root data directory for durable computations (one subdirectory
    /// each). `None` = fully in-memory, the pre-durability behavior. On
    /// start, every subdirectory with a valid `meta` file is recovered in
    /// the background; the daemon answers `RECOVERING` until that is done.
    pub data_dir: Option<PathBuf>,
    /// WAL group-commit window (see [`DurabilityConfig::sync_window`]).
    pub sync_window: Duration,
    /// Checkpoint cadence in delivered events, `0` = WAL only (see
    /// [`DurabilityConfig::checkpoint_every`]).
    pub checkpoint_every: u64,
    /// Test failpoint (see [`DurabilityConfig::wal_byte_budget`]).
    pub wal_byte_budget: Option<u64>,
    /// Ingest shards per computation (see [`ComputationConfig::shards`]);
    /// `1` = the classic single-worker pipeline.
    pub shards: u32,
    /// `--shards auto`: live shard autoscaling — start at `shards` (at
    /// least 2) and let the placement engine split hot shards and retire
    /// cold ones between batches (see [`ComputationConfig::auto_scale`]).
    pub auto_scale: bool,
    /// `--balance`: cluster stealing at a fixed shard count.
    pub balance: bool,
    /// `--pin-cores`: pin shard workers, pollers, and the WAL clock to
    /// topology-chosen CPUs (Linux; silently unpinned elsewhere or when
    /// sysfs discovery fails).
    pub pin_cores: bool,
    /// Placement-engine tuning (EWMA shift, cooldown, hot/cold thresholds,
    /// shard-count bounds). `None` = [`PlacementParams::default`]. A finite
    /// `max_shards` also raises the pre-allocated slot count past the
    /// host's parallelism, which is how soaks force splits on small hosts.
    pub placement: Option<PlacementParams>,
    /// Entry bound per layer of each computation's shared query cache;
    /// `0` selects [`crate::pipeline::DEFAULT_QUERY_CACHE_CAPACITY`].
    pub query_cache_capacity: usize,
    /// Worker threads for batched queries; `0` picks a host-sized default
    /// ([`QueryPool::default_size`]), `1` evaluates batches inline.
    pub query_workers: usize,
    /// Follower mode: replicate this leader's computations and serve reads
    /// from them. Writes (`Events`, `Flush`) over the wire are refused with
    /// [`code::READ_ONLY`]; see [`crate::replication`].
    pub follow: Option<SocketAddr>,
    /// Published epochs kept answerable for time-travel reads; `0` selects
    /// [`crate::pipeline::DEFAULT_RETAIN_EPOCHS`].
    pub retain_epochs: usize,
    /// Byte budget across retained epochs, `0` = unlimited (the epoch count
    /// cap still applies).
    pub retain_bytes: u64,
    /// Online adaptive re-clustering: when set, computations stamp under
    /// [`StampStrategy::Adaptive`] with these parameters (the per-computation
    /// `Hello` max cluster size overrides the one in the params). `None` =
    /// the classic merge-on-first policy.
    pub adaptive: Option<AdaptiveParams>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            net: NetBackend::default(),
            pollers: 0,
            max_conn_threads: 4096,
            queue_capacity: 64,
            epoch_every: 4096,
            poll_interval: Duration::from_millis(50),
            flush_timeout: Duration::from_secs(60),
            data_dir: None,
            sync_window: Duration::from_millis(5),
            checkpoint_every: 100_000,
            wal_byte_budget: None,
            shards: 1,
            auto_scale: false,
            balance: false,
            pin_cores: false,
            placement: None,
            query_cache_capacity: 0,
            query_workers: 0,
            follow: None,
            retain_epochs: 0,
            retain_bytes: 0,
            adaptive: None,
        }
    }
}

pub(crate) struct DaemonShared {
    pub(crate) config: DaemonConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cond: Condvar,
    pub(crate) computations: Mutex<HashMap<String, Arc<Computation>>>,
    /// Thread backend only: join handles of live connection threads.
    /// Finished handles are reaped on every accept, so the registry is
    /// bounded by *concurrent* connections, not total served.
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pub(crate) next_session: AtomicU64,
    /// True while startup recovery replays on-disk state; every request
    /// except `Shutdown`/`Goodbye` is refused with `RECOVERING` until then.
    pub(crate) recovering: AtomicBool,
    /// Shared worker pool for batched query evaluation.
    pub(crate) query_pool: QueryPool,
    /// Connections currently being served (either backend).
    pub(crate) live_conns: AtomicU64,
    /// Connections accepted / refused-with-OVERLOADED since start.
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_refused: AtomicU64,
    /// Test hook: force the connection-spawn path to fail as if the OS
    /// were out of threads, exercising the OVERLOADED degradation.
    fail_spawns: AtomicBool,
    /// This leader's incarnation number (persisted in `data_dir/
    /// leader.epoch`, incremented every start); the high half of every
    /// granted replication lease. `1` for in-memory daemons (which refuse
    /// `Subscribe` anyway).
    pub(crate) leader_epoch: u64,
    /// Low-half counter for minting replication leases.
    pub(crate) lease_counter: AtomicU64,
    /// Epoll backend: one wake eventfd per poller, so shutdown (and flush
    /// completions) can interrupt `epoll_wait`.
    #[cfg(target_os = "linux")]
    pub(crate) net_wakes: Mutex<Vec<Arc<crate::netpoll::EventFd>>>,
}

/// A running daemon. Dropping it without [`shutdown`](Daemon::shutdown)
/// leaves the threads running until process exit; tests and the binary
/// always shut down explicitly.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    recovery_thread: Option<std::thread::JoinHandle<()>>,
    /// Epoll backend: the poller pool.
    poller_threads: Vec<std::thread::JoinHandle<()>>,
    /// Thread backend with durability: the group-commit clock (the epoll
    /// backend drives the same windows from a timerfd instead).
    wal_clock: Option<std::thread::JoinHandle<()>>,
    /// `--follow` mode: the replication runtime (discovery + per-computation
    /// stream workers).
    follower_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind and start serving. With a [`DaemonConfig::data_dir`], on-disk
    /// computations are recovered in the background; queries answer
    /// `RECOVERING` until [`is_recovering`](Self::is_recovering) is false.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;

        // Find computation directories to recover before serving.
        let mut recover_dirs: Vec<PathBuf> = Vec::new();
        if let Some(root) = &config.data_dir {
            std::fs::create_dir_all(root)?;
            for entry in std::fs::read_dir(root)? {
                let path = entry?.path();
                if path.is_dir() && path.join("meta").is_file() {
                    recover_dirs.push(path);
                }
            }
            recover_dirs.sort();
        }

        let query_pool = QueryPool::new(match config.query_workers {
            0 => QueryPool::default_size(),
            n => n,
        });
        // Mint this start's leader incarnation before serving: leases
        // granted by a previous incarnation must be recognizably stale from
        // the very first Subscribe.
        let leader_epoch = match &config.data_dir {
            Some(root) => replication::next_leader_epoch(root),
            None => 1,
        };
        let shared = Arc::new(DaemonShared {
            config,
            addr,
            shutdown: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cond: Condvar::new(),
            computations: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
            recovering: AtomicBool::new(!recover_dirs.is_empty()),
            query_pool,
            live_conns: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            fail_spawns: AtomicBool::new(false),
            leader_epoch,
            lease_counter: AtomicU64::new(0),
            #[cfg(target_os = "linux")]
            net_wakes: Mutex::new(Vec::new()),
        });
        let recovery_thread = if recover_dirs.is_empty() {
            None
        } else {
            let rec_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cts-daemon-recovery".into())
                    .spawn(move || recover_all(&rec_shared, recover_dirs))
                    .expect("spawn recovery thread"),
            )
        };

        // Bring up the requested network front end; an epoll backend that
        // cannot initialize degrades (loudly) to the thread backend rather
        // than refusing to serve.
        let mut poller_threads = Vec::new();
        let mut accept_thread = None;
        let mut wal_clock = None;
        let mut use_threads = shared.config.net == NetBackend::Threads;
        #[cfg(target_os = "linux")]
        if !use_threads {
            match crate::event_loop::start(listener.try_clone()?, Arc::clone(&shared)) {
                Ok(handles) => poller_threads = handles,
                Err(e) => {
                    eprintln!(
                        "[cts-daemon] epoll front end failed to start, \
                         falling back to thread-per-connection: {e}"
                    );
                    use_threads = true;
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        if !use_threads {
            eprintln!("[cts-daemon] epoll front end is Linux-only; using threads");
            use_threads = true;
        }
        if use_threads {
            let accept_shared = Arc::clone(&shared);
            accept_thread = Some(
                std::thread::Builder::new()
                    .name("cts-daemon-accept".into())
                    .spawn(move || accept_loop(listener, accept_shared))
                    .expect("spawn accept thread"),
            );
            // Group-commit clock: ticks every sync window and nudges each
            // computation's WAL (the epoll backend registers a timerfd for
            // this instead). Zero-window configs sync inline on append and
            // need no clock.
            if shared.config.data_dir.is_some() && !shared.config.sync_window.is_zero() {
                let clock_shared = Arc::clone(&shared);
                #[cfg(target_os = "linux")]
                let clock_cpu = if shared.config.pin_cores {
                    crate::topology::CpuTopology::discover()
                        .ok()
                        .and_then(|t| t.plan(0, 0).wal_clock_cpu)
                } else {
                    None
                };
                wal_clock = Some(
                    std::thread::Builder::new()
                        .name("cts-daemon-walclock".into())
                        .spawn(move || {
                            #[cfg(target_os = "linux")]
                            if let Some(cpu) = clock_cpu {
                                let _ = crate::netpoll::pin_current_thread(cpu);
                            }
                            wal_clock_loop(&clock_shared)
                        })
                        .expect("spawn wal clock thread"),
                );
            }
        }
        // Follower mode: replicate the leader's computations in the
        // background (the runtime waits out our own recovery first).
        let follower_thread = shared.config.follow.map(|leader| {
            let f_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cts-daemon-follow".into())
                .spawn(move || replication::follower_runtime(f_shared, leader))
                .expect("spawn follower runtime")
        });
        Ok(Daemon {
            shared,
            accept_thread,
            recovery_thread,
            poller_threads,
            wal_clock,
            follower_thread,
        })
    }

    /// Is startup recovery still replaying on-disk state?
    pub fn is_recovering(&self) -> bool {
        self.shared.recovering.load(Ordering::Acquire)
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Ask the daemon to stop (also triggered by the wire `Shutdown`
    /// message). Returns immediately; pair with [`shutdown`](Self::shutdown)
    /// to join.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until someone requests shutdown.
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = lock(&self.shared.shutdown_signal);
        while !*requested {
            requested = self
                .shared
                .shutdown_cond
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Graceful shutdown: stop accepting, drain connections, finish every
    /// computation's queue, join all threads. Durable computations sync
    /// their WAL and write a final checkpoint on the way out.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_net_threads();
        let comps: Vec<_> = lock(&self.shared.computations).drain().collect();
        for (_, comp) in comps {
            comp.shutdown();
        }
        self.shared.query_pool.shutdown();
    }

    /// Crash-stop for recovery testing: like [`shutdown`](Self::shutdown)
    /// but every ingest worker exits *without* the final WAL sync,
    /// checkpoint, or snapshot, and queued batches are discarded. On-disk
    /// state is whatever the group-commit discipline last made durable.
    pub fn kill(mut self) {
        self.shared.request_shutdown();
        self.join_net_threads();
        let comps: Vec<_> = lock(&self.shared.computations).drain().collect();
        for (_, comp) in comps {
            comp.kill();
        }
        self.shared.query_pool.shutdown();
    }

    fn join_net_threads(&mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.recovery_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.wal_clock.take() {
            let _ = h.join();
        }
        if let Some(h) = self.follower_thread.take() {
            let _ = h.join();
        }
        for h in self.poller_threads.drain(..) {
            let _ = h.join();
        }
        let conns: Vec<_> = lock(&self.shared.conns).drain(..).collect();
        for h in conns {
            let _ = h.join();
        }
    }

    /// Connections currently being served (either backend).
    pub fn live_connections(&self) -> u64 {
        self.shared.live_conns.load(Ordering::Acquire)
    }

    /// Connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.conns_accepted.load(Ordering::Acquire)
    }

    /// Connections refused with `OVERLOADED` since start.
    pub fn connections_refused(&self) -> u64 {
        self.shared.conns_refused.load(Ordering::Acquire)
    }

    /// Thread backend: current size of the connection-handle registry.
    /// Bounded by concurrent connections (finished handles are reaped on
    /// accept) — the regression surface for the old unbounded push.
    pub fn conn_registry_len(&self) -> usize {
        lock(&self.shared.conns).len()
    }

    /// Test hook: make connection-thread spawning fail as if the OS were
    /// out of threads, so tests can exercise the OVERLOADED path without
    /// actually exhausting the host.
    #[doc(hidden)]
    pub fn inject_spawn_failure(&self, fail: bool) {
        self.shared.fail_spawns.store(fail, Ordering::Release);
    }

    /// WAL durability barriers issued for `computation` so far, or `None`
    /// if the daemon has no such computation. A process-local observable
    /// for the group-commit tests (not on the wire).
    #[doc(hidden)]
    pub fn wal_syncs(&self, computation: &str) -> Option<u64> {
        lock(&self.shared.computations)
            .get(computation)
            .map(|c| c.metrics().wal_syncs.load(Ordering::Acquire))
    }
}

impl DaemonShared {
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        *lock(&self.shutdown_signal) = true;
        self.shutdown_cond.notify_all();
        // Wake the epoll pollers out of epoll_wait.
        #[cfg(target_os = "linux")]
        for wake in lock(&self.net_wakes).iter() {
            wake.wake();
        }
        // Nudge a thread-backend accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn spawns_failing(&self) -> bool {
        self.fail_spawns.load(Ordering::Acquire)
    }
}

/// Refuse a connection with `OVERLOADED` (best effort — the peer may
/// already be gone) without taking it into the session machinery.
pub(crate) fn refuse_overloaded(mut stream: TcpStream, shared: &DaemonShared, why: &str) {
    shared.conns_refused.fetch_add(1, Ordering::Relaxed);
    let _ = write_msg(
        &mut stream,
        &Msg::Error {
            code: code::OVERLOADED,
            message: format!("daemon out of connection capacity: {why}"),
        },
    );
}

/// Group-commit clock for the thread backend: every sync window, nudge
/// each computation's worker(s) to fsync a dirty WAL. Replaces the old
/// per-append window check in the ingest worker.
fn wal_clock_loop(shared: &DaemonShared) {
    let window = shared.config.sync_window;
    loop {
        let g = lock(&shared.shutdown_signal);
        if *g {
            return;
        }
        let (g, _) = shared
            .shutdown_cond
            .wait_timeout(g, window)
            .unwrap_or_else(|e| e.into_inner());
        if *g {
            return;
        }
        drop(g);
        let comps: Vec<_> = lock(&shared.computations).values().cloned().collect();
        for comp in comps {
            comp.nudge_wal_sync();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<DaemonShared>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap finished connection threads first: the registry must be
        // bounded by *concurrent* connections, not total ever served.
        let mut conns = lock(&shared.conns);
        conns.retain(|h| !h.is_finished());
        if conns.len() >= shared.config.max_conn_threads {
            drop(conns);
            refuse_overloaded(stream, &shared, "connection-thread limit reached");
            continue;
        }
        drop(conns);
        if shared.spawns_failing() {
            refuse_overloaded(stream, &shared, "cannot spawn connection thread");
            continue;
        }
        // Hand the stream to the thread through a slot: if spawn fails
        // (thread/fd exhaustion) the closure is consumed by Builder::spawn,
        // but the slot lets us take the stream back and refuse it with
        // OVERLOADED instead of panicking the accept loop.
        let slot = Arc::new(Mutex::new(Some(stream)));
        let thread_slot = Arc::clone(&slot);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("cts-daemon-conn".into())
            .spawn(move || {
                if let Some(stream) = lock(&thread_slot).take() {
                    let _ = serve_connection(stream, &conn_shared);
                }
            });
        match spawned {
            Ok(handle) => {
                shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
                lock(&shared.conns).push(handle);
            }
            Err(e) => {
                eprintln!("[cts-daemon] connection thread spawn failed: {e}");
                if let Some(stream) = lock(&slot).take() {
                    refuse_overloaded(stream, &shared, "cannot spawn connection thread");
                }
            }
        }
    }
}

/// The per-connection session state machine (thread backend).
fn serve_connection(stream: TcpStream, shared: &DaemonShared) -> io::Result<()> {
    shared.live_conns.fetch_add(1, Ordering::AcqRel);
    let r = serve_connection_inner(stream, shared);
    shared.live_conns.fetch_sub(1, Ordering::AcqRel);
    r
}

fn serve_connection_inner(mut stream: TcpStream, shared: &DaemonShared) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.set_nodelay(true)?;
    let mut session: Option<Arc<Computation>> = None;
    // Message-set level this connection negotiated via ProtoHello; level-2
    // verbs (ListComputations, Subscribe) are refused below it.
    let mut negotiated: u16 = 1;

    loop {
        if shared.shutting_down() {
            let _ = write_msg(
                &mut stream,
                &Msg::Error {
                    code: code::SHUTTING_DOWN,
                    message: "daemon is shutting down".into(),
                },
            );
            return Ok(());
        }
        let payload = match recv_frame(&mut stream)? {
            Recv::Idle => continue,
            Recv::Eof => return Ok(()),
            Recv::Frame(p) => p,
        };
        let msg = match Msg::decode(&payload) {
            Ok(m) => m,
            Err(e) => {
                let code = match e {
                    wire::WireError::BadVersion(_) => code::BAD_VERSION,
                    // An unknown verb from a newer message set is not a
                    // framing error: answer typed UNSUPPORTED and keep the
                    // connection so the peer can downgrade gracefully.
                    wire::WireError::BadTag(_) => code::UNSUPPORTED,
                    _ => code::MALFORMED,
                };
                write_msg(
                    &mut stream,
                    &Msg::Error {
                        code,
                        message: e.to_string(),
                    },
                )?;
                if code == code::BAD_VERSION {
                    return Ok(()); // no common language; hang up
                }
                continue;
            }
        };
        // Until recovery has replayed on-disk state, sessions would observe
        // a daemon that silently forgot events — refuse instead (clients
        // retry). Shutdown and Goodbye stay valid.
        if shared.recovering.load(Ordering::Acquire) && !matches!(msg, Msg::Shutdown | Msg::Goodbye)
        {
            write_msg(
                &mut stream,
                &Msg::Error {
                    code: code::RECOVERING,
                    message: "daemon is recovering; retry shortly".into(),
                },
            )?;
            continue;
        }
        match msg {
            Msg::Hello {
                computation,
                num_processes,
                max_cluster_size,
            } => {
                let reply = hello(shared, computation, num_processes, max_cluster_size);
                match reply {
                    Ok((comp, existing)) => {
                        session = Some(comp);
                        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                        write_msg(
                            &mut stream,
                            &Msg::HelloAck {
                                session: id,
                                existing,
                            },
                        )?;
                    }
                    Err(message) => write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::BAD_HELLO,
                            message,
                        },
                    )?,
                }
            }
            Msg::Events(events) => {
                if shared.config.follow.is_some() {
                    write_msg(&mut stream, &read_only())?;
                    continue;
                }
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                // Validate process ids here, where we can still answer; the
                // ingest path is fire-and-forget.
                if let Some(bad) = events.iter().find(|e| e.process().0 >= comp.num_processes) {
                    write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::MALFORMED,
                            message: format!(
                                "event {} names process {} outside 0..{}",
                                bad.id,
                                bad.process().0,
                                comp.num_processes
                            ),
                        },
                    )?;
                    continue;
                }
                if comp.enqueue_events(events).is_err() {
                    write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::SHUTTING_DOWN,
                            message: "computation is shut down".into(),
                        },
                    )?;
                }
            }
            Msg::Flush { expected_total } => {
                if shared.config.follow.is_some() {
                    write_msg(&mut stream, &read_only())?;
                    continue;
                }
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                let reply = match comp.flush(expected_total, shared.config.flush_timeout) {
                    Ok((epoch, delivered)) => Msg::FlushAck { epoch, delivered },
                    Err(FlushError::Timeout { delivered }) => Msg::Error {
                        code: code::FLUSH_TIMEOUT,
                        message: format!(
                            "flush target {expected_total} not reached (delivered {delivered})"
                        ),
                    },
                    Err(FlushError::Closed) => Msg::Error {
                        code: code::SHUTTING_DOWN,
                        message: "computation is shut down".into(),
                    },
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::QueryPrecedes { .. }
            | Msg::QueryGreatestConcurrent { .. }
            | Msg::QueryWindow { .. }
            | Msg::QueryPrecedesBatch { .. }
            | Msg::QueryGcBatch { .. } => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                let reply = serve_query(comp, &shared.query_pool, &msg);
                write_msg(&mut stream, &reply)?;
            }
            Msg::QueryAsOfPrecedes { .. }
            | Msg::QueryAsOfGc { .. }
            | Msg::QueryAsOfWindow { .. }
            | Msg::ListEpochs
            | Msg::ReplayInterval { .. } => {
                let reply = if negotiated < 3 {
                    needs_protocol_3(time_travel_verb(&msg))
                } else if let Some(comp) = session.as_ref() {
                    serve_query(comp, &shared.query_pool, &msg)
                } else {
                    no_session()
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::QueryClusterMap => {
                let reply = if negotiated < 4 {
                    needs_protocol_4("QueryClusterMap")
                } else if let Some(comp) = session.as_ref() {
                    cluster_map(comp)
                } else {
                    no_session()
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::QueryPlacement => {
                let reply = if negotiated < 5 {
                    needs_protocol_5("QueryPlacement")
                } else if let Some(comp) = session.as_ref() {
                    placement_result(comp)
                } else {
                    no_session()
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::Stats => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                let retainer = comp.retainer();
                let stats = comp.metrics().snapshot(
                    comp.query_cache().stats(),
                    retainer.retained(),
                    retainer.retired(),
                );
                write_msg(&mut stream, &Msg::StatsResult(stats))?;
            }
            Msg::ProtoHello {
                protocol_max,
                wal_max,
            } => {
                negotiated = protocol_max.min(wire::PROTOCOL);
                write_msg(
                    &mut stream,
                    &Msg::ProtoHelloAck {
                        protocol: negotiated,
                        wal: wal_max.min(wire::WAL_FORMAT),
                    },
                )?;
            }
            Msg::ListComputations => {
                let reply = if negotiated < 2 {
                    needs_protocol_2("ListComputations")
                } else {
                    Msg::ComputationList {
                        comps: list_computations(shared),
                    }
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::Subscribe {
                computation,
                from_offset,
                prev_lease,
            } => match replication::check_subscribe(
                shared,
                negotiated,
                &computation,
                from_offset,
                prev_lease,
            ) {
                Ok(grant) => {
                    write_msg(&mut stream, &grant.ack(shared))?;
                    // The connection turns into a push stream from here on.
                    return replication::serve_subscription(stream, shared, &grant);
                }
                Err(refusal) => write_msg(&mut stream, &refusal)?,
            },
            Msg::Shutdown => {
                write_msg(&mut stream, &Msg::ShutdownAck)?;
                shared.request_shutdown();
                return Ok(());
            }
            Msg::Goodbye => return Ok(()),
            // Server-to-client messages arriving here are a protocol abuse.
            _ => {
                write_msg(
                    &mut stream,
                    &Msg::Error {
                        code: code::MALFORMED,
                        message: "server-side message sent by client".into(),
                    },
                )?;
            }
        }
    }
}

pub(crate) fn no_session() -> Msg {
    Msg::Error {
        code: code::NO_SESSION,
        message: "no session: send Hello first".into(),
    }
}

/// The follower-mode refusal for write verbs.
pub(crate) fn read_only() -> Msg {
    Msg::Error {
        code: code::READ_ONLY,
        message: "this daemon is a read-only follower; write to the leader".into(),
    }
}

/// Refusal for level-2 verbs on a connection still at level 1.
pub(crate) fn needs_protocol_2(verb: &str) -> Msg {
    Msg::Error {
        code: code::UNSUPPORTED,
        message: format!("{verb} requires ProtoHello negotiation to protocol level >= 2"),
    }
}

/// Refusal for level-3 (time-travel) verbs on a connection below level 3.
pub(crate) fn needs_protocol_3(verb: &str) -> Msg {
    Msg::Error {
        code: code::UNSUPPORTED,
        message: format!("{verb} requires ProtoHello negotiation to protocol level >= 3"),
    }
}

/// Refusal for level-4 (adaptive observability) verbs below level 4.
pub(crate) fn needs_protocol_4(verb: &str) -> Msg {
    Msg::Error {
        code: code::UNSUPPORTED,
        message: format!("{verb} requires ProtoHello negotiation to protocol level >= 4"),
    }
}

/// Refusal for level-5 (placement observability) verbs below level 5.
pub(crate) fn needs_protocol_5(verb: &str) -> Msg {
    Msg::Error {
        code: code::UNSUPPORTED,
        message: format!("{verb} requires ProtoHello negotiation to protocol level >= 5"),
    }
}

/// Answer [`Msg::QueryPlacement`] from the computation's placement state
/// (plus the head snapshot's epoch/delivered pair for correlation).
pub(crate) fn placement_result(comp: &Computation) -> Msg {
    let snap = comp.snapshot();
    let info = comp.placement();
    Msg::PlacementResult {
        epoch: snap.epoch,
        delivered: snap.delivered,
        shards: info.shards,
        pinned: info.pinned,
        rescales: info.rescales,
        steals: info.steals,
        occupancy_q16: info.occupancy_q16,
        routing: info.routing,
    }
}

/// Answer [`Msg::QueryClusterMap`] from the computation's head snapshot:
/// the partition is reported as one representative (smallest member id) per
/// process, so equality of entries == co-clustering regardless of the order
/// clusters happen to be enumerated in.
pub(crate) fn cluster_map(comp: &Computation) -> Msg {
    let snap = comp.snapshot();
    let partition = snap.cts.final_partition();
    let mut reps = vec![0u32; comp.num_processes as usize];
    for cluster in partition.clusters() {
        let rep = cluster.iter().map(|p| p.0).min().unwrap_or(0);
        for &m in cluster {
            reps[m.idx()] = rep;
        }
    }
    let m = comp.metrics();
    Msg::ClusterMapResult {
        epoch: snap.epoch,
        delivered: snap.delivered,
        cluster_receives: snap.cts.num_cluster_receives() as u64,
        merges: snap.cts.num_merges() as u64,
        migrations: m.drift_migrations.load(Ordering::Relaxed),
        forced_full: m.drift_forced_full.load(Ordering::Relaxed),
        partition: reps,
    }
}

/// Display name of a level-3 verb for the `UNSUPPORTED` refusal.
pub(crate) fn time_travel_verb(msg: &Msg) -> &'static str {
    match msg {
        Msg::QueryAsOfPrecedes { .. } => "QueryAsOfPrecedes",
        Msg::QueryAsOfGc { .. } => "QueryAsOfGc",
        Msg::QueryAsOfWindow { .. } => "QueryAsOfWindow",
        Msg::ListEpochs => "ListEpochs",
        Msg::ReplayInterval { .. } => "ReplayInterval",
        _ => "time-travel verb",
    }
}

/// The identity rows for [`Msg::ListComputations`], sorted by name so
/// discovery sees a deterministic listing.
pub(crate) fn list_computations(shared: &DaemonShared) -> Vec<CompInfo> {
    let mut comps: Vec<CompInfo> = lock(&shared.computations)
        .iter()
        .map(|(name, c)| CompInfo {
            name: name.clone(),
            num_processes: c.num_processes,
            max_cluster_size: c.max_cluster_size,
            delivered: c.stored_len(),
        })
        .collect();
    comps.sort_by(|a, b| a.name.cmp(&b.name));
    comps
}

/// Answer a query with latency/served metrics recorded — the one query
/// entry point both network backends share, so the stats a client reads
/// are identical whichever front end served it.
pub(crate) fn serve_query(comp: &Computation, pool: &QueryPool, msg: &Msg) -> Msg {
    let t0 = std::time::Instant::now();
    let (reply, served) = answer_query(comp, pool, msg);
    let ns = t0.elapsed().as_nanos() as u64;
    let m = comp.metrics();
    m.query_ns.record(ns);
    match msg {
        Msg::QueryPrecedes { .. } | Msg::QueryAsOfPrecedes { .. } => m.precedes_ns.record(ns),
        Msg::QueryGreatestConcurrent { .. } | Msg::QueryAsOfGc { .. } => m.gc_ns.record(ns),
        Msg::QueryWindow { .. } | Msg::QueryAsOfWindow { .. } => m.window_ns.record(ns),
        Msg::QueryPrecedesBatch { .. } => {
            m.precedes_ns.record(ns);
            m.batch_queries.fetch_add(1, Ordering::Relaxed);
        }
        Msg::QueryGcBatch { .. } => {
            m.gc_ns.record(ns);
            m.batch_queries.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    m.queries_served.fetch_add(served, Ordering::Relaxed);
    reply
}

/// Directory name for a computation: every byte outside `[a-zA-Z0-9_-]` is
/// percent-encoded (injective, so distinct names never collide, and names
/// like `pvm/stencil` or `..` cannot escape the data root). The `meta` file
/// holds the authoritative name.
fn comp_dir_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    out
}

/// Build the spawn config for a computation, durable iff the daemon has a
/// data directory.
fn computation_config(
    shared: &DaemonShared,
    name: &str,
    num_processes: u32,
    max_cluster_size: u32,
) -> ComputationConfig {
    let durability = shared
        .config
        .data_dir
        .as_ref()
        .map(|root| DurabilityConfig {
            dir: root.join(comp_dir_name(name)),
            sync_window: shared.config.sync_window,
            checkpoint_every: shared.config.checkpoint_every,
            wal_byte_budget: shared.config.wal_byte_budget,
        });
    let strategy = match shared.config.adaptive {
        Some(mut params) => {
            params.max_cluster_size = max_cluster_size as usize;
            StampStrategy::Adaptive(params)
        }
        None => StampStrategy::Merge1st {
            max_cluster_size: max_cluster_size as usize,
        },
    };
    ComputationConfig {
        name: name.to_string(),
        num_processes,
        max_cluster_size,
        strategy,
        queue_capacity: shared.config.queue_capacity,
        epoch_every: shared.config.epoch_every,
        shards: shared.config.shards,
        auto_scale: shared.config.auto_scale,
        balance: shared.config.balance,
        pin_cores: shared.config.pin_cores,
        placement: shared.config.placement,
        durability,
        query_cache_capacity: shared.config.query_cache_capacity,
        retain_epochs: shared.config.retain_epochs,
        retain_bytes: shared.config.retain_bytes,
    }
}

/// Startup recovery: bring every on-disk computation back, then open the
/// gate. Runs on its own thread so the listener is up (and answering
/// `RECOVERING`) while potentially large WALs replay.
fn recover_all(shared: &Arc<DaemonShared>, dirs: Vec<PathBuf>) {
    for dir in dirs {
        if shared.shutting_down() {
            break;
        }
        match recover_one(shared, &dir) {
            Ok((name, report)) => eprintln!(
                "[cts-daemon] recovered {name:?}: {} events \
                 ({} from checkpoint, {} from WAL across {} segment(s)){}",
                report.total_events(),
                report.checkpoint_events,
                report.wal_events,
                report.segments_scanned,
                match &report.torn_tail {
                    Some(t) => format!("; truncated torn tail [{t}]"),
                    None => String::new(),
                },
            ),
            Err(e) => eprintln!("[cts-daemon] recovery of {} failed: {e}", dir.display()),
        }
    }
    shared.recovering.store(false, Ordering::Release);
}

fn recover_one(
    shared: &Arc<DaemonShared>,
    dir: &std::path::Path,
) -> io::Result<(String, crate::checkpoint::RecoveryReport)> {
    let meta = checkpoint::load_meta(dir)?;
    let mut config = computation_config(
        shared,
        &meta.name,
        meta.num_processes,
        meta.max_cluster_size,
    );
    // Trust the scanned directory over the derived name (a rename must not
    // orphan state).
    config
        .durability
        .as_mut()
        .expect("recovery only runs with a data_dir")
        .dir = dir.to_path_buf();
    let (comp, report) = Computation::spawn_durable(config)?;
    lock(&shared.computations).insert(meta.name.clone(), comp);
    Ok((meta.name, report))
}

pub(crate) fn hello(
    shared: &DaemonShared,
    name: String,
    num_processes: u32,
    max_cluster_size: u32,
) -> Result<(Arc<Computation>, bool), String> {
    if num_processes == 0 {
        return Err("num_processes must be positive".into());
    }
    if max_cluster_size == 0 {
        return Err("max_cluster_size must be positive".into());
    }
    let mut comps = lock(&shared.computations);
    if let Some(existing) = comps.get(&name) {
        if existing.num_processes != num_processes || existing.max_cluster_size != max_cluster_size
        {
            return Err(format!(
                "computation {name:?} exists with {} processes / max cluster {}, \
                 hello asked for {num_processes} / {max_cluster_size}",
                existing.num_processes, existing.max_cluster_size
            ));
        }
        return Ok((Arc::clone(existing), true));
    }
    let config = computation_config(shared, &name, num_processes, max_cluster_size);
    let comp = if config.durability.is_some() {
        // The directory may hold state from a run that predates this
        // process (e.g. it was added while the daemon was down): recover
        // it rather than shadowing it. A parameter mismatch against the
        // on-disk meta is a BAD_HELLO, same as against a live computation.
        match Computation::spawn_durable(config) {
            Ok((comp, report)) => {
                if report.total_events() > 0 {
                    eprintln!(
                        "[cts-daemon] {name:?}: restored {} events from disk on hello",
                        report.total_events()
                    );
                }
                comp
            }
            Err(e) => return Err(format!("cannot open durable computation {name:?}: {e}")),
        }
    } else {
        Computation::spawn(config)
    };
    comps.insert(name, Arc::clone(&comp));
    Ok((comp, false))
}

/// Server-side ceiling on ids per `WindowResult`, whatever the client's
/// `limit` asks for (bounds reply frames and per-request work).
pub const WINDOW_PAGE_CAP: u32 = 2048;

/// Server-side ceiling on events per `ReplayChunk` (an encoded event is at
/// most 17 bytes, so a full chunk stays well inside [`wire::MAX_FRAME`]).
pub const REPLAY_CHUNK_CAP: u32 = 4096;

/// The precedence verdict for a known pair, via the shared cache.
fn cached_precedes(snap: &Snapshot, cache: &SharedQueryCache, e: EventId, f: EventId) -> bool {
    let mut backend = CachedClusterBackend {
        cts: &snap.cts,
        cache,
    };
    backend.precedes(&snap.trace, e, f)
}

/// The greatest-concurrent vector for a known event, via the shared cache.
/// Result vectors grow with the trace, so the memo is keyed by the
/// snapshot's delivered-prefix length.
fn cached_gc(snap: &Snapshot, cache: &SharedQueryCache, e: EventId) -> Vec<Option<EventId>> {
    if let Some(v) = cache.gc(e, snap.delivered) {
        return (*v).clone();
    }
    let mut backend = CachedClusterBackend {
        cts: &snap.cts,
        cache,
    };
    let v = greatest_concurrent(&mut backend, &snap.trace, e);
    cache.insert_gc(e, snap.delivered, Arc::new(v.clone()));
    v
}

/// Answer a query against the computation's current published snapshot.
/// Returns the reply and how many individual queries it answered (batch
/// messages count per item).
fn answer_query(comp: &Computation, pool: &QueryPool, msg: &Msg) -> (Msg, u64) {
    let snap = comp.snapshot();
    let cache = comp.query_cache();
    match msg {
        &Msg::QueryPrecedes { e, f } => {
            for id in [e, f] {
                if !snap.trace.contains(id) {
                    return (unknown_event(id, snap.epoch), 1);
                }
            }
            let reply = Msg::PrecedesResult {
                epoch: snap.epoch,
                precedes: cached_precedes(&snap, cache, e, f),
            };
            (reply, 1)
        }
        &Msg::QueryGreatestConcurrent { e } => {
            if !snap.trace.contains(e) {
                return (unknown_event(e, snap.epoch), 1);
            }
            let reply = Msg::GcResult {
                epoch: snap.epoch,
                slots: cached_gc(&snap, cache, e),
            };
            (reply, 1)
        }
        &Msg::QueryWindow {
            process,
            from,
            to,
            limit,
        } => {
            if process >= comp.num_processes {
                let err = Msg::Error {
                    code: code::MALFORMED,
                    message: format!("process {process} outside 0..{}", comp.num_processes),
                };
                return (err, 1);
            }
            let from = from.max(1);
            let cap = match limit {
                0 => WINDOW_PAGE_CAP,
                n => n.min(WINDOW_PAGE_CAP),
            };
            let page_to = to.min(from.saturating_add(cap));
            let ids = comp.process_window(ProcessId(process), from, page_to);
            // The stored row is a contiguous prefix (causal delivery), so a
            // page that came back short has exhausted what is stored — no
            // cursor, same completion semantics as an unpaginated scan.
            let next = if page_to < to && ids.len() as u32 == page_to - from {
                page_to
            } else {
                0
            };
            (Msg::WindowResult { ids, next }, 1)
        }
        Msg::QueryPrecedesBatch { pairs } => {
            let served = pairs.len() as u64;
            let epoch = snap.epoch;
            let job_cache = Arc::clone(cache);
            let verdicts = pool.map(pairs.clone(), move |(e, f)| {
                if !snap.trace.contains(e) || !snap.trace.contains(f) {
                    return None;
                }
                Some(cached_precedes(&snap, &job_cache, e, f))
            });
            (Msg::PrecedesBatchResult { epoch, verdicts }, served)
        }
        Msg::QueryGcBatch { events } => {
            let served = events.len() as u64;
            let epoch = snap.epoch;
            let job_cache = Arc::clone(cache);
            let results = pool.map(events.clone(), move |e| {
                if !snap.trace.contains(e) {
                    return None;
                }
                Some(cached_gc(&snap, &job_cache, e))
            });
            (Msg::GcBatchResult { epoch, results }, served)
        }
        &Msg::QueryAsOfPrecedes { epoch, e, f } => {
            let Some(asnap) = comp.retainer().get(epoch) else {
                return (epoch_retired(epoch, comp.retainer()), 1);
            };
            for id in [e, f] {
                if !asnap.trace.contains(id) {
                    return (unknown_event(id, epoch), 1);
                }
            }
            // The verdict/stamp cache layers are epoch-safe: happens-before
            // between two delivered events never changes as later events
            // arrive (causal delivery pins every predecessor first).
            let reply = Msg::PrecedesResult {
                epoch,
                precedes: cached_precedes(&asnap, cache, e, f),
            };
            comp.metrics().asof_hits.fetch_add(1, Ordering::Relaxed);
            (reply, 1)
        }
        &Msg::QueryAsOfGc { epoch, e } => {
            let Some(asnap) = comp.retainer().get(epoch) else {
                return (epoch_retired(epoch, comp.retainer()), 1);
            };
            if !asnap.trace.contains(e) {
                return (unknown_event(e, epoch), 1);
            }
            // The greatest-concurrent memo is keyed by the snapshot's
            // delivered length, so retained and head epochs never collide.
            let reply = Msg::GcResult {
                epoch,
                slots: cached_gc(&asnap, cache, e),
            };
            comp.metrics().asof_hits.fetch_add(1, Ordering::Relaxed);
            (reply, 1)
        }
        &Msg::QueryAsOfWindow {
            epoch,
            process,
            from,
            to,
            limit,
        } => {
            let Some(asnap) = comp.retainer().get(epoch) else {
                return (epoch_retired(epoch, comp.retainer()), 1);
            };
            if process >= comp.num_processes {
                let err = Msg::Error {
                    code: code::MALFORMED,
                    message: format!("process {process} outside 0..{}", comp.num_processes),
                };
                return (err, 1);
            }
            let from = from.max(1);
            let cap = match limit {
                0 => WINDOW_PAGE_CAP,
                n => n.min(WINDOW_PAGE_CAP),
            };
            let page_to = to.min(from.saturating_add(cap));
            // The snapshot's trace holds exactly the delivered prefix as of
            // `epoch`; each process row is a contiguous 1-based prefix.
            let row_end = asnap.trace.process_len(ProcessId(process)) as u32 + 1;
            let ids: Vec<EventId> = (from..page_to.min(row_end))
                .map(|i| EventId::new(ProcessId(process), EventIndex(i)))
                .collect();
            let next = if page_to < to && ids.len() as u32 == page_to - from {
                page_to
            } else {
                0
            };
            comp.metrics().asof_hits.fetch_add(1, Ordering::Relaxed);
            (Msg::WindowResult { ids, next }, 1)
        }
        Msg::ListEpochs => {
            let epochs = comp
                .retainer()
                .list()
                .into_iter()
                .map(|i| (i.epoch, i.delivered))
                .collect();
            (Msg::EpochList { epochs }, 1)
        }
        &Msg::ReplayInterval {
            from_epoch,
            to_epoch,
            cursor,
            limit,
        } => {
            let retainer = comp.retainer();
            // Pin the destination epoch so retention GC cannot retire it
            // between chunks of a single request (chunk resumption across
            // requests re-resolves and may legitimately get EPOCH_RETIRED).
            let Some(to_snap) = retainer.get(to_epoch) else {
                return (epoch_retired(to_epoch, retainer), 1);
            };
            let d_from = if from_epoch == 0 {
                0
            } else {
                match retainer.list().iter().find(|i| i.epoch == from_epoch) {
                    Some(i) => i.delivered,
                    None => return (epoch_retired(from_epoch, retainer), 1),
                }
            };
            let d_to = to_snap.delivered;
            if d_from > d_to {
                let err = Msg::Error {
                    code: code::MALFORMED,
                    message: format!("from_epoch {from_epoch} is newer than to_epoch {to_epoch}"),
                };
                return (err, 1);
            }
            // `cursor` is the 1-based delivery offset to resume from (0 on
            // the first request); the snapshot's trace is the delivered
            // prefix in delivery order, so offsets index it directly.
            let start0 = if cursor == 0 {
                d_from
            } else {
                (cursor - 1).max(d_from)
            };
            let cap = match limit {
                0 => REPLAY_CHUNK_CAP,
                n => n.min(REPLAY_CHUNK_CAP),
            } as u64;
            let end0 = d_to.min(start0.saturating_add(cap));
            let events = if start0 >= end0 {
                Vec::new()
            } else {
                to_snap.trace.events()[start0 as usize..end0 as usize].to_vec()
            };
            let next = if end0 < d_to { end0 + 1 } else { 0 };
            let reply = Msg::ReplayChunk {
                first_offset: start0 + 1,
                events,
                next,
            };
            (reply, 1)
        }
        _ => unreachable!("answer_query only receives queries"),
    }
}

fn unknown_event(id: cts_model::EventId, epoch: u64) -> Msg {
    Msg::Error {
        code: code::UNKNOWN_EVENT,
        message: format!("{id} is not covered by snapshot epoch {epoch}"),
    }
}

/// The time-travel refusal: the named epoch is outside the retained ring.
fn epoch_retired(epoch: u64, retainer: &EpochRetainer<Snapshot>) -> Msg {
    let list = retainer.list();
    let range = match (list.first(), list.last()) {
        (Some(a), Some(b)) => format!("{}..={}", a.epoch, b.epoch),
        _ => "none".into(),
    };
    Msg::Error {
        code: code::EPOCH_RETIRED,
        message: format!("epoch {epoch} is not retained (retained epochs: {range})"),
    }
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
