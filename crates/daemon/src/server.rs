//! The TCP daemon: accept loop, per-connection sessions, graceful shutdown.
//!
//! Concurrency layout:
//!
//! - one *accept* thread owns the listener;
//! - one *connection* thread per client runs the session state machine —
//!   decoding frames, enqueueing event batches (blocking on the bounded
//!   ingest queue for backpressure), and answering queries against the
//!   computation's current published snapshot;
//! - one *ingest worker* thread per computation (see
//!   [`crate::pipeline::Computation`]).
//!
//! Shutdown is cooperative and lock-step: connection sockets carry a short
//! read timeout, so every connection thread polls the shutdown flag between
//! frames; [`Daemon::shutdown`] raises the flag, nudges the accept loop
//! awake with a loopback connect, joins the connection threads, then shuts
//! every computation down (drop the master sender → the worker drains its
//! queue, publishes a final snapshot, and exits).

use crate::pipeline::{Computation, ComputationConfig, FlushError};
use crate::wire::{self, code, recv_frame, write_msg, Msg, Recv};
use cts_model::ProcessId;
use cts_store::queries::{greatest_concurrent, ClusterBackend};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon-wide tunables.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: SocketAddr,
    /// Ingest queue bound per computation, in batches.
    pub queue_capacity: usize,
    /// Snapshot publication cadence, in delivered events.
    pub epoch_every: u64,
    /// Socket read timeout: how often idle connections poll the shutdown
    /// flag.
    pub poll_interval: Duration,
    /// How long a `Flush` barrier may wait before reporting a stall.
    pub flush_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            queue_capacity: 64,
            epoch_every: 4096,
            poll_interval: Duration::from_millis(50),
            flush_timeout: Duration::from_secs(60),
        }
    }
}

struct DaemonShared {
    config: DaemonConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cond: Condvar,
    computations: Mutex<HashMap<String, Arc<Computation>>>,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_session: AtomicU64,
}

/// A running daemon. Dropping it without [`shutdown`](Daemon::shutdown)
/// leaves the threads running until process exit; tests and the binary
/// always shut down explicitly.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind and start serving.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(DaemonShared {
            config,
            addr,
            shutdown: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cond: Condvar::new(),
            computations: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("cts-daemon-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Daemon {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Ask the daemon to stop (also triggered by the wire `Shutdown`
    /// message). Returns immediately; pair with [`shutdown`](Self::shutdown)
    /// to join.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until someone requests shutdown.
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = lock(&self.shared.shutdown_signal);
        while !*requested {
            requested = self
                .shared
                .shutdown_cond
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Graceful shutdown: stop accepting, drain connections, finish every
    /// computation's queue, join all threads.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let conns: Vec<_> = lock(&self.shared.conns).drain(..).collect();
        for h in conns {
            let _ = h.join();
        }
        let comps: Vec<_> = lock(&self.shared.computations).drain().collect();
        for (_, comp) in comps {
            comp.shutdown();
        }
    }
}

impl DaemonShared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        *lock(&self.shutdown_signal) = true;
        self.shutdown_cond.notify_all();
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<DaemonShared>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cts-daemon-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
            })
            .expect("spawn connection thread");
        lock(&shared.conns).push(handle);
    }
}

/// The per-connection session state machine.
fn serve_connection(mut stream: TcpStream, shared: &DaemonShared) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.set_nodelay(true)?;
    let mut session: Option<Arc<Computation>> = None;

    loop {
        if shared.shutting_down() {
            let _ = write_msg(
                &mut stream,
                &Msg::Error {
                    code: code::SHUTTING_DOWN,
                    message: "daemon is shutting down".into(),
                },
            );
            return Ok(());
        }
        let payload = match recv_frame(&mut stream)? {
            Recv::Idle => continue,
            Recv::Eof => return Ok(()),
            Recv::Frame(p) => p,
        };
        let msg = match Msg::decode(&payload) {
            Ok(m) => m,
            Err(e) => {
                let code = match e {
                    wire::WireError::BadVersion(_) => code::BAD_VERSION,
                    _ => code::MALFORMED,
                };
                write_msg(
                    &mut stream,
                    &Msg::Error {
                        code,
                        message: e.to_string(),
                    },
                )?;
                if code == code::BAD_VERSION {
                    return Ok(()); // no common language; hang up
                }
                continue;
            }
        };
        match msg {
            Msg::Hello {
                computation,
                num_processes,
                max_cluster_size,
            } => {
                let reply = hello(shared, computation, num_processes, max_cluster_size);
                match reply {
                    Ok((comp, existing)) => {
                        session = Some(comp);
                        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                        write_msg(
                            &mut stream,
                            &Msg::HelloAck {
                                session: id,
                                existing,
                            },
                        )?;
                    }
                    Err(message) => write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::BAD_HELLO,
                            message,
                        },
                    )?,
                }
            }
            Msg::Events(events) => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                // Validate process ids here, where we can still answer; the
                // ingest path is fire-and-forget.
                if let Some(bad) = events.iter().find(|e| e.process().0 >= comp.num_processes) {
                    write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::MALFORMED,
                            message: format!(
                                "event {} names process {} outside 0..{}",
                                bad.id,
                                bad.process().0,
                                comp.num_processes
                            ),
                        },
                    )?;
                    continue;
                }
                if comp.enqueue_events(events).is_err() {
                    write_msg(
                        &mut stream,
                        &Msg::Error {
                            code: code::SHUTTING_DOWN,
                            message: "computation is shut down".into(),
                        },
                    )?;
                }
            }
            Msg::Flush { expected_total } => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                let reply = match comp.flush(expected_total, shared.config.flush_timeout) {
                    Ok((epoch, delivered)) => Msg::FlushAck { epoch, delivered },
                    Err(FlushError::Timeout { delivered }) => Msg::Error {
                        code: code::FLUSH_TIMEOUT,
                        message: format!(
                            "flush target {expected_total} not reached (delivered {delivered})"
                        ),
                    },
                    Err(FlushError::Closed) => Msg::Error {
                        code: code::SHUTTING_DOWN,
                        message: "computation is shut down".into(),
                    },
                };
                write_msg(&mut stream, &reply)?;
            }
            Msg::QueryPrecedes { .. }
            | Msg::QueryGreatestConcurrent { .. }
            | Msg::QueryWindow { .. } => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                let t0 = std::time::Instant::now();
                let reply = answer_query(comp, &msg);
                comp.metrics()
                    .query_ns
                    .record(t0.elapsed().as_nanos() as u64);
                comp.metrics()
                    .queries_served
                    .fetch_add(1, Ordering::Relaxed);
                write_msg(&mut stream, &reply)?;
            }
            Msg::Stats => {
                let Some(comp) = session.as_ref() else {
                    write_msg(&mut stream, &no_session())?;
                    continue;
                };
                write_msg(&mut stream, &Msg::StatsResult(comp.metrics().snapshot()))?;
            }
            Msg::Shutdown => {
                write_msg(&mut stream, &Msg::ShutdownAck)?;
                shared.request_shutdown();
                return Ok(());
            }
            Msg::Goodbye => return Ok(()),
            // Server-to-client messages arriving here are a protocol abuse.
            _ => {
                write_msg(
                    &mut stream,
                    &Msg::Error {
                        code: code::MALFORMED,
                        message: "server-side message sent by client".into(),
                    },
                )?;
            }
        }
    }
}

fn no_session() -> Msg {
    Msg::Error {
        code: code::NO_SESSION,
        message: "no session: send Hello first".into(),
    }
}

fn hello(
    shared: &DaemonShared,
    name: String,
    num_processes: u32,
    max_cluster_size: u32,
) -> Result<(Arc<Computation>, bool), String> {
    if num_processes == 0 {
        return Err("num_processes must be positive".into());
    }
    if max_cluster_size == 0 {
        return Err("max_cluster_size must be positive".into());
    }
    let mut comps = lock(&shared.computations);
    if let Some(existing) = comps.get(&name) {
        if existing.num_processes != num_processes || existing.max_cluster_size != max_cluster_size
        {
            return Err(format!(
                "computation {name:?} exists with {} processes / max cluster {}, \
                 hello asked for {num_processes} / {max_cluster_size}",
                existing.num_processes, existing.max_cluster_size
            ));
        }
        return Ok((Arc::clone(existing), true));
    }
    let comp = Computation::spawn(ComputationConfig {
        name: name.clone(),
        num_processes,
        max_cluster_size,
        queue_capacity: shared.config.queue_capacity,
        epoch_every: shared.config.epoch_every,
    });
    comps.insert(name, Arc::clone(&comp));
    Ok((comp, false))
}

/// Answer a query against the computation's current published snapshot.
fn answer_query(comp: &Computation, msg: &Msg) -> Msg {
    let snap = comp.snapshot();
    match *msg {
        Msg::QueryPrecedes { e, f } => {
            for id in [e, f] {
                if !snap.trace.contains(id) {
                    return unknown_event(id, snap.epoch);
                }
            }
            Msg::PrecedesResult {
                epoch: snap.epoch,
                precedes: snap.cts.precedes(&snap.trace, e, f),
            }
        }
        Msg::QueryGreatestConcurrent { e } => {
            if !snap.trace.contains(e) {
                return unknown_event(e, snap.epoch);
            }
            Msg::GcResult {
                epoch: snap.epoch,
                slots: greatest_concurrent(&mut ClusterBackend(&snap.cts), &snap.trace, e),
            }
        }
        Msg::QueryWindow { process, from, to } => {
            if process >= comp.num_processes {
                return Msg::Error {
                    code: code::MALFORMED,
                    message: format!("process {process} outside 0..{}", comp.num_processes),
                };
            }
            let ids = comp
                .store()
                .read()
                .process_window(ProcessId(process), from, to)
                .iter()
                .map(|r| r.event.id)
                .collect();
            Msg::WindowResult { ids }
        }
        _ => unreachable!("answer_query only receives queries"),
    }
}

fn unknown_event(id: cts_model::EventId, epoch: u64) -> Msg {
    Msg::Error {
        code: code::UNKNOWN_EVENT,
        message: format!("{id} is not covered by snapshot epoch {epoch}"),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
