//! The `cts-daemon` binary: bind, serve, wait for a shutdown request
//! (delivered over the wire), drain, exit.
//!
//! ```text
//! cts-daemon [--host 127.0.0.1] [--port 4650] [--port-file PATH]
//!            [--net-threads] [--pollers N] [--max-conns N]
//!            [--queue-capacity 64] [--epoch-every 4096]
//!            [--data-dir PATH] [--sync-window-ms 5] [--checkpoint-every N]
//!            [--retain-epochs 8] [--retain-bytes B]
//! ```
//!
//! The network front end defaults to the epoll poller pool on Linux;
//! `--net-threads` selects thread-per-connection instead, `--pollers N`
//! sizes the pool (0 = one per core, capped at 4), and `--max-conns N`
//! bounds the thread backend's connection threads (excess connections are
//! refused with `OVERLOADED` rather than aborting on spawn failure).
//!
//! `--port 0` binds an ephemeral port; `--port-file` writes the resolved
//! port as decimal text once listening (how scripts/check.sh finds the
//! daemon it just launched). Status goes to stderr; stdout carries only the
//! `listening on ...` line for interactive use.
//!
//! `--data-dir` turns on durability: delivered events are write-ahead
//! logged and checkpointed under PATH, and a restarted daemon recovers its
//! computations from there before serving (clients see `RECOVERING` in the
//! meantime). Without it the daemon is fully in-memory.
//!
//! `--adaptive SPEC` switches every computation to online adaptive
//! re-clustering. SPEC uses the strategy-grammar suffix
//! `<maxCS>[@tau][/m]` (e.g. `8@0.5/3`); the `maxCS` part is overridden by
//! each computation's `Hello`, the `@tau` merge threshold and `/m`
//! migrate-after knobs apply daemon-wide.
//!
//! `--shards N` runs every computation on N ingest shards (`1` = the
//! classic single-worker pipeline); `--shards auto` enables live shard
//! autoscaling — start at 2 and let the placement engine split hot shards
//! and retire cold ones from per-shard occupancy EWMAs, with no
//! stop-the-world freeze. `--balance` steals clusters between shards at a
//! fixed count (implied by `auto`), and `--pin-cores` pins shard workers,
//! network pollers, and the WAL group-commit clock to topology-chosen CPUs
//! (distinct cores, shards grouped by LLC/NUMA node; Linux sysfs only —
//! silently unpinned elsewhere).

use cts_core::strategy::StrategySpec;
use cts_daemon::server::{Daemon, DaemonConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cts-daemon [--host HOST] [--port PORT] [--port-file PATH]\n\
         \x20                 [--net-threads] [--pollers N] [--max-conns N]\n\
         \x20                 [--queue-capacity N] [--epoch-every N]\n\
         \x20                 [--data-dir PATH] [--sync-window-ms N]\n\
         \x20                 [--checkpoint-every N] [--query-workers N]\n\
         \x20                 [--follow HOST:PORT]\n\
         \x20                 [--retain-epochs N] [--retain-bytes B]\n\
         \x20                 [--adaptive maxCS[@tau][/m]]\n\
         \x20                 [--shards N|auto] [--balance] [--pin-cores]"
    );
    std::process::exit(2);
}

fn main() {
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 4650;
    let mut port_file: Option<String> = None;
    let mut config = DaemonConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--host" => host = value(&mut i),
            "--port" => port = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--port-file" => port_file = Some(value(&mut i)),
            "--net-threads" => config.net = cts_daemon::server::NetBackend::Threads,
            "--pollers" => config.pollers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                config.max_conn_threads = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--queue-capacity" => {
                config.queue_capacity = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--epoch-every" => {
                config.epoch_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--flush-timeout-secs" => {
                config.flush_timeout =
                    Duration::from_secs(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--data-dir" => config.data_dir = Some(value(&mut i).into()),
            "--sync-window-ms" => {
                config.sync_window =
                    Duration::from_millis(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--checkpoint-every" => {
                config.checkpoint_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--query-workers" => {
                config.query_workers = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--follow" => config.follow = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--retain-epochs" => {
                config.retain_epochs = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--retain-bytes" => {
                config.retain_bytes = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--adaptive" => {
                let spec = value(&mut i);
                match format!("adaptive:{spec}").parse::<StrategySpec>() {
                    Ok(StrategySpec::Adaptive { params }) => config.adaptive = Some(params),
                    _ => {
                        eprintln!("bad --adaptive spec {spec:?} (want maxCS[@tau][/m])");
                        usage();
                    }
                }
            }
            "--shards" => {
                let spec = value(&mut i);
                if spec == "auto" {
                    config.shards = 2;
                    config.auto_scale = true;
                } else {
                    match spec.parse::<u32>() {
                        Ok(n) if n >= 1 => config.shards = n,
                        _ => {
                            eprintln!("bad --shards {spec:?} (want a count >= 1 or 'auto')");
                            usage();
                        }
                    }
                }
            }
            "--balance" => config.balance = true,
            "--pin-cores" => config.pin_cores = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    config.addr = match format!("{host}:{port}").parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad --host/--port: {e}");
            std::process::exit(2);
        }
    };

    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cts-daemon: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = daemon.local_addr();
    println!("listening on {addr}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("cts-daemon: cannot write port file {path}: {e}");
            daemon.shutdown();
            std::process::exit(1);
        }
    }
    eprintln!("[cts-daemon] serving; send the wire Shutdown message to stop");
    daemon.wait_for_shutdown_request();
    eprintln!("[cts-daemon] shutdown requested; draining");
    daemon.shutdown();
    eprintln!("[cts-daemon] bye");
}
