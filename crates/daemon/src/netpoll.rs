//! Thin, safe wrappers over the Linux readiness syscalls the event loop
//! needs: `epoll`, `eventfd`, `timerfd`, plus the two `rlimit`/`listen`
//! helpers the C10K paths use. Hand-declared FFI — the workspace links no
//! external crates, and std already links libc, so these symbols resolve
//! without adding a dependency.
//!
//! Everything here is Linux-only (gated at the module declaration); the
//! thread-per-connection backend remains the portable fallback.
//!
//! Ownership is RAII throughout: [`Poller`], [`EventFd`] and [`TimerFd`]
//! close their descriptor on drop. Registration does *not* own the
//! registered fd — the event loop keeps the `TcpStream`s and deregisters
//! before dropping them (the kernel would also drop the registration on
//! close, but being explicit keeps token reuse honest).

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

pub type RawFd = c_int;

// ---- FFI surface ----

/// `struct epoll_event` is packed on x86_64 (and only there) so the 12-byte
/// layout matches the kernel ABI; other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Itimerspec {
    it_interval: Timespec,
    it_value: Timespec,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn timerfd_create(clockid: c_int, flags: c_int) -> c_int;
    fn timerfd_settime(
        fd: c_int,
        flags: c_int,
        new_value: *const Itimerspec,
        old_value: *mut Itimerspec,
    ) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
    fn sched_getaffinity(pid: c_int, cpusetsize: usize, mask: *mut u64) -> c_int;
}

// ---- readiness and control constants (uapi values, stable ABI) ----

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered readiness: one event per transition, read/write to EAGAIN.
pub const EPOLLET: u32 = 1 << 31;
/// Wake only one of the epoll instances sharing a level-triggered fd — the
/// accept path's thundering-herd guard across the poller pool.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const TFD_CLOEXEC: c_int = 0x80000;
const TFD_NONBLOCK: c_int = 0x800;
const CLOCK_MONOTONIC: c_int = 1;
const RLIMIT_NOFILE: c_int = 7;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Drain an 8-byte counter fd (eventfd/timerfd) without blocking. Returns
/// the counter value, or 0 if the fd had nothing pending.
fn read_counter(fd: RawFd) -> u64 {
    let mut buf = [0u8; 8];
    let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), 8) };
    if n == 8 {
        u64::from_le_bytes(buf)
    } else {
        0
    }
}

// ---- epoll ----

/// One epoll instance. `wait` fills a caller-owned event buffer; tokens are
/// the opaque `u64` the caller registered.
pub struct Poller {
    fd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument must be non-null on pre-2.6.9 kernels; passing
        // one unconditionally costs nothing.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block up to `timeout_ms` (-1 = forever) and return how many events
    /// were written into `events`. A signal interruption reports 0 events.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// ---- eventfd ----

/// A cross-thread wakeup: any thread `wake()`s, the owning poller sees
/// `EPOLLIN` and `drain()`s. Non-blocking on both sides.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Post a wakeup. A full counter (EAGAIN) already guarantees a pending
    /// wake, so the error is ignorable by construction.
    pub fn wake(&self) {
        let one = 1u64.to_le_bytes();
        unsafe { write(self.fd, one.as_ptr().cast::<c_void>(), 8) };
    }

    /// Consume all pending wakeups.
    pub fn drain(&self) -> u64 {
        read_counter(self.fd)
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// ---- timerfd ----

/// A timer that delivers expirations as fd readiness — how the WAL
/// group-commit window and the ingest-retry backoff live in the same
/// `epoll_wait` as the sockets.
pub struct TimerFd {
    fd: RawFd,
}

impl TimerFd {
    pub fn new() -> io::Result<TimerFd> {
        let fd = cvt(unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK) })?;
        Ok(TimerFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    fn settime(&self, interval: Duration, first: Duration) -> io::Result<()> {
        let ts = |d: Duration| Timespec {
            tv_sec: d.as_secs() as i64,
            tv_nsec: d.subsec_nanos() as i64,
        };
        let spec = Itimerspec {
            it_interval: ts(interval),
            it_value: ts(first),
        };
        cvt(unsafe { timerfd_settime(self.fd, 0, &spec, std::ptr::null_mut()) }).map(|_| ())
    }

    /// Fire every `interval`, first expiration one interval from now.
    /// A zero interval would disarm, so it is clamped to 1 ms.
    pub fn set_periodic(&self, interval: Duration) -> io::Result<()> {
        let iv = interval.max(Duration::from_millis(1));
        self.settime(iv, iv)
    }

    /// Fire once after `delay` (clamped away from zero, which would disarm).
    pub fn set_oneshot(&self, delay: Duration) -> io::Result<()> {
        self.settime(Duration::ZERO, delay.max(Duration::from_nanos(1)))
    }

    pub fn disarm(&self) -> io::Result<()> {
        self.settime(Duration::ZERO, Duration::ZERO)
    }

    /// Consume pending expirations (must be called once readable, or an
    /// edge-triggered registration never fires again).
    pub fn drain(&self) -> u64 {
        read_counter(self.fd)
    }
}

impl Drop for TimerFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// ---- CPU affinity (the `--pin-cores` placement path) ----

/// 1024-bit CPU mask, the glibc `cpu_set_t` size. Machines above 1024 CPUs
/// exist but are out of scope; `pin_current_thread` rejects them cleanly.
const CPU_SET_WORDS: usize = 16;

/// Pin the calling thread to a single CPU. `pid` 0 means "this thread" for
/// both affinity syscalls, so no gettid is needed.
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    if cpu >= CPU_SET_WORDS * 64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cpu {cpu} beyond the {}-bit mask", CPU_SET_WORDS * 64),
        ));
    }
    let mut mask = [0u64; CPU_SET_WORDS];
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    cvt(unsafe { sched_setaffinity(0, CPU_SET_WORDS * 8, mask.as_ptr()) }).map(|_| ())
}

/// The calling thread's allowed CPUs, ascending.
pub fn current_affinity() -> io::Result<Vec<usize>> {
    let mut mask = [0u64; CPU_SET_WORDS];
    cvt(unsafe { sched_getaffinity(0, CPU_SET_WORDS * 8, mask.as_mut_ptr()) })?;
    let mut cpus = Vec::new();
    for (w, bits) in mask.iter().enumerate() {
        let mut bits = *bits;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            cpus.push(w * 64 + b);
            bits &= bits - 1;
        }
    }
    Ok(cpus)
}

// ---- helpers for the C10K paths ----

/// Raise the listener's backlog beyond std's default 128 — a connect burst
/// of thousands otherwise sees resets before the accept loop catches up.
pub fn raise_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    cvt(unsafe { listen(fd, backlog) }).map(|_| ())
}

/// The soft `RLIMIT_NOFILE` after raising it to the hard limit (the usual
/// 1024 soft default is far below what holding thousands of sockets needs;
/// the hard limit is the real budget).
pub fn raise_nofile_to_hard() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        let raised = Rlimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            lim.rlim_cur = lim.rlim_max;
        }
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_a_poller() {
        let poller = Poller::new().unwrap();
        let ev = EventFd::new().unwrap();
        poller.add(ev.fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        ev.wake();
        ev.wake();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_eq!(ev.drain(), 2); // both wakes coalesced in the counter
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn oneshot_timer_fires_once() {
        let poller = Poller::new().unwrap();
        let t = TimerFd::new().unwrap();
        poller.add(t.fd(), EPOLLIN, 7).unwrap();
        t.set_oneshot(Duration::from_millis(10)).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert_eq!(t.drain(), 1);
        // Consumed and one-shot: no further readiness.
        assert_eq!(poller.wait(&mut events, 50).unwrap(), 0);
    }

    #[test]
    fn periodic_timer_keeps_firing_until_disarmed() {
        let poller = Poller::new().unwrap();
        let t = TimerFd::new().unwrap();
        poller.add(t.fd(), EPOLLIN, 9).unwrap();
        t.set_periodic(Duration::from_millis(5)).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let mut fired = 0u64;
        for _ in 0..3 {
            if poller.wait(&mut events, 2000).unwrap() == 1 {
                fired += t.drain();
            }
        }
        assert!(fired >= 3, "periodic timer fired {fired} times");
        t.disarm().unwrap();
        t.drain();
        assert_eq!(poller.wait(&mut events, 30).unwrap(), 0);
    }

    #[test]
    fn modify_and_delete_registrations() {
        let poller = Poller::new().unwrap();
        let ev = EventFd::new().unwrap();
        poller.add(ev.fd(), 0, 1).unwrap(); // registered with no interest
        ev.wake();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        poller.modify(ev.fd(), EPOLLIN, 2).unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!({ events[0].data }, 2);
        poller.delete(ev.fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_is_sane() {
        let n = raise_nofile_to_hard().unwrap();
        assert!(n >= 256, "nofile limit {n} too small to run anything");
    }

    #[test]
    fn pin_round_trips_through_getaffinity() {
        let before = current_affinity().unwrap();
        assert!(!before.is_empty());
        let target = before[0];
        pin_current_thread(target).unwrap();
        assert_eq!(current_affinity().unwrap(), vec![target]);
        // Restore the original mask so later tests on this thread are free.
        let mut mask = [0u64; CPU_SET_WORDS];
        for c in &before {
            mask[c / 64] |= 1u64 << (c % 64);
        }
        cvt(unsafe { sched_setaffinity(0, CPU_SET_WORDS * 8, mask.as_ptr()) }).unwrap();
        assert_eq!(current_affinity().unwrap(), before);
    }

    #[test]
    fn pin_rejects_out_of_range_cpu() {
        assert!(pin_current_thread(CPU_SET_WORDS * 64).is_err());
    }
}
