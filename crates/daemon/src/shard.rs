//! Sharded causal delivery: the per-process-group engine partition.
//!
//! The single-worker pipeline ([`crate::pipeline`]) delivers every event of a
//! computation on one thread. This module partitions that work per *process
//! group*: each [`ShardCore`] owns the reorder buffer, Fidge/Mattern
//! frontier, cluster stamper, and store rows for a subset of the processes,
//! seeded from a balanced block partition and rebalanced so that each cluster
//! of the (growing) cluster hierarchy lives on one shard.
//!
//! Cross-shard edges — a receive whose send was delivered on another shard,
//! or a sync whose peer lives on another shard — are sequenced through the
//! [`Exchange`]: the sending side *publishes* the clock the far side needs
//! (a send's stamp; a sync half's pre-sync frontier) and the consuming side
//! either finds it ready or registers for a wake-up. Because every consumed
//! slot was published at (or before) the delivery of the event it describes,
//! any interleaving of shard steps yields a global delivery order that is a
//! linearization of causal order; the [`CutAssembler`] materializes one such
//! linearization incrementally for snapshot publication.
//!
//! ## Why racy stamping stays exact
//!
//! Shards stamp events against a shared, lock-coherent membership world
//! ([`SharedSets`]) that another shard may have advanced concurrently, so a
//! stamp may be projected over a *different* cluster version than an offline
//! engine replaying the assembled order would have used at that position.
//! Precedence remains exact regardless:
//!
//! - a projected stamp carries the event's true Fidge/Mattern knowledge for
//!   every member of whatever version it projected over (possibly 0, which
//!   `precedes` already treats as "no knowledge"), so observing a *grown*
//!   (merged) version late can never hide anything;
//! - shrink — an adaptive drift migration — is guarded by the three rules
//!   of [`cts_core::cluster::AdaptiveEngine`]: the migrating process's
//!   triggering blocked receive is a recorded full stamp, remaining members
//!   of the shrunk cluster carry a pending marker forcing their next stamp
//!   full, and the stale-source watermark forces receives of pre-change
//!   sends full. The rule state lives *inside* the shared
//!   [`MembershipWorld`] snapshot, so a stamper either sees the
//!   post-migration world, rules and all, or the pre-migration world —
//!   whose version still contains the departed process directly, which is
//!   equally sound;
//! - an event classified as a non-mergeable cluster receive under a *stale*
//!   view re-runs the whole rule ladder under the lock before deciding, so
//!   merge and migration decisions are serialized against the freshest
//!   membership;
//! - a non-mergeable or forced-full cluster receive records its **full**
//!   Fidge/Mattern clock, which is exact by delivery-order invariance, so
//!   the relays `precedes` chains through never under-approximate.
//!
//! Migrations deliberately take **no freeze barrier**: the atomic world
//! swap under the [`SharedSets`] lock *is* the migration. Only
//! shard-ownership rebalancing (a performance heuristic) still runs at the
//! runtime's freeze, and cross-shard re-derivation of a migrated process's
//! stamps is parked and handed off through the [`Exchange`] exactly like a
//! migrated sync half.
//!
//! The schedule-exploration harness ([`SimShards`]) drives the very same
//! cores deterministically, one step at a time, so `tests/shard_schedules.rs`
//! can explore interleavings (including mid-stream rebalances) and assert
//! precedence/store equivalence with the offline batch engine.

use crate::reorder::{RejectReason, ShardHooks, ShardReorderBuffer};
use cts_core::cluster::{
    AdaptiveParams, ClusterSets, ClusterStamp, ClusterTimestamps, DriftDecider,
};
use cts_core::strategy::{MergeOnFirst, MergePolicy};
use cts_core::VectorClock;
use cts_model::{Event, EventId, EventKind, ProcessId, Trace};
use cts_store::PartitionedStore;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Index of a shard within one computation's shard set.
pub type ShardId = usize;

/// A pending cross-shard wake-up: shard `.0` has work parked under event
/// `.1`, whose clock just became available on the exchange.
pub type Wake = (ShardId, EventId);

/// Poison-tolerant lock (mirrors [`crate::pipeline`]'s discipline).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Exchange: cross-shard clock hand-off
// ---------------------------------------------------------------------------

enum Slot {
    /// The clock is available (a send's stamp, or a sync half's pre-sync
    /// frontier).
    Ready(VectorClock),
    /// Not published yet; these shards asked to be woken when it is.
    Waiting(Vec<ShardId>),
}

/// The cross-shard clock exchange: a striped map from event id to the clock
/// the *consuming* shard needs to apply the cross-shard edge.
///
/// Publication happens at (send) delivery time or (sync) readiness time on
/// the owning shard; consumption removes the slot exactly once, on the
/// delivery of the far-side event. A slot whose edge later turns local (the
/// consumer's process migrated onto the publisher's shard mid-flight) is
/// simply never consumed; ids are globally unique, so leaked slots are
/// unreachable and bounded by the number of rebalances.
pub struct Exchange {
    stripes: Vec<Mutex<HashMap<EventId, Slot>>>,
}

impl Default for Exchange {
    fn default() -> Exchange {
        Exchange::new()
    }
}

impl Exchange {
    /// An empty exchange.
    pub fn new() -> Exchange {
        Exchange {
            stripes: (0..16).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn stripe(&self, id: EventId) -> &Mutex<HashMap<EventId, Slot>> {
        let h = (id.process.0 as usize).wrapping_mul(31) ^ id.index.0 as usize;
        &self.stripes[h % self.stripes.len()]
    }

    /// Publish the clock for `id`, waking any registered shards (appended to
    /// `wakes`). Idempotent: re-publishing an already-ready slot is a no-op.
    pub fn publish(&self, id: EventId, clock: VectorClock, wakes: &mut Vec<Wake>) {
        let mut g = lock(self.stripe(id));
        match g.insert(id, Slot::Ready(clock)) {
            None => {}
            Some(Slot::Waiting(shards)) => wakes.extend(shards.into_iter().map(|s| (s, id))),
            Some(ready @ Slot::Ready(_)) => {
                // Sync halves re-publish their frontier on re-examination.
                g.insert(id, ready);
            }
        }
    }

    /// Is `id` ready? If not, atomically register `me` for a wake-up.
    pub fn ready_or_register(&self, id: EventId, me: ShardId) -> bool {
        let mut g = lock(self.stripe(id));
        match g.entry(id).or_insert_with(|| Slot::Waiting(Vec::new())) {
            Slot::Ready(_) => true,
            Slot::Waiting(shards) => {
                if !shards.contains(&me) {
                    shards.push(me);
                }
                false
            }
        }
    }

    /// Consume the clock for `id`. Panics if the slot is not ready — callers
    /// only consume after a successful readiness check on the same thread.
    pub fn take(&self, id: EventId) -> VectorClock {
        match lock(self.stripe(id)).remove(&id) {
            Some(Slot::Ready(clock)) => clock,
            _ => panic!("exchange slot {id} consumed before it was published"),
        }
    }
}

// ---------------------------------------------------------------------------
// SharedSets: lock-coherent cluster membership across shards
// ---------------------------------------------------------------------------

/// How a computation's stampers classify events and evolve the clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StampStrategy {
    /// Merge on the first cluster receive between two clusters (the
    /// daemon's original behaviour; clusters only ever grow).
    Merge1st { max_cluster_size: usize },
    /// Merge-on-Nth plus drift-triggered process migration, mirroring
    /// [`cts_core::cluster::AdaptiveEngine`].
    Adaptive(AdaptiveParams),
}

impl StampStrategy {
    /// The encoding-relevant maximum cluster size of the strategy.
    pub fn max_cluster_size(&self) -> usize {
        match *self {
            StampStrategy::Merge1st { max_cluster_size } => max_cluster_size,
            StampStrategy::Adaptive(p) => p.max_cluster_size,
        }
    }

    /// Is this the adaptive (migrating) strategy?
    pub fn is_adaptive(&self) -> bool {
        matches!(self, StampStrategy::Adaptive(_))
    }
}

/// Cluster membership plus the migration rule state that must be observed
/// atomically with it. One immutable `Arc<MembershipWorld>` is the unit of
/// sharing: every mutation clones the world, applies the change, and swaps
/// the `Arc` under the [`SharedSets`] lock. Bundling the rule state with
/// the sets is what lets migrations skip the freeze barrier — a stamper
/// sees a membership version together with exactly the rules that make
/// stamping over it sound.
#[derive(Clone)]
pub struct MembershipWorld {
    pub sets: ClusterSets,
    /// Rule 2: processes whose next delivered event must record a full
    /// stamp (their cluster shrank under them).
    pub pending_marker: Vec<bool>,
    /// Rule 3: own-index watermark of each process's last shrinking
    /// membership change; receives of sends at or below it are forced
    /// full. While a process's marker is still pending its watermark is
    /// treated as infinite (every message from it is suspect).
    pub lmc: Vec<u32>,
    /// Cluster merges performed. (The generation counter additionally
    /// counts migrations and marker clears, so it is a freshness counter,
    /// not a merge count.)
    pub num_merges: u64,
    /// Drift migrations performed.
    pub num_migrations: u64,
}

impl MembershipWorld {
    fn new(n: u32) -> MembershipWorld {
        MembershipWorld {
            sets: ClusterSets::singletons(n),
            pending_marker: vec![false; n as usize],
            lmc: vec![0; n as usize],
            num_merges: 0,
            num_migrations: 0,
        }
    }

    /// Is a receive of send/sync `(q, j)` suspect under rule 3?
    pub fn stale_source(&self, q: ProcessId, j: u32) -> bool {
        self.pending_marker[q.idx()] || j <= self.lmc[q.idx()]
    }
}

/// The membership world shared by every shard of one computation.
///
/// Readers keep a cached `Arc<MembershipWorld>` and refresh it when the
/// generation counter moves (one atomic load per event on the fast path).
/// The cache can only *lag* the truth; a lagging cache stamps over an older
/// version, which the module-level argument shows is always sound. A cached
/// "different clusters" verdict is re-checked under the lock before any
/// merge or migration decision.
pub struct SharedSets {
    generation: AtomicU64,
    inner: Mutex<Arc<MembershipWorld>>,
}

impl SharedSets {
    /// Singleton clusters for `n` processes, generation 0.
    pub fn new(n: u32) -> SharedSets {
        SharedSets {
            generation: AtomicU64::new(0),
            inner: Mutex::new(Arc::new(MembershipWorld::new(n))),
        }
    }

    /// Number of membership-world changes so far (merges + migrations +
    /// marker clears).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A coherent `(world, generation)` pair.
    pub fn snapshot(&self) -> (Arc<MembershipWorld>, u64) {
        let g = lock(&self.inner);
        (Arc::clone(&g), self.generation.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// ShardFm: the Fidge/Mattern engine restricted to owned processes
// ---------------------------------------------------------------------------

/// Per-shard Fidge/Mattern state: frontier rows for owned processes, plus
/// the in-flight clocks of locally-delivered sends whose receiver is also
/// local. Cross-shard message/sync clocks travel through the [`Exchange`].
#[derive(Clone, Debug)]
struct ShardFm {
    n: u32,
    owned: Vec<bool>,
    frontier: Vec<VectorClock>,
    /// send id → (receiver, stamp) for sends whose receiver is owned here.
    in_flight: HashMap<EventId, (ProcessId, VectorClock)>,
    /// second-half id → combined stamp, within one local sync delivery.
    pending_sync: HashMap<EventId, VectorClock>,
}

impl ShardFm {
    fn new(n: u32, owned: Vec<bool>) -> ShardFm {
        ShardFm {
            n,
            owned,
            frontier: vec![VectorClock::zero(n as usize); n as usize],
            in_flight: HashMap::new(),
            pending_sync: HashMap::new(),
        }
    }

    fn advance_own(&self, p: ProcessId, index: u32) -> VectorClock {
        let mut c = self.frontier[p.idx()].clone();
        c.set(p, index);
        c
    }

    /// Apply one delivered event, returning its Fidge/Mattern stamp.
    fn accept(&mut self, ev: Event, exchange: &Exchange, wakes: &mut Vec<Wake>) -> VectorClock {
        let p = ev.process();
        let index = ev.index().0;
        let stamp = match ev.kind {
            EventKind::Internal => self.advance_own(p, index),
            EventKind::Send { to } => {
                let s = self.advance_own(p, index);
                if to.0 < self.n && self.owned[to.idx()] {
                    self.in_flight.insert(ev.id, (to, s.clone()));
                } else {
                    exchange.publish(ev.id, s.clone(), wakes);
                }
                s
            }
            EventKind::Receive { from } => {
                // The send may have been delivered locally (in-flight) or on
                // another shard (exchange) — including the mixed case where
                // the receiver migrated here after the send was published.
                let msg = match self.in_flight.remove(&from) {
                    Some((_, clock)) => clock,
                    None => exchange.take(from),
                };
                let mut s = self.advance_own(p, index);
                s.max_assign(&msg);
                s
            }
            EventKind::Sync { peer } => {
                let q = peer.process;
                if self.owned[q.idx()] {
                    if let Some(combined) = self.pending_sync.remove(&ev.id) {
                        combined // second half of a locally-delivered pair
                    } else if self.frontier[q.idx()].get(q) >= peer.index.0 {
                        // The peer half was already delivered as a
                        // cross-shard sync before `q` migrated here. `q`'s
                        // *current* frontier may have moved past the sync,
                        // so it must not leak into this stamp; the peer's
                        // pre-sync frontier is still parked on the exchange
                        // (this half is its only consumer).
                        let peer_frontier = exchange.take(peer);
                        let mut combined = self.advance_own(p, index);
                        combined.max_assign(&peer_frontier);
                        combined.set(q, peer.index.0);
                        combined
                    } else {
                        let mut combined = self.advance_own(p, index);
                        combined.max_assign(&self.frontier[q.idx()]);
                        combined.set(q, peer.index.0);
                        self.pending_sync.insert(peer, combined.clone());
                        self.frontier[q.idx()] = combined.clone();
                        combined
                    }
                } else {
                    // Both halves compute the identical combined stamp from
                    // the exchanged pre-sync frontiers: componentwise max
                    // with both own components bumped.
                    let peer_frontier = exchange.take(peer);
                    let mut combined = self.advance_own(p, index);
                    combined.max_assign(&peer_frontier);
                    combined.set(q, peer.index.0);
                    combined
                }
            }
        };
        self.frontier[p.idx()] = stamp.clone();
        stamp
    }

    /// Release `p` for migration: its frontier row, plus every in-flight
    /// clock with either endpoint on `p` published to the exchange (the new
    /// owner — or a still-local receive under relaxed ownership — consumes
    /// them from there).
    fn release_process(
        &mut self,
        p: ProcessId,
        exchange: &Exchange,
        wakes: &mut Vec<Wake>,
    ) -> VectorClock {
        debug_assert!(self.pending_sync.is_empty(), "migration inside a sync pair");
        self.owned[p.idx()] = false;
        let ids: Vec<EventId> = self
            .in_flight
            .iter()
            .filter(|(id, (to, _))| id.process == p || *to == p)
            .map(|(id, _)| *id)
            .collect();
        let mut ids = ids;
        ids.sort();
        for id in ids {
            let (_, clock) = self.in_flight.remove(&id).expect("collected above");
            exchange.publish(id, clock, wakes);
        }
        std::mem::replace(
            &mut self.frontier[p.idx()],
            VectorClock::zero(self.n as usize),
        )
    }

    fn adopt_process(&mut self, p: ProcessId, frontier: VectorClock) {
        self.owned[p.idx()] = true;
        self.frontier[p.idx()] = frontier;
    }
}

// ---------------------------------------------------------------------------
// ShardStamper: cluster-timestamp classification against SharedSets
// ---------------------------------------------------------------------------

/// Classifies delivered events into projected stamps vs. (non-mergeable or
/// forced) full stamps, against the shared membership world. Merge and
/// migration decisions are serialized by the [`SharedSets`] lock and the
/// whole rule ladder re-runs there, so a stale cache can never produce a
/// wrong decision — only a redundant lock round-trip or an extra (sound)
/// full stamp.
struct ShardStamper {
    strategy: StampStrategy,
    policy: MergeOnFirst,
    cache: Arc<MembershipWorld>,
    cached_generation: u64,
}

impl ShardStamper {
    fn new(env: &ShardEnv) -> ShardStamper {
        let (cache, cached_generation) = env.sets.snapshot();
        ShardStamper {
            strategy: env.strategy,
            policy: MergeOnFirst::new(env.strategy.max_cluster_size()),
            cache,
            cached_generation,
        }
    }

    fn refresh(&mut self, shared: &SharedSets) {
        if self.cached_generation != shared.generation() {
            let (cache, generation) = shared.snapshot();
            self.cache = cache;
            self.cached_generation = generation;
        }
    }

    fn project(sets: &ClusterSets, p: ProcessId, clock: &VectorClock) -> ClusterStamp {
        let version = sets.version_of_root(sets.find_readonly(p));
        ClusterStamp::Projected {
            version,
            clock: clock.project(sets.members(version)),
        }
    }

    /// Swap in `next` as the new world and refresh the local cache. The
    /// caller holds the lock.
    fn install(
        &mut self,
        shared: &SharedSets,
        guard: &mut MutexGuard<'_, Arc<MembershipWorld>>,
        next: MembershipWorld,
    ) {
        **guard = Arc::new(next);
        shared.generation.fetch_add(1, Ordering::Release);
        self.cache = Arc::clone(guard);
        self.cached_generation = shared.generation.load(Ordering::Relaxed);
    }

    /// Fire `p`'s pending marker at own-index `index`: clear it and
    /// finalize the rule-3 watermark — any send below this index may have
    /// been stamped over the pre-change version. (The caller records the
    /// full stamp.)
    fn fire_marker(
        &mut self,
        shared: &SharedSets,
        guard: &mut MutexGuard<'_, Arc<MembershipWorld>>,
        p: ProcessId,
        index: u32,
    ) {
        let mut next = MembershipWorld::clone(guard);
        next.pending_marker[p.idx()] = false;
        next.lmc[p.idx()] = next.lmc[p.idx()].max(index.saturating_sub(1));
        self.install(shared, guard, next);
    }

    /// Stamp one delivered event. Returns the stamp and whether this call
    /// changed cluster membership (the caller schedules a rebalance).
    fn stamp(&mut self, ev: Event, clock: &VectorClock, env: &ShardEnv) -> (ClusterStamp, bool) {
        self.refresh(&env.sets);
        let p = ev.process();
        let full = || ClusterStamp::Full {
            clock: clock.clone(),
        };
        let adaptive = self.strategy.is_adaptive();
        // Rule 2: a pending marker forces a recorded full stamp, whatever
        // the event kind. A marker set concurrently (cache lagging) is
        // missed here and the stamp projects over the pre-change version —
        // sound, see the module doc; the marker then fires on `p`'s next
        // event.
        if adaptive && self.cache.pending_marker[p.idx()] {
            let mut guard = lock(&env.sets.inner);
            self.fire_marker(&env.sets, &mut guard, p, ev.index().0);
            env.forced_full.fetch_add(1, Ordering::Relaxed);
            return (full(), false);
        }
        let cross = ev.kind.receive_source().filter(|src| {
            let v = self
                .cache
                .sets
                .version_of_root(self.cache.sets.find_readonly(p));
            !self.cache.sets.contains(v, src.process)
        });
        let Some(src) = cross else {
            // Rule 3: an intra-cluster receive of a pre-membership-change
            // send could project away departed-process knowledge without
            // recording anything; force it full instead.
            if adaptive {
                if let Some(src) = ev.kind.receive_source() {
                    if self.cache.stale_source(src.process, src.index.0) {
                        env.forced_full.fetch_add(1, Ordering::Relaxed);
                        return (full(), false);
                    }
                }
            }
            return (Self::project(&self.cache.sets, p, clock), false);
        };
        // Cluster receive under the cached view: re-run the rule ladder
        // under the lock with the freshest membership (another shard may
        // have merged or migrated since).
        let mut guard = lock(&env.sets.inner);
        if adaptive && guard.pending_marker[p.idx()] {
            self.fire_marker(&env.sets, &mut guard, p, ev.index().0);
            env.forced_full.fetch_add(1, Ordering::Relaxed);
            return (full(), false);
        }
        let ra = guard.sets.find_readonly(p);
        let rb = guard.sets.find_readonly(src.process);
        if ra == rb {
            // Merged concurrently — an ordinary intra-cluster receive,
            // unless rule 3 flags the send as pre-change.
            let stale = adaptive && guard.stale_source(src.process, src.index.0);
            self.cache = Arc::clone(&guard);
            self.cached_generation = env.sets.generation.load(Ordering::Relaxed);
            drop(guard);
            if stale {
                env.forced_full.fetch_add(1, Ordering::Relaxed);
                return (full(), false);
            }
            return (Self::project(&self.cache.sets, p, clock), false);
        }
        match self.strategy {
            StampStrategy::Merge1st { .. } => {
                if self.policy.on_cluster_receive(ra, rb, &guard.sets) {
                    let mut next = MembershipWorld::clone(&guard);
                    let (new_root, version) = next.sets.merge(ra, rb);
                    next.num_merges += 1;
                    self.policy.after_merge(ra, rb, new_root);
                    self.install(&env.sets, &mut guard, next);
                    drop(guard);
                    let stamp = ClusterStamp::Projected {
                        version,
                        clock: clock.project(self.cache.sets.members(version)),
                    };
                    (stamp, true)
                } else {
                    drop(guard);
                    (full(), false)
                }
            }
            StampStrategy::Adaptive(params) => {
                let my_size = guard.sets.size_of_root(ra);
                let their_size = guard.sets.size_of_root(rb);
                let mut drift = lock(&env.drift);
                if drift.should_merge(ra, rb, my_size + their_size, &params) {
                    let mut next = MembershipWorld::clone(&guard);
                    let (kept, version) = next.sets.merge(ra, rb);
                    drift.note_merge(if kept == ra { rb } else { ra });
                    drop(drift);
                    next.num_merges += 1;
                    self.install(&env.sets, &mut guard, next);
                    drop(guard);
                    let stamp = ClusterStamp::Projected {
                        version,
                        clock: clock.project(self.cache.sets.members(version)),
                    };
                    return (stamp, true);
                }
                let index = ev.index().0;
                let migrate = drift.on_blocked(p, index, rb, my_size, their_size, &params);
                if !migrate {
                    drop(drift);
                    drop(guard);
                    return (full(), false);
                }
                // Migrate `p` into the sender's cluster. The blocked CR
                // being stamped right now is `p`'s anchor (rule 1), and the
                // world swap under this lock is the entire migration — no
                // freeze, no barrier.
                drift.note_migration(p, index);
                drop(drift);
                let mut next = MembershipWorld::clone(&guard);
                let old_v = next.sets.version_of_root(ra);
                let remaining: Vec<ProcessId> = next
                    .sets
                    .members(old_v)
                    .iter()
                    .copied()
                    .filter(|&m| m != p)
                    .collect();
                next.sets.migrate(p, rb);
                next.num_migrations += 1;
                next.lmc[p.idx()] = index;
                for m in remaining {
                    // Rules 2+3 for the shrunk side: the marker keeps every
                    // message from `m` suspect until it fires, at which
                    // point the watermark is finalized (`fire_marker`).
                    next.pending_marker[m.idx()] = true;
                }
                self.install(&env.sets, &mut guard, next);
                drop(guard);
                (full(), true)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShardCore: one shard's complete delivery state
// ---------------------------------------------------------------------------

/// One delivered event with its cluster stamp, as handed from a shard to the
/// [`CutAssembler`].
#[derive(Clone, Debug)]
pub struct DeliveredRec {
    pub ev: Event,
    pub stamp: ClusterStamp,
}

/// The environment every shard of a computation shares.
pub struct ShardEnv {
    pub exchange: Exchange,
    pub sets: SharedSets,
    /// Drift-detection state shared by every shard's stamper (adaptive
    /// strategy only). Separate from the membership world on purpose: it
    /// influences *future* merge/migration decisions but never how an
    /// already-taken snapshot stamps, so it needs no atomicity with `sets`.
    pub drift: Mutex<DriftDecider>,
    /// Full stamps forced by the migration soundness rules (marker fires +
    /// stale-source hits) across all shards.
    pub forced_full: AtomicU64,
    /// The stamping strategy every shard of this computation runs.
    pub strategy: StampStrategy,
}

impl ShardEnv {
    /// A fresh environment for `n` processes.
    pub fn new(n: u32, strategy: StampStrategy) -> ShardEnv {
        ShardEnv {
            exchange: Exchange::new(),
            sets: SharedSets::new(n),
            drift: Mutex::new(DriftDecider::new(n)),
            forced_full: AtomicU64::new(0),
            strategy,
        }
    }
}

/// One shard's delivery state: reorder buffer, Fidge/Mattern frontier,
/// cluster stamper, and a positional writer handle on the shared store.
///
/// The core is fully synchronous — the threaded runtime wraps it in a mutex
/// and the schedule harness steps it directly, so both execute the exact
/// same logic.
pub struct ShardCore {
    pub id: ShardId,
    reorder: ShardReorderBuffer,
    fm: ShardFm,
    stamper: ShardStamper,
    store: Arc<PartitionedStore>,
    /// Delivered records not yet drained into the cut assembler.
    outbox: Vec<DeliveredRec>,
    /// This shard's full delivered order (per-shard WAL/checkpoint unit).
    log: Vec<Event>,
    /// Set when a delivery merged clusters; the runtime rebalances at the
    /// next message boundary and clears it.
    pub rebalance_needed: bool,
}

impl ShardCore {
    /// A core owning the processes for which `owned` is true, stamping
    /// under the environment's strategy.
    pub fn new(
        id: ShardId,
        n: u32,
        owned: Vec<bool>,
        store: Arc<PartitionedStore>,
        env: &ShardEnv,
    ) -> ShardCore {
        ShardCore {
            id,
            reorder: ShardReorderBuffer::new(n, owned.clone()),
            fm: ShardFm::new(n, owned),
            stamper: ShardStamper::new(env),
            store,
            outbox: Vec::new(),
            log: Vec::new(),
            rebalance_needed: false,
        }
    }

    /// Does this shard currently own process `p`?
    pub fn owns(&self, p: ProcessId) -> bool {
        self.reorder.owns(p)
    }

    /// Offer one event of an owned process; returns how many events this
    /// delivered (cross-shard wake-ups are appended to `wakes`).
    pub fn offer(
        &mut self,
        ev: Event,
        env: &ShardEnv,
        wakes: &mut Vec<Wake>,
    ) -> Result<u64, RejectReason> {
        let mut hooks = CoreHooks {
            me: self.id,
            fm: &mut self.fm,
            stamper: &mut self.stamper,
            store: &self.store,
            outbox: &mut self.outbox,
            log: &mut self.log,
            env,
            wakes,
            rebalance_needed: &mut self.rebalance_needed,
        };
        self.reorder.offer(ev, &mut hooks)
    }

    /// A cross-shard dependency became available: re-examine waiters.
    pub fn wake(&mut self, id: EventId, env: &ShardEnv, wakes: &mut Vec<Wake>) -> u64 {
        let mut hooks = CoreHooks {
            me: self.id,
            fm: &mut self.fm,
            stamper: &mut self.stamper,
            store: &self.store,
            outbox: &mut self.outbox,
            log: &mut self.log,
            env,
            wakes,
            rebalance_needed: &mut self.rebalance_needed,
        };
        self.reorder.wake(id, &mut hooks)
    }

    /// Drain the delivered records accumulated since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<DeliveredRec> {
        std::mem::take(&mut self.outbox)
    }

    /// Diagnostic view of the shard's reorder state.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        self.reorder.debug_state()
    }

    /// This shard's delivered order (for per-shard WAL/checkpointing).
    pub fn log(&self) -> &[Event] {
        &self.log
    }

    /// Total events delivered by this shard.
    pub fn delivered_total(&self) -> u64 {
        self.reorder.delivered_total()
    }

    /// Duplicate arrivals dropped by this shard.
    pub fn duplicates(&self) -> u64 {
        self.reorder.duplicates()
    }

    /// Events currently parked on this shard.
    pub fn depth(&self) -> usize {
        self.reorder.depth()
    }

    /// High-water mark of [`depth`](Self::depth).
    pub fn peak_depth(&self) -> usize {
        self.reorder.peak_depth()
    }

    /// Is this core between sync pairs? `pending_sync` holds the combined
    /// stamp between the two halves of a locally-delivered sync, and
    /// releasing a process inside that window would strand it — placement
    /// migrations check this and defer to the next boundary.
    pub fn sync_quiescent(&self) -> bool {
        self.fm.pending_sync.is_empty()
    }
}

/// The [`ShardHooks`] view over a core's non-reorder state, so readiness
/// probes and deliveries run *during* the reorder cascade with the effects
/// of everything delivered earlier in the same cascade.
struct CoreHooks<'a> {
    me: ShardId,
    fm: &'a mut ShardFm,
    stamper: &'a mut ShardStamper,
    store: &'a PartitionedStore,
    outbox: &'a mut Vec<DeliveredRec>,
    log: &'a mut Vec<Event>,
    env: &'a ShardEnv,
    wakes: &'a mut Vec<Wake>,
    rebalance_needed: &'a mut bool,
}

impl ShardHooks for CoreHooks<'_> {
    fn send_ready(&mut self, send: EventId) -> bool {
        // A send delivered locally before its receiver migrated away leaves
        // its clock in `in_flight` until the receiver's shard is released —
        // but by then release_process has published it, so the exchange is
        // authoritative for any send we do not own.
        self.env.exchange.ready_or_register(send, self.me)
    }

    fn sync_ready(&mut self, my_half: EventId, peer: EventId) -> bool {
        let frontier = self.fm.frontier[my_half.process.idx()].clone();
        self.env.exchange.publish(my_half, frontier, self.wakes);
        self.env.exchange.ready_or_register(peer, self.me)
    }

    fn deliver(&mut self, ev: Event) {
        // Store first: the exchange publication below is the release edge a
        // remote receive synchronizes on, so its source row is visible by
        // the time the far shard's store insert checks it.
        if let Err(e) = self.store.insert(ev) {
            // Causal delivery makes this unreachable; never wedge a shard
            // over a store refusal.
            eprintln!(
                "[cts-daemon] shard {}: store refused {}: {e}",
                self.me, ev.id
            );
        }
        let clock = self.fm.accept(ev, &self.env.exchange, self.wakes);
        let (stamp, merged) = self.stamper.stamp(ev, &clock, self.env);
        if merged {
            *self.rebalance_needed = true;
        }
        self.outbox.push(DeliveredRec { ev, stamp });
        self.log.push(ev);
    }
}

// ---------------------------------------------------------------------------
// Migration & rebalancing
// ---------------------------------------------------------------------------

/// Move ownership of process `p` from core `src` to core `dst`. The caller
/// holds both cores exclusively; no other core is involved, so this runs
/// either at a full-stop barrier (rebalance) or under a two-shard lock
/// while every other shard keeps ingesting (placement rescale). Returns how
/// many events were delivered as a side effect (re-offered pending events
/// and re-examined waiters may both cascade).
pub fn migrate_between(
    src: &mut ShardCore,
    dst: &mut ShardCore,
    p: ProcessId,
    env: &ShardEnv,
    wakes: &mut Vec<Wake>,
) -> u64 {
    assert_ne!(src.id, dst.id);
    let mut delivered = 0;
    let (watermark, pending) = src.reorder.release_process(p);
    let frontier = src.fm.release_process(p, &env.exchange, wakes);
    // `p`'s undrained delivered records follow it, so the assembler's
    // per-process queue keeps seeing `p` in index order no matter which
    // shard's outbox a cut drains first.
    let mut kept = Vec::with_capacity(src.outbox.len());
    let mut moved_recs = Vec::new();
    for rec in src.outbox.drain(..) {
        if rec.ev.process() == p {
            moved_recs.push(rec);
        } else {
            kept.push(rec);
        }
    }
    src.outbox = kept;
    dst.outbox.extend(moved_recs);
    dst.reorder.adopt_process(p, watermark);
    dst.fm.adopt_process(p, frontier);
    for ev in pending {
        match dst.offer(ev, env, wakes) {
            Ok(d) => delivered += d,
            Err(reason) => eprintln!(
                "[cts-daemon] shard {}: migrated event {} refused: {reason}",
                dst.id, ev.id
            ),
        }
    }
    // Local events parked under `p`'s events switch to cross-shard edges.
    let mut hooks = CoreHooks {
        me: src.id,
        fm: &mut src.fm,
        stamper: &mut src.stamper,
        store: &src.store,
        outbox: &mut src.outbox,
        log: &mut src.log,
        env,
        wakes,
        rebalance_needed: &mut src.rebalance_needed,
    };
    delivered + src.reorder.reexamine_process(p, &mut hooks)
}

/// [`migrate_between`] addressed through a full core slice (the full-stop
/// barrier callers' natural shape).
pub fn migrate_process(
    cores: &mut [&mut ShardCore],
    from: ShardId,
    to: ShardId,
    p: ProcessId,
    env: &ShardEnv,
    wakes: &mut Vec<Wake>,
) -> u64 {
    assert_ne!(from, to);
    let (lo, hi) = cores.split_at_mut(from.max(to));
    let (src, dst) = if from < to {
        (&mut *lo[from], &mut *hi[0])
    } else {
        (&mut *hi[0], &mut *lo[to])
    };
    migrate_between(src, dst, p, env, wakes)
}

/// Re-align process ownership with the current cluster partition: each
/// multi-process cluster is gathered onto the shard already owning the
/// plurality of its members. Runs at a full-stop barrier. Returns
/// `(events delivered as a side effect, processes migrated)`.
pub fn rebalance(
    cores: &mut [&mut ShardCore],
    routing: &[AtomicU32],
    env: &ShardEnv,
    wakes: &mut Vec<Wake>,
) -> (u64, u64) {
    let (world, _) = env.sets.snapshot();
    let partition = world.sets.current_partition();
    // Clear the flags up front: a merge performed *during* a migration's
    // cascading deliveries re-raises them, and the caller loops until no
    // shard asks again (merges are bounded by the process count, so the
    // loop terminates).
    for core in cores.iter_mut() {
        core.rebalance_needed = false;
    }
    let mut delivered = 0;
    let mut moves = 0;
    for members in partition.clusters() {
        if members.len() < 2 {
            continue;
        }
        let mut counts = vec![0usize; cores.len()];
        for &m in members {
            counts[routing[m.idx()].load(Ordering::Relaxed) as usize] += 1;
        }
        let mut target = 0;
        let mut best = 0;
        for (shard, &c) in counts.iter().enumerate() {
            if c > best {
                best = c;
                target = shard;
            }
        }
        for &m in members {
            let cur = routing[m.idx()].load(Ordering::Relaxed) as usize;
            if cur != target {
                delivered += migrate_process(cores, cur, target, m, env, wakes);
                routing[m.idx()].store(target as u32, Ordering::Relaxed);
                moves += 1;
            }
        }
    }
    (delivered, moves)
}

/// The initial balanced block partition of `n` processes over `shards`
/// shards (clusters start as singletons, so any balanced assignment agrees
/// with the cluster hierarchy).
pub fn initial_routing(n: u32, shards: usize) -> Vec<AtomicU32> {
    (0..n)
        .map(|p| AtomicU32::new((p as usize * shards / n.max(1) as usize) as u32))
        .collect()
}

/// The clusters wholly owned by `shard` under `routing` (singletons
/// included). Placement moves whole clusters so it never undoes the
/// cluster-locality invariant [`rebalance`] maintains; a cluster momentarily
/// straddling shards (mid-merge) is skipped and picked up next time.
pub fn clusters_on(
    world: &MembershipWorld,
    routing: &[AtomicU32],
    shard: ShardId,
) -> Vec<Vec<ProcessId>> {
    let partition = world.sets.current_partition();
    let mut groups = Vec::new();
    for members in partition.clusters() {
        let on_shard = |m: &ProcessId| routing[m.idx()].load(Ordering::Relaxed) as usize == shard;
        if !members.is_empty() && members.iter().all(on_shard) {
            groups.push(members.to_vec());
        }
    }
    groups
}

// ---------------------------------------------------------------------------
// PlacementEngine: occupancy-driven shard scaling and stealing
// ---------------------------------------------------------------------------

/// Q16 fixed-point one (the same scale as [`cts_core::cluster`]'s drift
/// EWMAs).
const Q16_ONE: u64 = 1 << 16;

/// Tuning for the placement engine. All ratios are Q16 fixed-point
/// multiples of the *even* share `1/active`, so the thresholds track the
/// current shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementParams {
    /// Never retire below this many shards.
    pub min_shards: usize,
    /// Never split above this many shards (the runtime clamps it to its
    /// pre-allocated slot count).
    pub max_shards: usize,
    /// EWMA decay shift: each message multiplies every shard's load by
    /// `1 - 2^-shift`. Larger = slower, smoother signal.
    pub ewma_shift: u32,
    /// Minimum messages between placement actions (and before the first).
    pub cooldown: u64,
    /// Split/steal when the hottest shard's share exceeds
    /// `even * hot_factor_q16 / 2^16`.
    pub hot_factor_q16: u64,
    /// Retire when the coldest shard's share falls below
    /// `even * cold_factor_q16 / 2^16` (and some other shard is not hot —
    /// retiring into a hot fleet only makes things worse).
    pub cold_factor_q16: u64,
}

impl Default for PlacementParams {
    fn default() -> PlacementParams {
        PlacementParams {
            min_shards: 2,
            max_shards: usize::MAX,
            ewma_shift: 6,
            cooldown: 64,
            hot_factor_q16: Q16_ONE * 3 / 2, // 1.5x the even share
            cold_factor_q16: Q16_ONE / 4,    // 0.25x the even share
        }
    }
}

/// What the placement engine wants done, between two message boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementAction {
    /// Activate a new shard and move about half of this hot shard's
    /// clusters onto it.
    Split(ShardId),
    /// Deactivate this cold shard, moving its clusters to the remaining
    /// shards.
    Retire(ShardId),
    /// Move one cluster from the hot shard to the cold one at a fixed
    /// shard count (`--balance`, or `--shards auto` already at a bound).
    Steal { from: ShardId, to: ShardId },
}

/// Per-shard occupancy tracking and the split/retire/steal policy.
///
/// Each processed message adds its work (events delivered plus resulting
/// queue depth) to the owning shard's Q16 EWMA while every other shard
/// decays, so a shard's *share* of the total is its share of recent work —
/// the same fixed-point machinery as `cluster/adaptive.rs`, integer-only
/// and deterministic. The runtime consults [`decide`](Self::decide) at
/// message boundaries; actions are applied with [`migrate_between`] under
/// the two shards' locks only, never a global freeze.
pub struct PlacementEngine {
    params: PlacementParams,
    /// Per-slot work EWMA, Q16.
    load: Vec<u64>,
    msgs: u64,
    last_action_at: u64,
    /// Clusters moved by steals (and splits/retires) so far.
    pub steals: u64,
    /// Splits + retires so far.
    pub rescales: u64,
}

impl PlacementEngine {
    /// An engine tracking `slots` shard slots.
    pub fn new(slots: usize, params: PlacementParams) -> PlacementEngine {
        PlacementEngine {
            params,
            load: vec![0; slots],
            msgs: 0,
            last_action_at: 0,
            steals: 0,
            rescales: 0,
        }
    }

    /// The engine's tuning.
    pub fn params(&self) -> &PlacementParams {
        &self.params
    }

    /// Record one processed message on `shard` carrying `work` units.
    pub fn note_message(&mut self, shard: ShardId, work: u64) {
        self.msgs += 1;
        let shift = self.params.ewma_shift;
        let add = work.min(1 << 20) * Q16_ONE;
        for (i, l) in self.load.iter_mut().enumerate() {
            let inject = if i == shard { add >> shift } else { 0 };
            *l = *l - (*l >> shift) + inject;
        }
    }

    /// `(hottest share in Q16, hottest shard)` over the first `active`
    /// slots. Zero total load reports an even share.
    pub fn occupancy_q16(&self, active: usize) -> (u64, ShardId) {
        let active = active.clamp(1, self.load.len());
        let total: u64 = self.load[..active].iter().sum();
        if total == 0 {
            return (Q16_ONE / active as u64, 0);
        }
        let (hot, &max) = self.load[..active]
            .iter()
            .enumerate()
            .max_by_key(|&(_, l)| l)
            .expect("active >= 1");
        (max * Q16_ONE / total, hot)
    }

    /// Pick the next placement action, if any, for `active` shards.
    /// `auto` enables split/retire; `balance` enables stealing. The
    /// cooldown restarts on every returned action (the caller applies it).
    pub fn decide(&mut self, active: usize, auto: bool, balance: bool) -> Option<PlacementAction> {
        if active == 0 || (!auto && !balance) {
            return None;
        }
        if self.msgs - self.last_action_at < self.params.cooldown {
            return None;
        }
        let active = active.min(self.load.len());
        let total: u64 = self.load[..active].iter().sum();
        if total == 0 {
            return None;
        }
        let share = |l: u64| l * Q16_ONE / total;
        let (hot, cold) = {
            let mut hot = 0;
            let mut cold = 0;
            for (i, &l) in self.load[..active].iter().enumerate() {
                if l > self.load[hot] {
                    hot = i;
                }
                if l < self.load[cold] {
                    cold = i;
                }
            }
            (hot, cold)
        };
        let even = Q16_ONE / active as u64;
        let hot_thresh = (even * self.params.hot_factor_q16) >> 16;
        let cold_thresh = (even * self.params.cold_factor_q16) >> 16;
        let is_hot = active > 1 && share(self.load[hot]) > hot_thresh;
        let action = if auto && is_hot && active < self.params.max_shards {
            Some(PlacementAction::Split(hot))
        } else if auto
            && !is_hot
            && active > self.params.min_shards
            && share(self.load[cold]) < cold_thresh
        {
            Some(PlacementAction::Retire(cold))
        } else if balance && is_hot && hot != cold {
            Some(PlacementAction::Steal {
                from: hot,
                to: cold,
            })
        } else {
            None
        };
        if action.is_some() {
            self.last_action_at = self.msgs;
        }
        action
    }

    /// Account a completed split: the new shard starts with half the
    /// source's load (the half of its clusters that moved there).
    pub fn note_split(&mut self, from: ShardId, to: ShardId) {
        self.rescales += 1;
        let half = self.load[from] / 2;
        self.load[from] -= half;
        self.load[to] = half;
    }

    /// Account a completed retire: the slot's load pours onto the absorbing
    /// shards through the next messages' EWMA updates.
    pub fn note_retire(&mut self, s: ShardId) {
        self.rescales += 1;
        self.load[s] = 0;
    }

    /// Account `moved` clusters stolen between shards at a fixed count.
    pub fn note_steal(&mut self, moved: u64) {
        self.steals += moved;
    }

    /// Per-slot occupancy shares in Q16 over the first `active` slots
    /// (even shares when no load has been recorded yet).
    pub fn shares_q16(&self, active: usize) -> Vec<u64> {
        let active = active.clamp(1, self.load.len());
        let total: u64 = self.load[..active].iter().sum();
        if total == 0 {
            return vec![Q16_ONE / active as u64; active];
        }
        self.load[..active]
            .iter()
            .map(|&l| l * Q16_ONE / total)
            .collect()
    }

    /// The least-loaded slot among the first `limit`.
    pub fn coldest(&self, limit: usize) -> ShardId {
        let limit = limit.clamp(1, self.load.len());
        (0..limit)
            .min_by_key(|&i| self.load[i])
            .expect("limit >= 1")
    }
}

// ---------------------------------------------------------------------------
// CutAssembler: incremental union of per-shard delivered prefixes
// ---------------------------------------------------------------------------

/// Merges per-shard delivered sequences into one global delivery order, for
/// snapshot publication (the "two-phase cut": shards publish their delivered
/// prefixes, the assembler emits the union's maximal causally-closed valid
/// prefix).
///
/// Consecutive cuts extend earlier ones — the merged log is persistent — so
/// published snapshots are prefix-monotone exactly like the single-worker
/// pipeline's. A cross-shard sync with only one half assembled (the other
/// shard has not processed its wake yet) *dangles*: its process's
/// contribution is truncated just before it and resumes at the next cut.
/// Receives cannot dangle, because a send's record always reaches the
/// assembler no later than its receive's (publication precedes consumption).
pub struct CutAssembler {
    n: u32,
    queues: Vec<VecDeque<DeliveredRec>>,
    /// Per-process count of events consumed into the merged log.
    taken: Vec<u32>,
    log: Vec<Event>,
    stamps: Vec<ClusterStamp>,
    /// Per-process `(event index, delivery position)` of cluster receives.
    crs: Vec<Vec<(u32, u32)>>,
}

impl CutAssembler {
    /// An empty assembler for `n` processes.
    pub fn new(n: u32) -> CutAssembler {
        CutAssembler {
            n,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            taken: vec![0; n as usize],
            log: Vec::new(),
            stamps: Vec::new(),
            crs: vec![Vec::new(); n as usize],
        }
    }

    /// Feed one shard's drained outbox (its events arrive in per-process
    /// index order because each shard delivers each owned process in order).
    pub fn ingest(&mut self, recs: Vec<DeliveredRec>) {
        for rec in recs {
            self.queues[rec.ev.process().idx()].push_back(rec);
        }
    }

    /// Extend the merged log as far as causal readiness allows.
    pub fn advance(&mut self) {
        loop {
            let mut progress = false;
            for p in 0..self.n as usize {
                while self.try_consume(p) {
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }

    fn try_consume(&mut self, p: usize) -> bool {
        let Some(front) = self.queues[p].front() else {
            return false;
        };
        debug_assert_eq!(front.ev.index().0, self.taken[p] + 1);
        match front.ev.kind {
            EventKind::Internal | EventKind::Send { .. } => {
                self.consume_one(p);
                true
            }
            EventKind::Receive { from } => {
                if self.taken[from.process.idx()] >= from.index.0 {
                    self.consume_one(p);
                    true
                } else {
                    false
                }
            }
            EventKind::Sync { peer } => {
                let q = peer.process.idx();
                let peer_next = self.taken[q] + 1 == peer.index.0;
                let peer_here = self.queues[q].front().is_some_and(|r| r.ev.id == peer);
                if peer_next && peer_here {
                    self.consume_one(p);
                    self.consume_one(q);
                    true
                } else {
                    false // dangles until the peer's shard catches up
                }
            }
        }
    }

    fn consume_one(&mut self, p: usize) {
        let rec = self.queues[p].pop_front().expect("checked by caller");
        let pos = self.log.len() as u32;
        if rec.stamp.is_cluster_receive() {
            self.crs[p].push((rec.ev.index().0, pos));
        }
        self.taken[p] = rec.ev.index().0;
        self.log.push(rec.ev);
        self.stamps.push(rec.stamp);
    }

    /// Events in the merged log so far.
    pub fn assembled(&self) -> u64 {
        self.log.len() as u64
    }

    /// The merged log itself (the unit a global checkpoint persists).
    pub fn log(&self) -> &[Event] {
        &self.log
    }

    /// Records ingested but not yet consumable (dangling sync tails).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Materialize the assembled prefix as a published snapshot's parts.
    /// `sets` must be a membership snapshot at least as new as every stamp
    /// in the log (the cut takes it after draining the outboxes).
    pub fn snapshot(
        &self,
        name: &str,
        sets: ClusterSets,
        num_merges: usize,
    ) -> (Trace, ClusterTimestamps) {
        let trace = Trace::from_delivery_order(name.to_string(), self.n, self.log.clone())
            .expect("assembled cut is a valid delivery order");
        let cts =
            ClusterTimestamps::from_parts(sets, self.stamps.clone(), self.crs.clone(), num_merges);
        (trace, cts)
    }
}

// ---------------------------------------------------------------------------
// SimShards: the deterministic schedule-exploration harness
// ---------------------------------------------------------------------------

/// A recorded sequence of scheduler choices driving [`SimShards`]. Each
/// `choose(k)` consumes the next recorded value modulo `k`; when the
/// recording is exhausted the schedule continues round-robin, so any prefix
/// of a failing schedule is itself a complete, deterministic schedule — the
/// property the shrinker in `tests/shard_schedules.rs` relies on.
#[derive(Clone, Debug)]
pub struct ShardSchedule {
    choices: Vec<u32>,
    cursor: usize,
}

impl ShardSchedule {
    /// A schedule replaying `choices`, then round-robin.
    pub fn new(choices: Vec<u32>) -> ShardSchedule {
        ShardSchedule { choices, cursor: 0 }
    }

    /// The deterministic default: pure round-robin.
    pub fn round_robin() -> ShardSchedule {
        ShardSchedule::new(Vec::new())
    }

    /// Pick one of `k` runnable shards.
    pub fn choose(&mut self, k: usize) -> usize {
        debug_assert!(k > 0);
        let c = self
            .choices
            .get(self.cursor)
            .copied()
            .unwrap_or(self.cursor as u32);
        self.cursor += 1;
        c as usize % k
    }

    /// How many choices were consumed so far.
    pub fn steps(&self) -> usize {
        self.cursor
    }
}

enum SimMsg {
    Batch(Vec<Event>),
    Wake(EventId),
}

/// The sharded engine, single-threaded: the same [`ShardCore`]s the daemon
/// runs on worker threads, stepped one message at a time under an explicit
/// [`ShardSchedule`]. Cross-shard wake-ups become inbox messages, and a
/// merge rebalances synchronously at the step boundary — exactly the
/// runtime's message-boundary barrier, minus the threads.
pub struct SimShards {
    name: String,
    env: ShardEnv,
    routing: Vec<AtomicU32>,
    cores: Vec<ShardCore>,
    inboxes: Vec<VecDeque<SimMsg>>,
    /// Cores are positional and never removed; a retired slot just goes
    /// inactive (routing stops pointing at it). Mirrors the runtime's
    /// active-slot discipline.
    active: Vec<bool>,
    assembler: CutAssembler,
    store: Arc<PartitionedStore>,
    rejected: u64,
}

/// Two distinct cores of one slice, mutably.
fn pair_mut(cores: &mut [ShardCore], a: usize, b: usize) -> (&mut ShardCore, &mut ShardCore) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = cores.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = cores.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

impl SimShards {
    /// A fresh simulated deployment under the default merge-on-first
    /// strategy.
    pub fn new(name: &str, n: u32, shards: usize, max_cluster_size: usize) -> SimShards {
        SimShards::with_strategy(
            name,
            n,
            shards,
            StampStrategy::Merge1st { max_cluster_size },
        )
    }

    /// A fresh simulated deployment under an explicit strategy.
    pub fn with_strategy(name: &str, n: u32, shards: usize, strategy: StampStrategy) -> SimShards {
        let shards = shards.clamp(1, n.max(1) as usize);
        let env = ShardEnv::new(n, strategy);
        let routing = initial_routing(n, shards);
        let store = Arc::new(PartitionedStore::new(n));
        let cores = (0..shards)
            .map(|s| {
                let owned: Vec<bool> = (0..n)
                    .map(|p| routing[p as usize].load(Ordering::Relaxed) as usize == s)
                    .collect();
                ShardCore::new(s, n, owned, Arc::clone(&store), &env)
            })
            .collect();
        SimShards {
            name: name.to_string(),
            env,
            routing,
            cores,
            inboxes: (0..shards).map(|_| VecDeque::new()).collect(),
            active: vec![true; shards],
            assembler: CutAssembler::new(n),
            store,
            rejected: 0,
        }
    }

    /// Number of shard slots ever created (including retired ones).
    pub fn num_shards(&self) -> usize {
        self.cores.len()
    }

    /// Number of currently active shards.
    pub fn active_shards(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Is slot `s` active (routing may point at it)?
    pub fn is_active(&self, s: ShardId) -> bool {
        self.active.get(s).copied().unwrap_or(false)
    }

    /// Live-split shard `from`: activate a fresh core and move roughly half
    /// of `from`'s (whole) clusters onto it, exactly like the runtime's
    /// autoscaler between two messages. Returns the new shard id, or `None`
    /// when the split must defer — fewer than two movable clusters, or
    /// `from` is mid sync pair.
    pub fn split_shard(&mut self, from: ShardId) -> Option<ShardId> {
        if !self.is_active(from) || !self.cores[from].sync_quiescent() {
            return None;
        }
        let (world, _) = self.env.sets.snapshot();
        let groups = clusters_on(&world, &self.routing, from);
        if groups.len() < 2 {
            return None;
        }
        let n = self.routing.len() as u32;
        let to = self.cores.len();
        self.cores.push(ShardCore::new(
            to,
            n,
            vec![false; n as usize],
            Arc::clone(&self.store),
            &self.env,
        ));
        self.inboxes.push(VecDeque::new());
        self.active.push(true);
        let mut wakes = Vec::new();
        // Alternate clusters move; the source keeps the other half.
        for group in groups.iter().skip(1).step_by(2) {
            for &p in group {
                let (src, dst) = pair_mut(&mut self.cores, from, to);
                migrate_between(src, dst, p, &self.env, &mut wakes);
                self.routing[p.idx()].store(to as u32, Ordering::Relaxed);
            }
        }
        self.dispatch(wakes);
        Some(to)
    }

    /// Live-retire shard `s`: move every cluster it owns onto the remaining
    /// active shards (round-robin) and deactivate the slot. Returns `false`
    /// when the retire must defer — `s` is the last active shard, it is mid
    /// sync pair, or a mid-merge cluster straddles shards.
    pub fn retire_shard(&mut self, s: ShardId) -> bool {
        let others: Vec<ShardId> = (0..self.cores.len())
            .filter(|&i| i != s && self.is_active(i))
            .collect();
        if !self.is_active(s) || others.is_empty() || !self.cores[s].sync_quiescent() {
            return false;
        }
        let (world, _) = self.env.sets.snapshot();
        let groups = clusters_on(&world, &self.routing, s);
        let covered: usize = groups.iter().map(Vec::len).sum();
        let routed = (0..self.routing.len())
            .filter(|&p| self.routing[p].load(Ordering::Relaxed) as usize == s)
            .count();
        if covered != routed {
            return false; // a straddling cluster pins `s`; retry later
        }
        let mut wakes = Vec::new();
        for (i, group) in groups.iter().enumerate() {
            let to = others[i % others.len()];
            for &p in group {
                let (src, dst) = pair_mut(&mut self.cores, s, to);
                migrate_between(src, dst, p, &self.env, &mut wakes);
                self.routing[p.idx()].store(to as u32, Ordering::Relaxed);
            }
        }
        self.active[s] = false;
        self.dispatch(wakes);
        true
    }

    /// Route one arriving event to its owning shard's inbox.
    pub fn inject(&mut self, ev: Event) {
        self.inject_batch(&[ev]);
    }

    /// Route a client batch: events are split by the routing table and each
    /// shard's slice arrives as ONE message, exactly like the runtime's
    /// `enqueue`. The distinction matters: a shard services an entire batch
    /// message before the rebalance barrier, so deliveries *within* a batch
    /// can overtake a pending migration that single-event injection would
    /// force to happen first.
    pub fn inject_batch(&mut self, events: &[Event]) {
        let mut per: Vec<Vec<Event>> = vec![Vec::new(); self.cores.len()];
        for &ev in events {
            let p = ev.process();
            let shard = if p.0 < self.routing.len() as u32 {
                self.routing[p.idx()].load(Ordering::Relaxed) as usize
            } else {
                0 // unknown process: let shard 0 reject it
            };
            per[shard].push(ev);
        }
        for (shard, evs) in per.into_iter().enumerate() {
            if !evs.is_empty() {
                self.inboxes[shard].push_back(SimMsg::Batch(evs));
            }
        }
    }

    /// Shards with at least one queued message.
    pub fn runnable(&self) -> Vec<ShardId> {
        (0..self.cores.len())
            .filter(|&s| !self.inboxes[s].is_empty())
            .collect()
    }

    /// Process exactly one queued message on `shard`; dispatch resulting
    /// wake-ups and perform any required rebalance synchronously.
    pub fn step(&mut self, shard: ShardId) {
        let Some(msg) = self.inboxes[shard].pop_front() else {
            return;
        };
        let mut wakes = Vec::new();
        match msg {
            SimMsg::Batch(evs) => {
                for ev in evs {
                    let p = ev.process();
                    if !self.cores[shard].owns(p) {
                        // Routing moved while the message was queued:
                        // forward (each straggler as its own message).
                        if p.0 < self.routing.len() as u32 {
                            let target = self.routing[p.idx()].load(Ordering::Relaxed) as usize;
                            self.inboxes[target].push_back(SimMsg::Batch(vec![ev]));
                        } else {
                            self.rejected += 1;
                        }
                        continue;
                    }
                    if self.cores[shard].offer(ev, &self.env, &mut wakes).is_err() {
                        self.rejected += 1;
                    }
                }
            }
            SimMsg::Wake(id) => {
                self.cores[shard].wake(id, &self.env, &mut wakes);
            }
        }
        self.dispatch(wakes);
        while self.cores.iter().any(|c| c.rebalance_needed) {
            let mut wakes = Vec::new();
            let mut cores: Vec<&mut ShardCore> = self.cores.iter_mut().collect();
            rebalance(&mut cores, &self.routing, &self.env, &mut wakes);
            self.dispatch(wakes);
        }
    }

    fn dispatch(&mut self, wakes: Vec<Wake>) {
        for (shard, id) in wakes {
            self.inboxes[shard].push_back(SimMsg::Wake(id));
        }
    }

    /// Step under `schedule` until every inbox is empty.
    pub fn run_to_quiescence(&mut self, schedule: &mut ShardSchedule) {
        loop {
            let runnable = self.runnable();
            if runnable.is_empty() {
                break;
            }
            let pick = schedule.choose(runnable.len());
            self.step(runnable[pick]);
        }
    }

    /// Take a two-phase cut: drain every shard's delivered records, extend
    /// the merged order, and materialize the snapshot parts.
    pub fn cut(&mut self) -> (Trace, ClusterTimestamps) {
        for core in &mut self.cores {
            let recs = core.drain_outbox();
            self.assembler.ingest(recs);
        }
        self.assembler.advance();
        let (world, _) = self.env.sets.snapshot();
        self.assembler
            .snapshot(&self.name, world.sets.clone(), world.num_merges as usize)
    }

    /// The current membership world (for tests asserting on migrations).
    pub fn world(&self) -> Arc<MembershipWorld> {
        self.env.sets.snapshot().0
    }

    /// The shared store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// Total events delivered across all shards.
    pub fn delivered_total(&self) -> u64 {
        self.cores.iter().map(|c| c.delivered_total()).sum()
    }

    /// Duplicate arrivals dropped across all shards.
    pub fn duplicates(&self) -> u64 {
        self.cores.iter().map(|c| c.duplicates()).sum()
    }

    /// Events refused outright (unknown process / conflicting duplicate).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Current shard of process `p` (for tests that assert rebalancing).
    pub fn shard_of(&self, p: ProcessId) -> ShardId {
        self.routing[p.idx()].load(Ordering::Relaxed) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_core::ClusterEngine;
    use cts_model::linearize::relinearize;
    use cts_workloads::spmd::Stencil1D;
    use cts_workloads::Workload;

    #[test]
    fn exchange_publish_take_round_trip() {
        let ex = Exchange::new();
        let id = EventId::new(ProcessId(3), cts_model::EventIndex(7));
        let mut wakes = Vec::new();
        assert!(!ex.ready_or_register(id, 1));
        assert!(!ex.ready_or_register(id, 2));
        assert!(!ex.ready_or_register(id, 1)); // deduped
        ex.publish(id, VectorClock::zero(4), &mut wakes);
        assert_eq!(wakes, vec![(1, id), (2, id)]);
        assert!(ex.ready_or_register(id, 5));
        assert_eq!(ex.take(id), VectorClock::zero(4));
    }

    #[test]
    fn sim_round_robin_matches_offline_engine() {
        let t = Stencil1D { procs: 8, iters: 5 }.generate(17);
        for shards in [1, 2, 4] {
            let mut sim = SimShards::new("sim", t.num_processes(), shards, 4);
            for &ev in relinearize(&t, 5).events() {
                sim.inject(ev);
            }
            sim.run_to_quiescence(&mut ShardSchedule::round_robin());
            assert_eq!(
                sim.delivered_total(),
                t.num_events() as u64,
                "{shards} shards"
            );
            let (trace, cts) = sim.cut();
            assert_eq!(trace.num_events(), t.num_events());
            let offline = ClusterEngine::run(&t, MergeOnFirst::new(4));
            for e in t.all_event_ids() {
                for f in t.all_event_ids() {
                    assert_eq!(
                        cts.precedes(&trace, e, f),
                        offline.precedes(&t, e, f),
                        "{shards} shards: {e} -> {f}"
                    );
                }
            }
            assert_eq!(sim.store().len(), t.num_events() as u64);
        }
    }

    #[test]
    fn placement_engine_splits_hot_retires_cold_respects_cooldown() {
        let params = PlacementParams {
            cooldown: 8,
            ..PlacementParams::default()
        };
        let mut eng = PlacementEngine::new(4, params);
        // All work lands on shard 0: it must become a split candidate.
        for _ in 0..32 {
            eng.note_message(0, 10);
        }
        let (share, hot) = eng.occupancy_q16(2);
        assert_eq!(hot, 0);
        assert!(share > Q16_ONE * 9 / 10, "share {share}");
        assert_eq!(eng.decide(2, true, false), Some(PlacementAction::Split(0)));
        // Cooldown just restarted: no immediate second action.
        assert_eq!(eng.decide(2, true, false), None);
        eng.note_split(0, 2);
        // Balanced load across three shards, then shard 1 goes idle while
        // 0 and 2 stay warm and even: retire fires on 1.
        let mut eng = PlacementEngine::new(4, params);
        for i in 0..30 {
            eng.note_message(i % 3, 10);
        }
        for i in 0..64 {
            eng.note_message(if i % 2 == 0 { 0 } else { 2 }, 10);
        }
        assert_eq!(eng.decide(3, true, false), Some(PlacementAction::Retire(1)));
        eng.note_retire(1);
        assert_eq!(eng.rescales, 1);
        // Hot at the max shard count with balance on: steal, not split.
        let mut eng = PlacementEngine::new(2, params);
        for _ in 0..32 {
            eng.note_message(1, 10);
        }
        assert_eq!(
            eng.decide(2, true, true),
            Some(PlacementAction::Split(1)),
            "slots remain, split wins"
        );
        let mut eng = PlacementEngine::new(
            2,
            PlacementParams {
                max_shards: 2,
                ..params
            },
        );
        for _ in 0..32 {
            eng.note_message(1, 10);
        }
        assert_eq!(
            eng.decide(2, true, true),
            Some(PlacementAction::Steal { from: 1, to: 0 })
        );
    }

    #[test]
    fn sim_split_and_retire_stay_equivalent_to_offline() {
        let t = Stencil1D { procs: 8, iters: 5 }.generate(23);
        let events = relinearize(&t, 9);
        let events = events.events();
        let third = events.len() / 3;
        let mut sim = SimShards::new("autoscale", t.num_processes(), 2, 4);
        for &ev in &events[..third] {
            sim.inject(ev);
        }
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        let new = sim.split_shard(0);
        assert!(new.is_some(), "quiescent split must succeed");
        assert_eq!(sim.active_shards(), 3);
        for &ev in &events[third..2 * third] {
            sim.inject(ev);
        }
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        assert!(sim.retire_shard(new.unwrap()), "quiescent retire");
        assert_eq!(sim.active_shards(), 2);
        for &ev in &events[2 * third..] {
            sim.inject(ev);
        }
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        assert_eq!(sim.delivered_total(), t.num_events() as u64);
        let (trace, cts) = sim.cut();
        assert_eq!(trace.num_events(), t.num_events());
        let offline = ClusterEngine::run(&t, MergeOnFirst::new(4));
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    cts.precedes(&trace, e, f),
                    offline.precedes(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn merge_triggers_rebalance_onto_one_shard() {
        // Stencil neighbors exchange messages, so MergeOnFirst glues
        // adjacent processes; after quiescence every cluster must be
        // shard-local.
        let t = Stencil1D { procs: 8, iters: 4 }.generate(3);
        let mut sim = SimShards::new("rebalance", t.num_processes(), 4, 4);
        for &ev in t.events() {
            sim.inject(ev);
        }
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        assert_eq!(sim.delivered_total(), t.num_events() as u64);
        let (world, generation) = sim.env.sets.snapshot();
        assert!(generation > 0, "stencil must merge some clusters");
        for members in world.sets.current_partition().clusters() {
            let shard0 = sim.shard_of(members[0]);
            for &m in members {
                assert_eq!(sim.shard_of(m), shard0, "cluster split across shards");
            }
        }
    }
}
