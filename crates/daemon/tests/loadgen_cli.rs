//! CLI contract of the `cts-loadgen` binary: argument errors are *usage*
//! errors — print the usage block to stderr and exit 2 — never panics,
//! hangs, or silent misconfiguration. Exit 2 is distinct from exit 1
//! (differential mismatch / runtime failure), so CI scripts can tell a
//! typo from a regression.

use std::process::Command;

fn loadgen(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cts-loadgen"))
        .args(args)
        .output()
        .expect("spawn cts-loadgen")
}

fn assert_usage_exit(args: &[&str]) {
    let out = loadgen(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("usage: cts-loadgen"),
        "{args:?} should print usage, stderr was: {stderr}"
    );
}

#[test]
fn unknown_flag_prints_usage_and_exits_2() {
    assert_usage_exit(&["--no-such-flag"]);
    let out = loadgen(&["--frobnicate"]);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown argument: --frobnicate"),
        "the offending flag should be named"
    );
}

#[test]
fn missing_flag_values_print_usage_and_exit_2() {
    // A value-taking flag at the end of the argument list has no value.
    for flag in [
        "--addr",
        "--connections",
        "--seed",
        "--followers",
        "--follower-addr",
        "--window-page",
    ] {
        assert_usage_exit(&[flag]);
    }
}

#[test]
fn malformed_values_print_usage_and_exit_2() {
    assert_usage_exit(&["--addr", "not-an-address"]);
    assert_usage_exit(&["--follower-addr", "999.999.999.999:70000"]);
    assert_usage_exit(&["--connections", "many"]);
    assert_usage_exit(&["--followers", "-3"]);
}

#[test]
fn help_prints_usage_and_exits_2() {
    assert_usage_exit(&["--help"]);
    assert_usage_exit(&["-h"]);
}

#[test]
fn contradictory_follower_flags_exit_2() {
    // In-process followers need a durable leader to subscribe to.
    let out = loadgen(&["--smoke", "--followers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--data-dir"),
        "the error should point at the missing --data-dir"
    );
    // In-process and external fleets are mutually exclusive.
    let out = loadgen(&[
        "--smoke",
        "--followers",
        "2",
        "--follower-addr",
        "127.0.0.1:1",
    ]);
    assert_eq!(out.status.code(), Some(2));
}
