//! Precedence-query latency across every backend in the workspace — the
//! query-side comparison behind §1.1 and §2.4: precomputed Fidge/Mattern
//! (O(1)), cluster timestamps (O(1)/O(c log R)), recompute-forward cache
//! (O(N·chain)), Fowler/Zwaenepoel search (O(messages)), and the SK
//! differential store (O(checkpoint interval)).

use criterion::{criterion_group, criterion_main, Criterion};
use cts_baselines::{DdvStore, DiffStore};
use cts_bench::clustered_trace;
use cts_core::cluster::ClusterEngine;
use cts_core::fm::FmStore;
use cts_core::strategy::MergeOnNth;
use cts_model::EventId;
use cts_store::timestamp_cache::TimestampCache;

fn query_pairs(trace: &cts_model::Trace, k: usize) -> Vec<(EventId, EventId)> {
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    (0..k)
        .map(|i| {
            let a = ids[(i * 7919) % ids.len()];
            let b = ids[(i * 104729 + 13) % ids.len()];
            (a, b)
        })
        .collect()
}

fn bench_precedence(c: &mut Criterion) {
    let trace = clustered_trace(200, 8);
    let pairs = query_pairs(&trace, 256);
    let mut g = c.benchmark_group("precedence_256_queries");

    let fm = FmStore::compute(&trace);
    g.bench_function("fm_precomputed", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(e, f)| fm.precedes(&trace, e, f))
                .count()
        });
    });

    let cts = ClusterEngine::run(&trace, MergeOnNth::new(trace.num_processes(), 13, 5.0));
    g.bench_function("cluster_timestamps", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(e, f)| cts.precedes(&trace, e, f))
                .count()
        });
    });

    let fz = DdvStore::compute(&trace);
    g.bench_function("fowler_zwaenepoel_search", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(e, f)| fz.precedes(&trace, e, f))
                .count()
        });
    });

    let sk = DiffStore::compute(&trace, 16);
    g.bench_function("sk_differential_reconstruct", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(e, f)| sk.precedes(&trace, e, f))
                .count()
        });
    });

    g.bench_function("recompute_forward_cache", |b| {
        b.iter(|| {
            let mut cache = TimestampCache::new(&trace, 64);
            pairs
                .iter()
                .filter(|&&(e, f)| cache.precedes(e, f))
                .count()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_precedence);
criterion_main!(benches);
