//! Online cluster-timestamp stamping throughput per strategy — the cost of
//! the paper's contribution on the monitoring entity's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cts_bench::clustered_trace;
use cts_core::cluster::ClusterEngine;
use cts_core::strategy::{MergeOnFirst, MergeOnNth, NeverMerge};
use cts_core::two_pass::static_pipeline;

fn bench_strategies(c: &mut Criterion) {
    let trace = clustered_trace(200, 8);
    let n = trace.num_processes();
    let mut g = c.benchmark_group("cluster_engine_run");
    g.throughput(Throughput::Elements(trace.num_events() as u64));

    g.bench_function(BenchmarkId::new("merge_on_first", 13), |b| {
        b.iter(|| ClusterEngine::run(&trace, MergeOnFirst::new(13)).num_cluster_receives());
    });
    g.bench_function(BenchmarkId::new("merge_on_nth_t10", 13), |b| {
        b.iter(|| {
            ClusterEngine::run(&trace, MergeOnNth::new(n, 13, 10.0)).num_cluster_receives()
        });
    });
    g.bench_function(BenchmarkId::new("never_merge", 13), |b| {
        b.iter(|| ClusterEngine::run(&trace, NeverMerge).num_cluster_receives());
    });
    g.bench_function(BenchmarkId::new("static_two_pass", 13), |b| {
        b.iter(|| static_pipeline(&trace, 13).1.num_cluster_receives());
    });
    g.finish();
}

fn bench_max_cs_effect(c: &mut Criterion) {
    let trace = clustered_trace(200, 8);
    let mut g = c.benchmark_group("cluster_engine_by_max_cs");
    g.throughput(Throughput::Elements(trace.num_events() as u64));
    for max_cs in [2usize, 13, 50] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_cs),
            &max_cs,
            |b, &max_cs| {
                b.iter(|| {
                    ClusterEngine::run(&trace, MergeOnFirst::new(max_cs)).num_cluster_receives()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_max_cs_effect);
criterion_main!(benches);
