//! The cost of regenerating the paper's figures: one full cluster-size sweep
//! per strategy on the Figure 4/5 sample computations. (The figures' *data*
//! comes from `cts-experiments`; this bench tracks how long regeneration
//! takes.)

use criterion::{criterion_group, criterion_main, Criterion};
use cts_analysis::sweep::{sweep, StrategyKind};
use cts_workloads::suite::figure_pair;

fn bench_figure_sweeps(c: &mut Criterion) {
    let (worst, smooth) = figure_pair();
    let sizes: Vec<usize> = (2..=50).step_by(4).collect(); // sparse axis for the bench
    let mut g = c.benchmark_group("figure_sweep");
    g.sample_size(10);

    g.bench_function("fig4_static_smooth", |b| {
        b.iter(|| sweep(&smooth, StrategyKind::StaticGreedy, &sizes).ratios.len());
    });
    g.bench_function("fig4_merge1st_smooth", |b| {
        b.iter(|| sweep(&smooth, StrategyKind::MergeOnFirst, &sizes).ratios.len());
    });
    g.bench_function("fig5_mergeNth10_worst", |b| {
        b.iter(|| {
            sweep(&worst, StrategyKind::MergeOnNth { threshold: 10.0 }, &sizes)
                .ratios
                .len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_figure_sweeps);
criterion_main!(benches);
