//! Store-level costs: B+-tree lookups, event-store ingest, paged-memory
//! greatest-concurrent queries (the §1.1 thrashing scenario), and scrolling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cts_bench::clustered_trace;
use cts_core::fm::FmStore;
use cts_model::EventId;
use cts_store::btree::{key_of, BPlusTree};
use cts_store::event_store::EventStore;
use cts_store::queries::{greatest_concurrent, scroll_window, FmBackend};
use cts_store::vm_sim::PagedTimestampStore;

fn bench_btree(c: &mut Criterion) {
    let trace = clustered_trace(200, 8);
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    let mut g = c.benchmark_group("btree");
    g.throughput(Throughput::Elements(ids.len() as u64));
    g.bench_function("insert_all", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for (i, &id) in ids.iter().enumerate() {
                t.insert(key_of(id), i as u32);
            }
            t.len()
        });
    });
    let mut tree = BPlusTree::new();
    for (i, &id) in ids.iter().enumerate() {
        tree.insert(key_of(id), i as u32);
    }
    g.bench_function("get_all", |b| {
        b.iter(|| {
            ids.iter()
                .filter(|&&id| tree.get(key_of(id)).is_some())
                .count()
        });
    });
    g.finish();
}

fn bench_event_store_ingest(c: &mut Criterion) {
    let trace = clustered_trace(200, 8);
    let mut g = c.benchmark_group("event_store");
    g.throughput(Throughput::Elements(trace.num_events() as u64));
    g.bench_function("ingest", |b| {
        b.iter(|| EventStore::from_trace(&trace).len());
    });
    g.finish();
}

fn bench_paged_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("paged_queries");
    g.sample_size(10);
    for &n in &[100u32, 400] {
        let trace = clustered_trace(n, 8);
        let fm = FmStore::compute(&trace);
        let probe = trace.at(trace.num_events() / 2).id;
        g.bench_with_input(
            BenchmarkId::new("greatest_concurrent_paged", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut paged = PagedTimestampStore::new(&trace, &fm, 1024);
                    let _ = greatest_concurrent(&mut paged, &trace, probe);
                    paged.page_reads()
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("scroll_window_fm", n), &n, |b, _| {
            b.iter(|| scroll_window(&mut FmBackend(&fm), &trace, 1, 4));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_btree, bench_event_store_ingest, bench_paged_queries);
criterion_main!(benches);
