//! Fidge/Mattern stamping throughput versus process count: the O(N)-per-event
//! cost that motivates the whole paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cts_bench::{clustered_trace, SCALES};
use cts_core::fm::{FmEngine, FmStore};

fn bench_fm_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("fm_engine_accept");
    for &n in SCALES {
        let trace = clustered_trace(n, 8);
        g.throughput(Throughput::Elements(trace.num_events() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| {
                let mut eng = FmEngine::new(t.num_processes());
                let mut acc = 0u64;
                for &ev in t.events() {
                    acc = acc.wrapping_add(eng.accept(ev).as_slice()[0] as u64);
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_fm_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("fm_store_compute");
    for &n in &[100u32, 400] {
        let trace = clustered_trace(n, 8);
        g.throughput(Throughput::Elements(trace.num_events() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| FmStore::compute(t).bytes());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fm_engine, bench_fm_store);
criterion_main!(benches);
