//! The Figure 3 static clustering algorithm's O(N³) scaling — "since this is
//! a static algorithm, this performance is acceptable" (§3.1) — plus the
//! alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cts_bench::{clustered_trace, SCALES};
use cts_core::clustering::{greedy_pairwise, kmedoid};
use cts_model::comm::CommMatrix;

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_pairwise_by_n");
    g.sample_size(10);
    for &n in SCALES {
        let trace = clustered_trace(n, 6);
        let matrix = CommMatrix::from_trace(&trace);
        g.bench_with_input(BenchmarkId::from_parameter(n), &matrix, |b, m| {
            b.iter(|| greedy_pairwise(m, 13).num_clusters());
        });
    }
    g.finish();
}

fn bench_clusterers(c: &mut Criterion) {
    let trace = clustered_trace(200, 6);
    let matrix = CommMatrix::from_trace(&trace);
    let mut g = c.benchmark_group("clusterers_n200");
    g.sample_size(10);
    g.bench_function("greedy_pairwise", |b| {
        b.iter(|| greedy_pairwise(&matrix, 13).num_clusters());
    });
    g.bench_function("kmedoid", |b| {
        b.iter(|| kmedoid(&matrix, 16, 20).num_clusters());
    });
    g.finish();
}

criterion_group!(benches, bench_greedy_scaling, bench_clusterers);
criterion_main!(benches);
