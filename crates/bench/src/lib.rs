//! Shared fixtures for the Criterion benchmarks: deterministic traces at a
//! few scales, so every bench measures the same inputs.

use cts_model::Trace;
use cts_workloads::synthetic::PlantedClusters;
use cts_workloads::web::WebServer;
use cts_workloads::Workload;

/// A locality-rich trace with `n` processes and roughly `n * density`
/// messages (planted clusters of ~10 processes).
pub fn clustered_trace(n: u32, density: u32) -> Trace {
    PlantedClusters {
        procs: n,
        groups: (n / 10).max(1),
        messages: n * density,
        p_intra: 0.9,
    }
    .generate(4242)
}

/// A hub-heavy web-server trace (the worst-case shape in the figures).
pub fn web_trace(requests: u32) -> Trace {
    WebServer {
        clients: 24,
        workers: 12,
        requests,
        affinity: 0.6,
    }
    .generate(4242)
}

/// The process counts the scaling benches sweep.
pub const SCALES: &[u32] = &[50, 100, 200, 400];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            clustered_trace(50, 8).events(),
            clustered_trace(50, 8).events()
        );
        assert_eq!(web_trace(100).events(), web_trace(100).events());
    }
}
