//! `cts-bench` — the workspace's dependency-free benchmark runner.
//!
//! Ports the former Criterion benches onto `cts_util::bench::Bencher`:
//! every group measures the same deterministic fixtures (see `lib.rs`), and
//! the report is machine-readable JSON on stdout (schema `cts-bench/1`).
//!
//! ```text
//! cargo run --release -p cts-bench                 # full run
//! cargo run --release -p cts-bench -- --quick      # short samples (CI smoke)
//! cargo run --release -p cts-bench -- precedence   # only ids containing "precedence"
//! ```

use cts_analysis::sweep::{sweep, StrategyKind};
use cts_baselines::{DdvStore, DiffStore};
use cts_bench::{clustered_trace, SCALES};
use cts_core::cluster::ClusterEngine;
use cts_core::clustering::{greedy_pairwise, kmedoid};
use cts_core::fm::{FmEngine, FmStore};
use cts_core::strategy::{MergeOnFirst, MergeOnNth, NeverMerge};
use cts_core::two_pass::static_pipeline;
use cts_daemon::wire::{self, Msg};
use cts_daemon::ReorderBuffer;
use cts_model::comm::CommMatrix;
use cts_model::linearize::relinearize;
use cts_model::EventId;
use cts_store::btree::{key_of, BPlusTree};
use cts_store::event_store::EventStore;
use cts_store::queries::{greatest_concurrent, scroll_window, FmBackend};
use cts_store::timestamp_cache::TimestampCache;
use cts_store::vm_sim::PagedTimestampStore;
use cts_util::bench::Bencher;
use cts_workloads::suite::figure_pair;

/// A bencher plus a substring filter over `group/name` ids.
struct Runner {
    bencher: Bencher,
    filter: Option<String>,
}

impl Runner {
    fn run<T, F: FnMut() -> T>(&mut self, group: &str, name: &str, f: F) {
        let id = format!("{group}/{name}");
        if let Some(pat) = &self.filter {
            if !id.contains(pat.as_str()) {
                return;
            }
        }
        let e = self.bencher.bench(group, name, f);
        eprintln!("{:<48} median {:>12} ns", e.id(), e.median_ns);
    }

    /// Record a quality metric (a count, not a duration) as a bench entry so
    /// `bench_gate.py --require-ratio` can gate on it. Same idiom as the c10k
    /// idle-cost entries in the load generator: the value is stored in the
    /// ns fields verbatim.
    fn scalar(&mut self, group: &str, name: &str, v: f64) {
        let id = format!("{group}/{name}");
        if let Some(pat) = &self.filter {
            if !id.contains(pat.as_str()) {
                return;
            }
        }
        let e = cts_util::bench::BenchEntry {
            group: group.to_string(),
            name: name.to_string(),
            samples: 1,
            iters_per_sample: 1,
            min_ns: v,
            median_ns: v,
            p95_ns: v,
            mean_ns: v,
        };
        eprintln!("{:<48} value  {:>12}", e.id(), v);
        self.bencher.record_entry(e);
    }
}

fn bench_fm(r: &mut Runner) {
    for &n in SCALES {
        let trace = clustered_trace(n, 8);
        r.run("fm_engine_accept", &n.to_string(), || {
            let mut eng = FmEngine::new(trace.num_processes());
            let mut acc = 0u64;
            for &ev in trace.events() {
                acc = acc.wrapping_add(eng.accept(ev).as_slice()[0] as u64);
            }
            acc
        });
    }
    for &n in &[100u32, 400] {
        let trace = clustered_trace(n, 8);
        r.run("fm_store_compute", &n.to_string(), || {
            FmStore::compute(&trace).bytes()
        });
    }
}

fn bench_cluster_engine(r: &mut Runner) {
    let trace = clustered_trace(200, 8);
    let n = trace.num_processes();
    r.run("cluster_engine_run", "merge_on_first_13", || {
        ClusterEngine::run(&trace, MergeOnFirst::new(13)).num_cluster_receives()
    });
    r.run("cluster_engine_run", "merge_on_nth_t10_13", || {
        ClusterEngine::run(&trace, MergeOnNth::new(n, 13, 10.0)).num_cluster_receives()
    });
    r.run("cluster_engine_run", "never_merge", || {
        ClusterEngine::run(&trace, NeverMerge).num_cluster_receives()
    });
    r.run("cluster_engine_run", "static_two_pass_13", || {
        static_pipeline(&trace, 13).1.num_cluster_receives()
    });
    for max_cs in [2usize, 13, 50] {
        r.run("cluster_engine_by_max_cs", &max_cs.to_string(), || {
            ClusterEngine::run(&trace, MergeOnFirst::new(max_cs)).num_cluster_receives()
        });
    }
}

/// Deterministic pseudo-random query pairs (fixed prime strides).
fn query_pairs(trace: &cts_model::Trace, k: usize) -> Vec<(EventId, EventId)> {
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    (0..k)
        .map(|i| {
            let a = ids[(i * 7919) % ids.len()];
            let b = ids[(i * 104729 + 13) % ids.len()];
            (a, b)
        })
        .collect()
}

fn bench_precedence(r: &mut Runner) {
    let trace = clustered_trace(200, 8);
    let pairs = query_pairs(&trace, 256);
    let g = "precedence_256_queries";

    let fm = FmStore::compute(&trace);
    r.run(g, "fm_precomputed", || {
        pairs
            .iter()
            .filter(|&&(e, f)| fm.precedes(&trace, e, f))
            .count()
    });

    let cts = ClusterEngine::run(&trace, MergeOnNth::new(trace.num_processes(), 13, 5.0));
    r.run(g, "cluster_timestamps", || {
        pairs
            .iter()
            .filter(|&&(e, f)| cts.precedes(&trace, e, f))
            .count()
    });

    let fz = DdvStore::compute(&trace);
    r.run(g, "fowler_zwaenepoel_search", || {
        pairs
            .iter()
            .filter(|&&(e, f)| fz.precedes(&trace, e, f))
            .count()
    });

    let sk = DiffStore::compute(&trace, 16);
    r.run(g, "sk_differential_reconstruct", || {
        pairs
            .iter()
            .filter(|&&(e, f)| sk.precedes(&trace, e, f))
            .count()
    });

    r.run(g, "recompute_forward_cache", || {
        let mut cache = TimestampCache::new(&trace, 64);
        pairs.iter().filter(|&&(e, f)| cache.precedes(e, f)).count()
    });
}

fn bench_static_clustering(r: &mut Runner) {
    for &n in SCALES {
        let trace = clustered_trace(n, 6);
        let matrix = CommMatrix::from_trace(&trace);
        r.run("greedy_pairwise_by_n", &n.to_string(), || {
            greedy_pairwise(&matrix, 13).num_clusters()
        });
    }
    let trace = clustered_trace(200, 6);
    let matrix = CommMatrix::from_trace(&trace);
    r.run("clusterers_n200", "greedy_pairwise", || {
        greedy_pairwise(&matrix, 13).num_clusters()
    });
    r.run("clusterers_n200", "kmedoid", || {
        kmedoid(&matrix, 16, 20).num_clusters()
    });
}

fn bench_figure_sweeps(r: &mut Runner) {
    let (worst, smooth) = figure_pair();
    let sizes: Vec<usize> = (2..=50).step_by(4).collect(); // sparse axis for the bench
    r.run("figure_sweep", "fig4_static_smooth", || {
        sweep(&smooth, StrategyKind::StaticGreedy, &sizes)
            .ratios
            .len()
    });
    r.run("figure_sweep", "fig4_merge1st_smooth", || {
        sweep(&smooth, StrategyKind::MergeOnFirst, &sizes)
            .ratios
            .len()
    });
    r.run("figure_sweep", "fig5_mergeNth10_worst", || {
        sweep(&worst, StrategyKind::MergeOnNth { threshold: 10.0 }, &sizes)
            .ratios
            .len()
    });
}

fn bench_store_queries(r: &mut Runner) {
    let trace = clustered_trace(200, 8);
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    r.run("btree", "insert_all", || {
        let mut t = BPlusTree::new();
        for (i, &id) in ids.iter().enumerate() {
            t.insert(key_of(id), i as u32);
        }
        t.len()
    });
    let mut tree = BPlusTree::new();
    for (i, &id) in ids.iter().enumerate() {
        tree.insert(key_of(id), i as u32);
    }
    r.run("btree", "get_all", || {
        ids.iter()
            .filter(|&&id| tree.get(key_of(id)).is_some())
            .count()
    });
    r.run("event_store", "ingest", || {
        EventStore::from_trace(&trace).len()
    });

    for &n in &[100u32, 400] {
        let trace = clustered_trace(n, 8);
        let fm = FmStore::compute(&trace);
        let probe = trace.at(trace.num_events() / 2).id;
        r.run(
            "paged_queries",
            &format!("greatest_concurrent_paged_{n}"),
            || {
                let mut paged = PagedTimestampStore::new(&trace, &fm, 1024);
                let _ = greatest_concurrent(&mut paged, &trace, probe);
                paged.page_reads()
            },
        );
        r.run("paged_queries", &format!("scroll_window_fm_{n}"), || {
            scroll_window(&mut FmBackend(&fm), &trace, 1, 4)
        });
    }
}

/// The fast query read path introduced with the shared precedence cache:
///
/// - `precedes_cold_*` vs `precedes_warm_*`: 256 sampled precedence
///   verdicts on the widest suite computations, against a fresh
///   [`SharedQueryCache`] per iteration (every verdict materializes a
///   projected stamp from scratch) vs a cache pre-warmed with exactly
///   those pairs (every verdict is a sharded-lock lookup). The warm/cold
///   ratio is the gate `scripts/ci.sh` holds at ≥5×.
/// - `gc_linear_*` vs `gc_binary_*`: the greatest-concurrent scan, linear
///   oracle vs the binary-searched suffix boundary, same probe events.
/// - `rtt_single_256` vs `rtt_batch_256`: the same 256 pairs as individual
///   `QueryPrecedes` round trips vs one `QueryPrecedesBatch` frame against
///   a loopback daemon (wire + scheduling cost, not verdict cost).
fn bench_query_path(r: &mut Runner) {
    use cts_store::queries::{greatest_concurrent_linear, ClusterBackend, PrecedenceBackend};
    use cts_store::{CachedClusterBackend, SharedQueryCache};

    let g = "query_path";
    for (label, trace) in cts_daemon::loadgen::widest_computations() {
        let cts = ClusterEngine::run(&trace, MergeOnFirst::new(8));
        let pairs = query_pairs(&trace, 256);
        r.run(g, &format!("precedes_cold_{label}"), || {
            let cache = SharedQueryCache::new(1 << 16);
            let mut b = CachedClusterBackend {
                cts: &cts,
                cache: &cache,
            };
            pairs
                .iter()
                .filter(|&&(e, f)| b.precedes(&trace, e, f))
                .count()
        });
        let cache = SharedQueryCache::new(1 << 16);
        {
            let mut b = CachedClusterBackend {
                cts: &cts,
                cache: &cache,
            };
            for &(e, f) in &pairs {
                let _ = b.precedes(&trace, e, f);
            }
        }
        r.run(g, &format!("precedes_warm_{label}"), || {
            let mut b = CachedClusterBackend {
                cts: &cts,
                cache: &cache,
            };
            pairs
                .iter()
                .filter(|&&(e, f)| b.precedes(&trace, e, f))
                .count()
        });

        let probes: Vec<EventId> = (0..4)
            .map(|k: usize| trace.at((k * 15_485_863 + 3) % trace.num_events()).id)
            .collect();
        r.run(g, &format!("gc_linear_{label}"), || {
            probes
                .iter()
                .map(|&e| greatest_concurrent_linear(&mut ClusterBackend(&cts), &trace, e).len())
                .sum::<usize>()
        });
        r.run(g, &format!("gc_binary_{label}"), || {
            probes
                .iter()
                .map(|&e| greatest_concurrent(&mut ClusterBackend(&cts), &trace, e).len())
                .sum::<usize>()
        });
    }

    // Wire round trips against a live loopback daemon. Single queries pay
    // one RTT per verdict; the batch pays one RTT total. (Skipped when a
    // filter excludes both ids, so filtered runs don't boot a daemon.)
    let single_id = format!("{g}/rtt_single_256");
    let batch_id = format!("{g}/rtt_batch_256");
    if let Some(pat) = &r.filter {
        if !single_id.contains(pat.as_str()) && !batch_id.contains(pat.as_str()) {
            return;
        }
    }
    let trace = clustered_trace(200, 8);
    let pairs = query_pairs(&trace, 256);
    let daemon =
        cts_daemon::Daemon::start(cts_daemon::DaemonConfig::default()).expect("loopback daemon");
    let mut client = cts_daemon::Client::connect(daemon.local_addr()).expect("connect");
    client
        .hello("bench-query-path", trace.num_processes(), 8)
        .expect("hello");
    client.stream_events(trace.events(), 512).expect("stream");
    client.flush(trace.num_events() as u64).expect("flush");
    r.run(g, "rtt_single_256", || {
        pairs
            .iter()
            .filter(|&&(e, f)| client.precedes(e, f).expect("precedes rtt"))
            .count()
    });
    r.run(g, "rtt_batch_256", || {
        client
            .precedes_batch(&pairs)
            .expect("batch rtt")
            .iter()
            .flatten()
            .filter(|&&b| b)
            .count()
    });
    let _ = client.goodbye();
    daemon.shutdown();
}

/// Time travel (PR 8): warm as-of queries vs identical head queries, and
/// interval-replay throughput, against a loopback daemon retaining a
/// window of epochs.
///
/// - `precedes_head_256` vs `precedes_asof_256`: the same 256 sampled
///   pairs answered at the head and at a retained historical epoch, one
///   RTT per verdict, both warm. The shared verdict cache is epoch-safe
///   (a happens-before verdict between two delivered events never
///   changes), so a warm as-of lookup costs about a head lookup —
///   `scripts/ci.sh replay` gates `head/asof >= 0.5` (as-of within 2× of
///   head) on this pair via `bench_gate.py --require-ratio`.
/// - `replay_interval`: pulling the oldest retained epoch's full prefix
///   back over chunked `ReplayInterval` frames.
fn bench_timetravel(r: &mut Runner) {
    let g = "timetravel";
    // Skipped entirely when a filter excludes the whole group, so
    // filtered runs don't boot a daemon.
    if let Some(pat) = &r.filter {
        let ids = ["precedes_head_256", "precedes_asof_256", "replay_interval"];
        if !ids
            .iter()
            .any(|n| format!("{g}/{n}").contains(pat.as_str()))
        {
            return;
        }
    }
    let trace = clustered_trace(200, 8);
    let daemon = cts_daemon::Daemon::start(cts_daemon::DaemonConfig {
        epoch_every: 256,
        ..cts_daemon::DaemonConfig::default()
    })
    .expect("loopback daemon");
    let mut client = cts_daemon::Client::connect(daemon.local_addr()).expect("connect");
    let (protocol, _) = client.proto_hello().expect("proto hello");
    assert!(protocol >= 3, "daemon negotiated protocol {protocol}");
    client
        .hello("bench-timetravel", trace.num_processes(), 8)
        .expect("hello");
    client.stream_events(trace.events(), 256).expect("stream");
    client.flush(trace.num_events() as u64).expect("flush");
    let epochs = client.list_epochs().expect("list epochs");
    let &(asof_epoch, _) = epochs.first().expect("a retained epoch");
    // Sample the pairs from the as-of prefix, so both sides answer for
    // exactly the same event ids.
    let replayed = client.replay_interval(0, asof_epoch).expect("replay");
    let prefix =
        cts_model::Trace::from_delivery_order("bench-asof", trace.num_processes(), replayed)
            .expect("replayed prefix is a valid delivery order");
    let pairs = query_pairs(&prefix, 256);
    for &(e, f) in &pairs {
        let _ = client.precedes(e, f).expect("warm head");
        let _ = client.asof_precedes(asof_epoch, e, f).expect("warm as-of");
    }
    r.run(g, "precedes_head_256", || {
        pairs
            .iter()
            .filter(|&&(e, f)| client.precedes(e, f).expect("head precedes"))
            .count()
    });
    r.run(g, "precedes_asof_256", || {
        pairs
            .iter()
            .filter(|&&(e, f)| {
                client
                    .asof_precedes(asof_epoch, e, f)
                    .expect("as-of precedes")
            })
            .count()
    });
    r.run(g, "replay_interval", || {
        client
            .replay_interval(0, asof_epoch)
            .expect("replay interval")
            .len()
    });
    let _ = client.goodbye();
    daemon.shutdown();
}

/// A fixed, allocation-free ALU kernel: pure single-thread CPU speed, no
/// memory traffic, no syscalls. `bench_gate.py` uses this entry to
/// normalize a candidate report against a baseline recorded on a
/// different-speed host instead of requiring manual re-baselining.
fn bench_calibration(r: &mut Runner) {
    r.run("calibration", "fixed_work", || {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..200_000u64 {
            h = (h ^ i).wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 33;
        }
        h
    });
}

/// Shard-ingest scaling: the two widest suite computations delivered
/// through the in-process pipeline at 1/2/4 ingest shards. One iteration =
/// the whole delivery (spawn, stream, flush barrier, shutdown), so the
/// `_s1` / `_s4` ratio is the end-to-end ingest speedup the sharded
/// runtime buys on this host.
fn bench_shard_ingest(r: &mut Runner) {
    for (label, t) in cts_daemon::loadgen::widest_computations() {
        let arrivals = relinearize(&t, 7);
        for shards in [1u32, 2, 4] {
            r.run("shard_ingest", &format!("{label}_s{shards}"), || {
                cts_daemon::loadgen::ingest_trace_wall_ns(label, &t, arrivals.events(), shards)
            });
        }
    }
}

/// Placement under planted imbalance: one hot process group delivered
/// through static shard layouts (which leave the hot block pinned to one
/// worker) vs `--shards auto` + `--pin-cores` (which splits the hot shard
/// live and pins workers to distinct cores). One iteration = the whole
/// delivery; `ci.sh place` gates `hot6g4w_s1 / hot6g4w_auto_pin` at 1.3x
/// on >=4-core hosts.
fn bench_placement(r: &mut Runner) {
    let t = cts_daemon::place::hot_group_trace(6, 4, 24, 32);
    let arrivals = relinearize(&t, 11);
    let g = "placement";
    for shards in [1u32, 2, 4] {
        r.run(g, &format!("hot6g4w_s{shards}"), || {
            cts_daemon::loadgen::ingest_trace_wall_ns(
                "place-hot6g4w",
                &t,
                arrivals.events(),
                shards,
            )
        });
    }
    r.run(g, "hot6g4w_auto_pin", || {
        cts_daemon::loadgen::ingest_trace_wall_ns_placed(
            "place-hot6g4w",
            &t,
            arrivals.events(),
            2,
            true,
            true,
        )
    });
}

fn bench_daemon(r: &mut Runner) {
    let trace = clustered_trace(200, 8);
    let g = "daemon_ingest";

    // Wire codec: frame a suite-sized event stream in 512-event batches,
    // then parse it back (the daemon's per-event serialization cost).
    let batches: Vec<Msg> = trace
        .events()
        .chunks(512)
        .map(|c| Msg::Events(c.to_vec()))
        .collect();
    r.run(g, "wire_encode", || {
        let mut buf = Vec::new();
        for msg in &batches {
            wire::write_msg(&mut buf, msg).unwrap();
        }
        buf.len()
    });
    let mut encoded = Vec::new();
    for msg in &batches {
        wire::write_msg(&mut encoded, msg).unwrap();
    }
    r.run(g, "wire_decode", || {
        let mut cur = &encoded[..];
        let mut n = 0usize;
        while let Some(Msg::Events(evs)) = wire::read_msg(&mut cur).unwrap() {
            n += evs.len();
        }
        n
    });

    // Reorder buffer: the in-order fast path (every offer delivers
    // immediately) vs. a fully reversed arrival stream (everything parks
    // until the stream's first events finally arrive — worst-case depth and
    // cascade length). `relinearize` output is also a *valid* order, so it
    // exercises the fast path under a different schedule.
    let relin = relinearize(&trace, 7);
    r.run(g, "reorder_in_order", || {
        let mut buf = ReorderBuffer::new(trace.num_processes());
        let mut out = 0usize;
        for &ev in relin.events() {
            out += buf.offer(ev).unwrap().len();
        }
        out
    });
    r.run(g, "reorder_reversed", || {
        let mut buf = ReorderBuffer::new(trace.num_processes());
        let mut out = 0usize;
        for &ev in trace.events().iter().rev() {
            out += buf.offer(ev).unwrap().len();
        }
        out
    });
}

fn bench_wal(r: &mut Runner) {
    use cts_daemon::wal::{scan_segment, WalWriter};
    use std::time::Duration;

    let trace = clustered_trace(200, 8);
    let g = "wal";
    let batches: Vec<&[cts_model::Event]> = trace.events().chunks(512).collect();

    // Codec + CRC cost alone: an in-memory sink keeps the device out of
    // the loop.
    r.run(g, "append_mem_512", || {
        let mut w = WalWriter::from_sink(Vec::new(), 0, Duration::ZERO).unwrap();
        for b in &batches {
            w.append(b).unwrap();
        }
        w.bytes_written()
    });

    // Group commit against a real file: fsync every batch (window 0) vs
    // amortized syncs under widening windows — the durability/throughput
    // trade the daemon's `--sync-window-ms` flag exposes.
    let dir = std::env::temp_dir().join("cts-bench-wal");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, window) in [
        ("fsync_per_batch", Duration::ZERO),
        ("window_1ms", Duration::from_millis(1)),
        ("window_10ms", Duration::from_millis(10)),
    ] {
        let path = dir.join(format!("{name}.wal"));
        r.run(g, name, || {
            let _ = std::fs::remove_file(&path);
            let file = std::fs::File::create(&path).unwrap();
            let mut w = WalWriter::from_sink(file, 0, window).unwrap();
            for b in &batches {
                w.append(b).unwrap();
                w.maybe_sync().unwrap();
            }
            w.sync().unwrap();
            w.syncs()
        });
    }

    // The recovery scan over a full synced segment (startup cost).
    let path = dir.join("scan.wal");
    {
        let _ = std::fs::remove_file(&path);
        let file = std::fs::File::create(&path).unwrap();
        let mut w = WalWriter::from_sink(file, 0, Duration::ZERO).unwrap();
        for b in &batches {
            w.append(b).unwrap();
        }
        w.sync().unwrap();
    }
    r.run(g, "scan_segment", || {
        scan_segment(&path).unwrap().num_events()
    });
}

/// Online adaptive re-clustering on the planted-drift fixtures.
///
/// Two kinds of entries:
///
/// - timed `engine_*` entries: throughput of the adaptive engine vs the
///   plain single-pass engine on the same trace (the adaptive bookkeeping
///   should cost an EWMA update, not a second pass);
/// - scalar `cr_*` entries: *cluster-receive counts*, the paper's quality
///   metric. The gated claim is that the adaptive engine beats the worst
///   static strategy on each drift trace by >= 1.2x — i.e. drift detection
///   pays for itself exactly where static clustering goes stale.
fn bench_adaptive(r: &mut Runner) {
    use cts_core::cluster::{AdaptiveEngine, AdaptiveParams};
    use cts_workloads::drift::{PhaseShiftStencil, RebalancedWebTiers};
    use cts_workloads::Workload;

    let g = "adaptive";
    let stencil = PhaseShiftStencil {
        procs: 32,
        phases: 4,
        iters_per_phase: 6,
        block: 8,
    }
    .generate(1);
    let tiers = RebalancedWebTiers {
        clients: 12,
        frontends: 6,
        backends: 6,
        requests: 600,
        phases: 3,
    }
    .generate(1);
    let params = AdaptiveParams::new(12);

    r.run(g, "engine_run_stencil", || {
        AdaptiveEngine::run(&stencil, params).num_cluster_receives()
    });
    r.run(g, "engine_run_merge1st_stencil", || {
        ClusterEngine::run(&stencil, MergeOnFirst::new(12)).num_cluster_receives()
    });

    for t in [&stencil, &tiers] {
        let tag = if std::ptr::eq(t, &stencil) {
            "stencil"
        } else {
            "tiers"
        };
        let n = t.num_processes();
        let adaptive = AdaptiveEngine::run(t, params).num_cluster_receives();
        let statics = [
            ClusterEngine::run(t, MergeOnFirst::new(12)).num_cluster_receives(),
            ClusterEngine::run(t, MergeOnNth::new(n, 12, 10.0)).num_cluster_receives(),
            static_pipeline(t, 12).1.num_cluster_receives(),
        ];
        let worst = *statics.iter().max().unwrap();
        r.scalar(g, &format!("cr_adaptive_{tag}"), adaptive as f64);
        r.scalar(g, &format!("cr_static_worst_{tag}"), worst as f64);
    }
}

fn main() {
    let mut quick = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: cts-bench [--quick] [FILTER]");
                eprintln!("  --quick   short samples (smoke-test timings)");
                eprintln!("  FILTER    run only benches whose group/name contains FILTER");
                return;
            }
            other if !other.starts_with('-') => filter = Some(other.to_string()),
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    let mut r = Runner {
        bencher: if quick {
            Bencher::quick()
        } else {
            Bencher::standard()
        },
        filter,
    };
    bench_calibration(&mut r);
    bench_fm(&mut r);
    bench_cluster_engine(&mut r);
    bench_precedence(&mut r);
    bench_static_clustering(&mut r);
    bench_figure_sweeps(&mut r);
    bench_store_queries(&mut r);
    bench_query_path(&mut r);
    bench_timetravel(&mut r);
    bench_daemon(&mut r);
    bench_shard_ingest(&mut r);
    bench_placement(&mut r);
    bench_wal(&mut r);
    bench_adaptive(&mut r);
    if r.bencher.entries().is_empty() {
        eprintln!("no benches matched the filter");
        std::process::exit(1);
    }
    println!("{}", r.bencher.to_json());
}
