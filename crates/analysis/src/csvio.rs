//! Tiny CSV writer for experiment outputs (no external dependency needed —
//! all our fields are names and numbers).

use std::fmt::Write as _;
use std::path::Path;

/// A CSV table under construction.
#[derive(Default)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Start a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Csv {
        Csv {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: ToString>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Csv {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table row-less?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Write to a file, creating parent directories.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_string())
    }
}

/// Serialize with minimal quoting (fields containing commas or quotes are
/// quoted and quotes doubled).
impl std::fmt::Display for Csv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    write!(f, "\"{}\"", c.replace('"', "\"\""))?;
                } else {
                    f.write_str(c)?;
                }
            }
            f.write_char('\n')
        };
        write_row(f, &self.header)?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["1", "2"]).row(["x,y", "q\"z"]);
        let s = c.to_string();
        assert_eq!(s, "a,b\n1,2\n\"x,y\",\"q\"\"z\"\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        Csv::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("cts-csv-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Csv::new(["k"]);
        c.row(["v"]);
        let path = dir.join("deep/nested/table.csv");
        c.save(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
