//! `cts-experiments` — regenerate the paper's figures and claims.
//!
//! ```text
//! cargo run --release -p cts-analysis --bin cts-experiments -- all
//! cargo run --release -p cts-analysis --bin cts-experiments -- fig4 fig5
//! ```
//!
//! Outputs CSV series under `results/` and prints tables/ASCII plots.

use cts_analysis::figures::{self, Ctx};

const USAGE: &str = "usage: cts-experiments [--quick] [--out DIR] <experiment>...
experiments:
  fig4                 Figure 4: static vs merge-on-1st ratio curves
  fig5                 Figure 5: merge-on-1st vs merge-on-Nth (t=5,10)
  claims               C1-C4: whole-suite cluster-size range claims
  motivation           M1-M3: Section 1.1 storage/paging/recompute numbers
  related-work         R1-R2: SK differential and FZ dependency baselines
  ablation-clustering  A1: greedy vs unnormalized vs k-medoid
  ablation-contiguous  A2: contiguous clusters vs process numbering
  ablation-hybrid      collect-then-cluster prefix sweep
  ablation-migration   process-migration extension on drifting workloads
  ablation-hierarchy   hierarchy-depth extension (2 vs 3 levels)
  all                  everything above";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = "results".to_string();
    let mut quick = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut ctx = Ctx::standard(&out_dir);
    ctx.quick = quick;

    for exp in &experiments {
        let started = std::time::Instant::now();
        let report = match exp.as_str() {
            "fig4" => figures::fig4(&ctx),
            "fig5" => figures::fig5(&ctx),
            "claims"
            | "claim-static-range"
            | "claim-single-size"
            | "claim-m1-no-range"
            | "claim-dynamic-range" => figures::claims(&ctx),
            "motivation" => figures::motivation(&ctx),
            "related-work" => figures::related_work(&ctx),
            "ablation-clustering" => figures::ablation_clustering(&ctx),
            "ablation-contiguous" => figures::ablation_contiguous(&ctx),
            "ablation-hybrid" => figures::ablation_hybrid(&ctx),
            "ablation-migration" => figures::ablation_migration(&ctx),
            "ablation-hierarchy" => figures::ablation_hierarchy(&ctx),
            "all" => figures::run_all(&ctx),
            other => {
                eprintln!("unknown experiment {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        eprintln!(
            "[{exp} done in {:.1?}; CSVs in {out_dir}/]",
            started.elapsed()
        );
    }
}
