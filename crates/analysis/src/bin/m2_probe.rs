//! Diagnostic probe for the M2 motivation steps, with per-step timing.

use cts_core::fm::FmStore;
use cts_store::queries::{greatest_concurrent, scroll_window_sampled};
use cts_store::vm_sim::PagedTimestampStore;
use cts_workloads::synthetic::PlantedClusters;
use cts_workloads::Workload;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let big = PlantedClusters {
        procs: 1000,
        groups: 125,
        messages: 12_000,
        p_intra: 0.9,
    }
    .generate(78);
    eprintln!("gen: {:?} ({} events)", t0.elapsed(), big.num_events());

    let t1 = Instant::now();
    let fm = FmStore::compute(&big);
    eprintln!("fm: {:?} ({} MB)", t1.elapsed(), fm.bytes() / 1_000_000);

    let mut paged = PagedTimestampStore::new(&big, &fm, 2048);
    let mid = big.at(big.num_events() / 2).id;
    let t2 = Instant::now();
    let _ = greatest_concurrent(&mut paged, &big, mid);
    eprintln!("gc: {:?} ({} page reads)", t2.elapsed(), paged.page_reads());

    paged.reset_counters();
    let t3 = Instant::now();
    let n = scroll_window_sampled(&mut paged, &big, 1, 4, 6);
    eprintln!(
        "scroll sampled: {:?} ({} ordered, {} page reads, {} touches)",
        t3.elapsed(),
        n,
        paged.page_reads(),
        paged.element_touches()
    );
}
