//! The quantities behind the paper's §4 claims: best-achieved ratio per
//! computation, within-x%-of-best cluster-size ranges, and cross-computation
//! coverage.

use crate::sweep::SweepResult;

/// The best (smallest) ratio in a sweep and the size achieving it.
pub fn best(sweep: &SweepResult) -> (usize, f64) {
    sweep
        .points()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("ratios are finite"))
        .expect("non-empty sweep")
}

/// Is the ratio at `size` within `slack` (e.g. 0.20) of the sweep's best?
///
/// The paper's criterion: "the timestamp size was within 20% of the best
/// timestamp size achieved" — i.e. `ratio(size) ≤ best · (1 + slack)`.
pub fn within_best_at(sweep: &SweepResult, size: usize, slack: f64) -> bool {
    let (_, b) = best(sweep);
    match sweep.sizes.iter().position(|&s| s == size) {
        Some(i) => sweep.ratios[i] <= b * (1.0 + slack),
        None => false,
    }
}

/// All sizes whose ratio is within `slack` of the sweep's best.
pub fn good_sizes(sweep: &SweepResult, slack: f64) -> Vec<usize> {
    let (_, b) = best(sweep);
    sweep
        .points()
        .filter(|&(_, r)| r <= b * (1.0 + slack))
        .map(|(s, _)| s)
        .collect()
}

/// For each candidate size, how many of the sweeps are within `slack` of
/// their own best at that size. Input sweeps must share a size axis.
pub fn coverage_by_size(sweeps: &[SweepResult], slack: f64) -> Vec<(usize, usize)> {
    assert!(!sweeps.is_empty());
    let sizes = &sweeps[0].sizes;
    for s in sweeps {
        assert_eq!(&s.sizes, sizes, "sweeps must share a size axis");
    }
    sizes
        .iter()
        .map(|&size| {
            let n = sweeps
                .iter()
                .filter(|s| within_best_at(s, size, slack))
                .count();
            (size, n)
        })
        .collect()
}

/// Sizes that are within `slack` of best for **at least** `min_good` of the
/// sweeps (use `sweeps.len()` for "all computations", `len - 1` for "all but
/// one", …).
pub fn universal_sizes(sweeps: &[SweepResult], slack: f64, min_good: usize) -> Vec<usize> {
    coverage_by_size(sweeps, slack)
        .into_iter()
        .filter(|&(_, n)| n >= min_good)
        .map(|(s, _)| s)
        .collect()
}

/// Longest run of consecutive sizes in a sorted list — the paper reports
/// *ranges* like 9..=17 and 22..=24.
pub fn longest_consecutive_run(sizes: &[usize]) -> Option<(usize, usize)> {
    if sizes.is_empty() {
        return None;
    }
    let (mut best_lo, mut best_hi) = (sizes[0], sizes[0]);
    let (mut lo, mut hi) = (sizes[0], sizes[0]);
    for &s in &sizes[1..] {
        if s == hi + 1 {
            hi = s;
        } else {
            lo = s;
            hi = s;
        }
        if hi - lo > best_hi - best_lo {
            best_lo = lo;
            best_hi = hi;
        }
    }
    Some((best_lo, best_hi))
}

/// Curve smoothness: the maximum relative jump between adjacent sizes.
/// The paper's static curves are "relatively smooth"; merge-on-1st's are not.
pub fn max_adjacent_jump(sweep: &SweepResult) -> f64 {
    sweep
        .ratios
        .windows(2)
        .map(|w| ((w[1] - w[0]).abs()) / w[0].max(1e-12))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::StrategyKind;

    fn mk(name: &str, sizes: &[usize], ratios: &[f64]) -> SweepResult {
        SweepResult {
            trace_name: name.into(),
            strategy: StrategyKind::MergeOnFirst,
            sizes: sizes.to_vec(),
            ratios: ratios.to_vec(),
            cluster_receives: vec![0; ratios.len()],
        }
    }

    #[test]
    fn best_and_good_sizes() {
        let s = mk("a", &[2, 3, 4, 5], &[0.5, 0.2, 0.23, 0.4]);
        assert_eq!(best(&s), (3, 0.2));
        assert_eq!(good_sizes(&s, 0.20), vec![3, 4]);
        assert!(within_best_at(&s, 4, 0.20));
        assert!(!within_best_at(&s, 5, 0.20));
        assert!(!within_best_at(&s, 99, 0.20));
    }

    #[test]
    fn coverage_counts_per_size() {
        let a = mk("a", &[2, 3, 4], &[0.2, 0.5, 0.21]);
        let b = mk("b", &[2, 3, 4], &[0.9, 0.3, 0.31]);
        let cov = coverage_by_size(&[a, b], 0.20);
        assert_eq!(cov, vec![(2, 1), (3, 1), (4, 2)]);
    }

    #[test]
    fn universal_with_tolerance() {
        let a = mk("a", &[2, 3, 4], &[0.2, 0.5, 0.21]);
        let b = mk("b", &[2, 3, 4], &[0.9, 0.3, 0.31]);
        assert_eq!(universal_sizes(&[a.clone(), b.clone()], 0.2, 2), vec![4]);
        assert_eq!(universal_sizes(&[a, b], 0.2, 1), vec![2, 3, 4]);
    }

    #[test]
    fn consecutive_runs() {
        assert_eq!(longest_consecutive_run(&[]), None);
        assert_eq!(longest_consecutive_run(&[5]), Some((5, 5)));
        assert_eq!(
            longest_consecutive_run(&[2, 3, 7, 8, 9, 10, 14]),
            Some((7, 10))
        );
    }

    #[test]
    fn smoothness_metric() {
        let smooth = mk("s", &[2, 3, 4], &[0.30, 0.31, 0.32]);
        let bumpy = mk("b", &[2, 3, 4], &[0.30, 0.60, 0.25]);
        assert!(max_adjacent_jump(&smooth) < 0.05);
        assert!(max_adjacent_jump(&bumpy) > 0.5);
    }
}
