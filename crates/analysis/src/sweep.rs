//! Cluster-size sweeps: the engine behind every ratio curve in the paper.

use cts_core::cluster::{ClusterEngine, ClusterTimestamps, Encoding, SpaceReport};
use cts_core::clustering::{contiguous_of, greedy_pairwise, greedy_pairwise_unnormalized, kmedoid};
use cts_core::hybrid::hybrid_pipeline;
use cts_core::strategy::{MergeOnFirst, MergeOnNth, NeverMerge};
use cts_core::two_pass::run_static_with_matrix;
use cts_model::comm::CommMatrix;
use cts_model::Trace;

/// A timestamping configuration under evaluation (§4 compares four; the rest
/// are this repository's ablations and extensions).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StrategyKind {
    /// Dynamic merge-on-1st-communication (prior work).
    MergeOnFirst,
    /// Dynamic merge-on-Nth with a normalized cluster-receive threshold (the
    /// paper's new strategy; τ=5 and τ=10 appear in Figure 5).
    MergeOnNth { threshold: f64 },
    /// Static greedy pairwise clustering (Figure 3) + two-pass timestamping.
    StaticGreedy,
    /// Static greedy without count normalization (§3.1's "naive approach").
    StaticUnnormalized,
    /// Fixed contiguous clusters (the original Ward/Taylor static baseline).
    Contiguous,
    /// k-medoid clustering with k = ⌈N / maxCS⌉ (the rejected approach).
    KMedoid,
    /// Never merge (control: singleton clusters).
    NeverMerge,
    /// Collect-then-cluster hybrid with the given prefix fraction.
    Hybrid { prefix_fraction: f64 },
}

impl StrategyKind {
    /// Short label for tables and CSV headers.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::MergeOnFirst => "merge-1st".into(),
            StrategyKind::MergeOnNth { threshold } => format!("merge-nth-t{threshold}"),
            StrategyKind::StaticGreedy => "static-greedy".into(),
            StrategyKind::StaticUnnormalized => "static-unnorm".into(),
            StrategyKind::Contiguous => "contiguous".into(),
            StrategyKind::KMedoid => "kmedoid".into(),
            StrategyKind::NeverMerge => "never-merge".into(),
            StrategyKind::Hybrid { prefix_fraction } => format!("hybrid-p{prefix_fraction}"),
        }
    }

    /// Build the cluster timestamps for a trace at one maximum cluster size.
    ///
    /// `matrix` caches the trace's communication counts for the static
    /// variants (compute it once per trace with [`CommMatrix::from_trace`]).
    pub fn run(&self, trace: &Trace, matrix: &CommMatrix, max_cs: usize) -> ClusterTimestamps {
        let n = trace.num_processes();
        match *self {
            StrategyKind::MergeOnFirst => ClusterEngine::run(trace, MergeOnFirst::new(max_cs)),
            StrategyKind::MergeOnNth { threshold } => {
                ClusterEngine::run(trace, MergeOnNth::new(n, max_cs, threshold))
            }
            StrategyKind::StaticGreedy => {
                run_static_with_matrix(trace, matrix, |m| greedy_pairwise(m, max_cs))
            }
            StrategyKind::StaticUnnormalized => {
                run_static_with_matrix(trace, matrix, |m| greedy_pairwise_unnormalized(m, max_cs))
            }
            StrategyKind::Contiguous => {
                run_static_with_matrix(trace, matrix, |_| contiguous_of(n, max_cs))
            }
            StrategyKind::KMedoid => run_static_with_matrix(trace, matrix, |m| {
                kmedoid(m, (n as usize).div_ceil(max_cs), 20)
            }),
            StrategyKind::NeverMerge => ClusterEngine::run(trace, NeverMerge),
            StrategyKind::Hybrid { prefix_fraction } => {
                let prefix = (trace.num_events() as f64 * prefix_fraction) as usize;
                hybrid_pipeline(trace, prefix, max_cs).timestamps
            }
        }
    }

    /// The space ratio at one maximum cluster size, under the paper's
    /// fixed-vector encoding.
    pub fn ratio(&self, trace: &Trace, matrix: &CommMatrix, max_cs: usize) -> SpaceReport {
        let cts = self.run(trace, matrix, max_cs);
        SpaceReport::measure(&cts, Encoding::paper_default(trace.num_processes(), max_cs))
    }
}

/// The ratio curve of one strategy on one trace.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub trace_name: String,
    pub strategy: StrategyKind,
    pub sizes: Vec<usize>,
    pub ratios: Vec<f64>,
    pub cluster_receives: Vec<usize>,
}

impl SweepResult {
    /// `(max_cs, ratio)` points.
    pub fn points(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.sizes.iter().copied().zip(self.ratios.iter().copied())
    }
}

/// Sweep one strategy over the given sizes on one trace.
pub fn sweep(trace: &Trace, strategy: StrategyKind, sizes: &[usize]) -> SweepResult {
    let matrix = CommMatrix::from_trace(trace);
    let mut ratios = Vec::with_capacity(sizes.len());
    let mut crs = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let r = strategy.ratio(trace, &matrix, s);
        ratios.push(r.ratio);
        crs.push(r.num_cluster_receives);
    }
    SweepResult {
        trace_name: trace.name().to_string(),
        strategy,
        sizes: sizes.to_vec(),
        ratios,
        cluster_receives: crs,
    }
}

/// Sweep several strategies over several traces, fanning the
/// (trace × strategy) tasks over `std::thread::scope` worker threads.
/// Results preserve input order.
///
/// # Panics
///
/// If any task panics, panics with a message naming every failed
/// `trace × strategy` pair (and the first underlying panic message), so a
/// whole-suite run points straight at the offending computation instead of
/// dying with a bare `expect("task completed")`.
pub fn sweep_all(
    traces: &[(&str, &Trace)],
    strategies: &[StrategyKind],
    sizes: &[usize],
    workers: usize,
) -> Vec<SweepResult> {
    let tasks: Vec<(String, _)> = (0..traces.len())
        .flat_map(|t| (0..strategies.len()).map(move |s| (t, s)))
        .map(|(ti, si)| {
            let label = format!("{} × {}", traces[ti].0, strategies[si].label());
            let task = move || sweep(traces[ti].1, strategies[si], sizes);
            (label, task)
        })
        .collect();
    run_labeled_tasks("sweep_all", tasks, workers)
}

/// Run labeled tasks over a fixed pool of scoped worker threads, preserving
/// input order. On task panic, every completed task still drains; the
/// aggregate panic names each failed task's label.
///
/// Public so other drivers (and the regression tests) can reuse the pool
/// with injected tasks.
pub fn run_labeled_tasks<T, F>(what: &str, tasks: Vec<(String, F)>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let slots: Vec<std::sync::Mutex<Option<Result<T, String>>>> =
        tasks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    // LIFO is fine: results are written by index, not completion order.
    let queue = std::sync::Mutex::new(
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, (label, f))| (i, label, f))
            .collect::<Vec<_>>(),
    );
    let workers = workers.clamp(1, slots.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop();
                let Some((i, label, f)) = job else { break };
                let outcome = catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
                    format!(
                        "task '{label}' panicked: {}",
                        cts_util::check::panic_message(payload.as_ref())
                    )
                });
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    let mut failures = Vec::new();
    let mut results = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot
            .into_inner()
            .unwrap()
            .expect("worker pool drained queue")
        {
            Ok(r) => results.push(r),
            Err(msg) => failures.push(msg),
        }
    }
    if !failures.is_empty() {
        panic!(
            "{what}: {} task(s) failed: {}",
            failures.len(),
            failures.join("; ")
        );
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_workloads::suite::mini_suite;

    #[test]
    fn every_strategy_produces_sane_ratios() {
        let suite = mini_suite();
        let t = &suite[0].trace;
        let sizes = [2, 5, 8];
        for strat in [
            StrategyKind::MergeOnFirst,
            StrategyKind::MergeOnNth { threshold: 5.0 },
            StrategyKind::StaticGreedy,
            StrategyKind::StaticUnnormalized,
            StrategyKind::Contiguous,
            StrategyKind::KMedoid,
            StrategyKind::NeverMerge,
            StrategyKind::Hybrid {
                prefix_fraction: 0.2,
            },
        ] {
            let r = sweep(t, strat, &sizes);
            assert_eq!(r.ratios.len(), 3, "{}", strat.label());
            for &ratio in &r.ratios {
                assert!(
                    ratio > 0.0 && ratio <= 1.0 + 1e-9,
                    "{}: ratio {ratio} out of range",
                    strat.label()
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let suite = mini_suite();
        let traces: Vec<(&str, &Trace)> = suite
            .iter()
            .take(3)
            .map(|e| (e.name.as_str(), &e.trace))
            .collect();
        let strategies = [StrategyKind::MergeOnFirst, StrategyKind::StaticGreedy];
        let sizes = [2, 4, 6];
        let par = sweep_all(&traces, &strategies, &sizes, 4);
        let mut k = 0;
        for (_, t) in &traces {
            for &s in &strategies {
                let seq = sweep(t, s, &sizes);
                assert_eq!(par[k].ratios, seq.ratios);
                assert_eq!(par[k].trace_name, seq.trace_name);
                k += 1;
            }
        }
    }

    #[test]
    fn panicking_task_reports_its_label() {
        // Regression: the old crossbeam driver died with a bare
        // `expect("task completed")`, losing which (trace × strategy) task
        // failed. The labelled runner must name the failing task.
        let tasks: Vec<(String, Box<dyn FnOnce() -> u32 + Send>)> = vec![
            ("web-7 × merge-1st".to_string(), Box::new(|| 1)),
            (
                "spmd-3 × kmedoid".to_string(),
                Box::new(|| panic!("degenerate medoid")),
            ),
            ("dce-2 × static-greedy".to_string(), Box::new(|| 3)),
        ];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_labeled_tasks("sweep_all", tasks, 2)
        }))
        .expect_err("a panicking task must fail the run");
        let msg = cts_util::check::panic_message(err.as_ref());
        assert!(msg.contains("spmd-3 × kmedoid"), "missing label: {msg}");
        assert!(msg.contains("degenerate medoid"), "missing cause: {msg}");
        assert!(
            !msg.contains("merge-1st") && !msg.contains("static-greedy"),
            "healthy tasks must not be reported as failed: {msg}"
        );
    }

    #[test]
    fn labeled_tasks_preserve_order_with_many_workers() {
        let tasks: Vec<(String, _)> = (0..40).map(|i| (format!("t{i}"), move || i * i)).collect();
        let got = run_labeled_tasks("square", tasks, 8);
        let want: Vec<i32> = (0..40).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            StrategyKind::MergeOnFirst,
            StrategyKind::MergeOnNth { threshold: 5.0 },
            StrategyKind::MergeOnNth { threshold: 10.0 },
            StrategyKind::StaticGreedy,
            StrategyKind::Contiguous,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
