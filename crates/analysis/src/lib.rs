//! # cts-analysis — the experiment harness
//!
//! Reproduces every figure and headline claim of the paper's evaluation
//! (§4), plus the §1.1 motivation numbers and §2.4 related-work claims, over
//! the 54-computation standard suite of `cts-workloads`. See DESIGN.md §3 for
//! the experiment index (F4, F5, C1–C4, M1–M3, R1–R2, A1–A2).
//!
//! Structure:
//!
//! - [`sweep`]: run a clustering strategy across maximum cluster sizes
//!   2..=50 and record the average-timestamp-size ratio (the y-axis of the
//!   paper's figures), with a scoped-thread parallel driver (labelled panic
//!   propagation) for whole-suite runs;
//! - [`metrics`]: best-achieved ratios, within-20%-of-best ranges, and
//!   cross-computation coverage — the quantities behind the paper's claims;
//! - [`figures`]: one driver per experiment, each returning structured
//!   results and emitting CSV series;
//! - [`ascii_plot`]: terminal rendering of the ratio curves;
//! - [`csvio`]: tiny CSV writer for `results/`.
//!
//! The `cts-experiments` binary runs any or all of the experiments:
//!
//! ```text
//! cargo run --release -p cts-analysis --bin cts-experiments -- all
//! ```

pub mod ascii_plot;
pub mod csvio;
pub mod figures;
pub mod metrics;
pub mod sweep;

/// The cluster-size axis the paper sweeps: 2..=50.
pub fn paper_sizes() -> Vec<usize> {
    (2..=50).collect()
}
