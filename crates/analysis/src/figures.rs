//! One driver per experiment in DESIGN.md §3. Each driver returns a
//! plain-text report (tables and ASCII plots) and writes CSV series under the
//! output directory.

use crate::ascii_plot::{render, Series};
use crate::csvio::Csv;
use crate::metrics;
use crate::sweep::{sweep, sweep_all, StrategyKind, SweepResult};
use cts_baselines::{DdvStore, DiffStore};
use cts_core::fm::FmStore;
use cts_model::comm::CommMatrix;
use cts_model::{EventId, EventIndex, ProcessId, Trace};
use cts_store::queries::{greatest_concurrent, scroll_window_sampled};
use cts_store::timestamp_cache::TimestampCache;
use cts_store::vm_sim::PagedTimestampStore;
use cts_workloads::suite::{figure_pair, mini_suite, standard_suite, SuiteEntry};
use cts_workloads::synthetic::PlantedClusters;
use cts_workloads::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Shared experiment context.
pub struct Ctx {
    /// Directory for CSV outputs (`results/` by default).
    pub out_dir: PathBuf,
    /// Worker threads for suite sweeps.
    pub workers: usize,
    /// Quick mode: mini suite and a sparse size axis (used by tests).
    pub quick: bool,
}

impl Ctx {
    /// Standard context writing to `results/`.
    pub fn standard(out_dir: impl Into<PathBuf>) -> Ctx {
        Ctx {
            out_dir: out_dir.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            quick: false,
        }
    }

    fn sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![2, 4, 8, 13, 20, 30, 50]
        } else {
            crate::paper_sizes()
        }
    }

    fn suite(&self) -> Vec<SuiteEntry> {
        if self.quick {
            mini_suite()
        } else {
            standard_suite()
        }
    }

    fn save(&self, name: &str, csv: &Csv) {
        csv.save(self.out_dir.join(name))
            .unwrap_or_else(|e| panic!("writing {name}: {e}"));
    }
}

fn curves_csv(results: &[SweepResult]) -> Csv {
    let mut csv = Csv::new([
        "trace",
        "strategy",
        "max_cluster_size",
        "ratio",
        "cluster_receives",
    ]);
    for r in results {
        for (i, (size, ratio)) in r.points().enumerate() {
            csv.row([
                r.trace_name.clone(),
                r.strategy.label(),
                size.to_string(),
                format!("{ratio:.6}"),
                r.cluster_receives[i].to_string(),
            ]);
        }
    }
    csv
}

fn plot_sweeps(title: &str, sweeps: &[&SweepResult]) -> String {
    let series: Vec<Series<'_>> = sweeps
        .iter()
        .map(|s| Series {
            name: Box::leak(s.strategy.label().into_boxed_str()),
            points: s.points().map(|(x, y)| (x as f64, y)).collect(),
        })
        .collect();
    format!("{title}\n{}", render(&series, 64, 16))
}

/// **F4 — Figure 4**: ratio of cluster-timestamp size to Fidge/Mattern size
/// versus maximum cluster size, static greedy vs merge-on-1st, on the two
/// sample computations (upper = observed worst case, lower = typical).
pub fn fig4(ctx: &Ctx) -> String {
    let (worst, smooth) = figure_pair();
    let sizes = ctx.sizes();
    let mut report = String::new();
    let mut all = Vec::new();
    for (panel, trace) in [("upper (worst case)", &worst), ("lower (typical)", &smooth)] {
        let st = sweep(trace, StrategyKind::StaticGreedy, &sizes);
        let m1 = sweep(trace, StrategyKind::MergeOnFirst, &sizes);
        let _ = writeln!(report, "\n== Figure 4, {panel} panel — {} ==", trace.name());
        report.push_str(&plot_sweeps("ratio vs max cluster size", &[&st, &m1]));
        let _ = writeln!(
            report,
            "static smoothness (max adjacent jump): {:.3}; merge-1st: {:.3}",
            metrics::max_adjacent_jump(&st),
            metrics::max_adjacent_jump(&m1),
        );
        let (bs, br) = metrics::best(&st);
        let (ms, mr) = metrics::best(&m1);
        let _ = writeln!(
            report,
            "best static: {br:.3} @ {bs}; best merge-1st: {mr:.3} @ {ms}"
        );
        all.push(st);
        all.push(m1);
    }
    ctx.save("fig4.csv", &curves_csv(&all));
    report
}

/// **F5 — Figure 5**: merge-on-1st vs merge-on-Nth (normalized thresholds 5
/// and 10) on the same two computations.
pub fn fig5(ctx: &Ctx) -> String {
    let (worst, smooth) = figure_pair();
    let sizes = ctx.sizes();
    let mut report = String::new();
    let mut all = Vec::new();
    for (panel, trace) in [("upper (worst case)", &worst), ("lower (typical)", &smooth)] {
        let m1 = sweep(trace, StrategyKind::MergeOnFirst, &sizes);
        let n5 = sweep(trace, StrategyKind::MergeOnNth { threshold: 5.0 }, &sizes);
        let n10 = sweep(trace, StrategyKind::MergeOnNth { threshold: 10.0 }, &sizes);
        let _ = writeln!(report, "\n== Figure 5, {panel} panel — {} ==", trace.name());
        report.push_str(&plot_sweeps("ratio vs max cluster size", &[&m1, &n5, &n10]));
        let _ = writeln!(
            report,
            "smoothness: merge-1st {:.3}, t5 {:.3}, t10 {:.3}",
            metrics::max_adjacent_jump(&m1),
            metrics::max_adjacent_jump(&n5),
            metrics::max_adjacent_jump(&n10),
        );
        all.extend([m1, n5, n10]);
    }
    ctx.save("fig5.csv", &curves_csv(&all));
    report
}

/// **C1–C4** — the §4 whole-suite claims.
///
/// The paper's corpus is its three environments (PVM, Java, DCE); our suite
/// additionally contains *adversarial* synthetics (uniform random, hotspot)
/// that deliberately violate the paper's locality premise ("most
/// communication of most processes is with a small number of other
/// processes"). The headline claims are therefore computed over the
/// paper-environment computations, and the synthetics' numbers are reported
/// separately as the boundary of the claims' validity.
pub fn claims(ctx: &Ctx) -> String {
    use cts_workloads::suite::Env;
    let suite = ctx.suite();
    let sizes = ctx.sizes();
    let traces: Vec<(&str, &Trace)> = suite.iter().map(|e| (e.name.as_str(), &e.trace)).collect();
    let strategies = [
        StrategyKind::StaticGreedy,
        StrategyKind::MergeOnFirst,
        StrategyKind::MergeOnNth { threshold: 10.0 },
    ];
    let results = sweep_all(&traces, &strategies, &sizes, ctx.workers);
    ctx.save("suite_sweeps.csv", &curves_csv(&results));

    let paper_env: std::collections::HashSet<&str> = suite
        .iter()
        .filter(|e| e.env != Env::Synthetic)
        .map(|e| e.name.as_str())
        .collect();
    let by_strategy = |k: StrategyKind| -> Vec<SweepResult> {
        results
            .iter()
            .filter(|r| r.strategy == k && paper_env.contains(r.trace_name.as_str()))
            .cloned()
            .collect()
    };
    let statics = by_strategy(StrategyKind::StaticGreedy);
    let m1s = by_strategy(StrategyKind::MergeOnFirst);
    let n10s = by_strategy(StrategyKind::MergeOnNth { threshold: 10.0 });
    let total = statics.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "\n(corpus for C1–C4: the {total} computations of the paper's three environments;\n         adversarial synthetics reported separately below)"
    );

    // C1: a range of sizes good for (nearly) all computations, static.
    let cov = metrics::coverage_by_size(&statics, 0.20);
    let all_but_one: Vec<usize> = cov
        .iter()
        .filter(|&&(_, n)| n + 1 >= total)
        .map(|&(s, _)| s)
        .collect();
    let run = metrics::longest_consecutive_run(&all_but_one);
    let _ = writeln!(
        report,
        "\n== C1 (static greedy): sizes within 20% of best for ≥{} of {} computations ==",
        total - 1,
        total
    );
    let _ = writeln!(report, "sizes: {all_but_one:?}");
    let _ = writeln!(
        report,
        "longest consecutive range: {:?}  (paper: 9..=17, all but one computation)",
        run
    );

    // C2: single size good for all computations.
    let universal = metrics::universal_sizes(&statics, 0.20, total);
    let _ = writeln!(
        report,
        "\n== C2 (static greedy): sizes within 20% of best for ALL computations =="
    );
    let _ = writeln!(report, "sizes: {universal:?}  (paper: 13 or 14)");

    // C3: merge-on-1st has no good universal size.
    let cov1 = metrics::coverage_by_size(&m1s, 0.20);
    let best_cov = cov1.iter().map(|&(_, n)| n).max().unwrap_or(0);
    let sizes_above_80: Vec<usize> = cov1
        .iter()
        .filter(|&&(_, n)| (n as f64) / (total as f64) >= 0.8)
        .map(|&(s, _)| s)
        .collect();
    let _ = writeln!(report, "\n== C3 (merge-on-1st): coverage by size ==");
    let _ = writeln!(
        report,
        "best coverage at any size: {best_cov}/{total} ({:.0}%)",
        100.0 * best_cov as f64 / total as f64
    );
    let _ = writeln!(
        report,
        "sizes reaching ≥80% coverage: {sizes_above_80:?}  (paper: <80% for all but a couple of sizes)"
    );

    // C4: merge-Nth τ=10, sizes 22..=24.
    let _ = writeln!(report, "\n== C4 (merge-Nth, τ=10): sizes 22..=24 ==");
    let c4_sizes: Vec<usize> = sizes
        .iter()
        .copied()
        .filter(|&s| (22..=24).contains(&s))
        .collect();
    let mut worst_violators: Vec<(String, f64)> = Vec::new();
    for s in &n10s {
        let ok = c4_sizes
            .iter()
            .all(|&size| metrics::within_best_at(s, size, 0.20));
        if !ok {
            // Ratio actually achieved over that size range.
            let worst = s
                .points()
                .filter(|(size, _)| c4_sizes.contains(size))
                .map(|(_, r)| r)
                .fold(0.0f64, f64::max);
            worst_violators.push((s.trace_name.clone(), worst));
        }
    }
    let _ = writeln!(
        report,
        "computations outside 20%-of-best across 22..=24: {} of {total}  (paper: two)",
        worst_violators.len()
    );
    for (name, worst) in &worst_violators {
        let _ = writeln!(
            report,
            "  {name}: worst ratio over 22..=24 = {worst:.3} (< 1/3 of Fidge/Mattern? {})",
            if *worst < 1.0 / 3.0 { "yes" } else { "NO" }
        );
    }
    // Boundary of validity: the adversarial synthetics.
    let synthetics: Vec<SweepResult> = results
        .iter()
        .filter(|r| {
            r.strategy == StrategyKind::StaticGreedy && !paper_env.contains(r.trace_name.as_str())
        })
        .cloned()
        .collect();
    if !synthetics.is_empty() {
        let _ = writeln!(
            report,
            "\n== Synthetic extremes (outside the paper's locality premise) =="
        );
        for s in &synthetics {
            let (bs, br) = metrics::best(s);
            let good = metrics::good_sizes(s, 0.20);
            let range = metrics::longest_consecutive_run(&good);
            let _ = writeln!(
                report,
                "  {:<40} best {:.3}@{:<2} within-20% range {:?}",
                s.trace_name, br, bs, range
            );
        }
    }

    let mut csv = Csv::new(["claim", "value"]);
    csv.row(["c1_range", &format!("{run:?}")])
        .row(["c2_universal", &format!("{universal:?}")])
        .row(["c3_best_coverage", &format!("{best_cov}/{total}")])
        .row(["c4_violators", &worst_violators.len().to_string()]);
    ctx.save("claims.csv", &csv);
    report
}

/// **M1–M3** — the §1.1 motivation numbers.
pub fn motivation(ctx: &Ctx) -> String {
    let mut report = String::new();

    // M1: precomputed storage size. Analytic at the paper's scale, measured
    // at a reduced scale to validate the formula.
    let analytic = 1000u64 * 1000 * 1000 * 4;
    let _ = writeln!(
        report,
        "\n== M1: precomputed Fidge/Mattern storage ==\n\
         1000 processes × 1000 events × 1000 elements × 4 B = {:.2} GB (paper: \"exceed four gigabytes\")",
        analytic as f64 / 1e9
    );
    let (n_small, ev_small) = if ctx.quick { (40, 6) } else { (200, 40) };
    let t = PlantedClusters {
        procs: n_small,
        groups: n_small / 10,
        messages: n_small * ev_small / 2,
        p_intra: 0.9,
    }
    .generate(77);
    eprintln!("[motivation] M1 measuring…");
    let fm = FmStore::compute(&t);
    let expect = t.num_events() * n_small as usize * 4;
    let _ = writeln!(
        report,
        "measured at {}×{} events: {} bytes (formula: {}) — {}",
        n_small,
        t.num_events(),
        fm.bytes(),
        expect,
        if fm.bytes() == expect {
            "exact"
        } else {
            "MISMATCH"
        }
    );

    // M2: paging behaviour of precomputed stamps.
    let n_big = if ctx.quick { 64 } else { 1000 };
    let big = PlantedClusters {
        procs: n_big,
        groups: n_big / 8,
        messages: n_big * 12,
        p_intra: 0.9,
    }
    .generate(78);
    eprintln!("[motivation] M2 building FmStore N={n_big}…");
    let fm_big = FmStore::compute(&big);
    let frames = if ctx.quick { 32 } else { 2048 };
    let mut paged = PagedTimestampStore::new(&big, &fm_big, frames);
    // One greatest-concurrent query from the middle of the computation.
    let mid = big.at(big.num_events() / 2).id;
    paged.reset_counters();
    eprintln!("[motivation] M2 greatest-concurrent…");
    let _ = greatest_concurrent(&mut paged, &big, mid);
    let gc_pages = paged.page_reads();
    let gc_touches = paged.element_touches();
    // One 20-event-wide scroll.
    paged.reset_counters();
    eprintln!("[motivation] M2 scroll window…");
    let _ = scroll_window_sampled(&mut paged, &big, 1, 4, if ctx.quick { 1 } else { 6 });
    let scroll_pages = paged.page_reads();
    let _ = writeln!(
        report,
        "\n== M2: paging under precomputed stamps (N={n_big}, 4 KiB pages, {frames} frames) ==\n\
         greatest-concurrent query: {gc_pages} page reads for {gc_touches} element touches\n\
         scroll window (sampled):   {scroll_pages} page reads\n\
         (paper: ~12,000 pages for one greatest-concurrent query at N=1000; the shape to\n\
          reproduce is ≈one page read per element touched — spatial locality buys nothing)"
    );

    // M3: recompute-forward cost grows with N at fixed event count.
    let _ = writeln!(
        report,
        "\n== M3: recompute-forward precedence cost vs process count (fixed events) =="
    );
    let mut csv = Csv::new(["processes", "events", "element_ops_per_query"]);
    let ns: &[u32] = if ctx.quick {
        &[8, 32]
    } else {
        &[10, 50, 100, 250, 500, 1000]
    };
    let total_events = if ctx.quick { 2_000 } else { 20_000 };
    for &n in ns {
        // A ring-structured computation: the causal past of the final events
        // spans (essentially) the entire event set at every N, so the cost
        // comparison isolates the O(N) vector-width factor — the paper's
        // "same number of events in both instances" condition.
        let rounds = (total_events / (4 * n as usize)).max(2) as u32;
        let t = cts_workloads::spmd::ConvoyRing {
            procs: n,
            rounds,
            convoy: 8,
        }
        .generate(79);
        eprintln!("[motivation] M3 N={n}…");
        let mut cache = TimestampCache::new(&t, 64);
        let queries = 50;
        let e0 = EventId::new(ProcessId(0), EventIndex(1));
        for k in 0..queries {
            // Query near the end of the computation so the recompute chain
            // spans (nearly) the whole event set at every N — isolating the
            // O(N) vector-width factor the paper's claim is about.
            let tail = t.num_events() - 1 - ((k * 37) % (t.num_events() / 20).max(1));
            let f = t.at(tail).id;
            let _ = cache.precedes(e0, f);
        }
        let (ops, _, q) = cache.cost();
        let per_query = ops / q;
        let _ = writeln!(
            report,
            "N={n:>5}: {per_query:>12} element ops per precedence query"
        );
        csv.row([
            n.to_string(),
            t.num_events().to_string(),
            per_query.to_string(),
        ]);
    }
    ctx.save("motivation_m3.csv", &csv);
    let _ = writeln!(
        report,
        "(paper: elementary operations take minutes as the vector size approaches 1000,\n\
         negligible when the number of processes is small, same event count)"
    );
    report
}

/// **R1–R2** — related-work baselines (§2.4).
pub fn related_work(ctx: &Ctx) -> String {
    let suite = ctx.suite();
    let subset: Vec<&SuiteEntry> = suite.iter().take(8).collect();
    let mut report = String::new();
    let mut csv = Csv::new([
        "trace",
        "n",
        "sk_ratio",
        "fz_avg_elements",
        "fm_elements",
        "fz_worst_query_cost",
    ]);
    let _ = writeln!(
        report,
        "\n== R1/R2: differential (SK) and direct-dependency (FZ) baselines ==\n\
         trace                                    N    SK-ratio  FZ-avg  FM   FZ-worst-search"
    );
    for e in &subset {
        let t = &e.trace;
        let sk = DiffStore::compute(t, 16);
        let fz = DdvStore::compute(t);
        // Probe FZ query cost across a sample of event pairs.
        let mut worst = 0usize;
        let step = (t.num_events() / 40).max(1);
        let last = t.events().last().unwrap().id;
        for pos in (0..t.num_events()).step_by(step) {
            let a = t.at(pos).id;
            let _ = fz.precedes(t, a, last);
            worst = worst.max(fz.last_query_cost());
        }
        let _ = writeln!(
            report,
            "{:<40} {:>4}  {:>7.3}  {:>6.1}  {:>3}  {:>8}",
            e.name,
            t.num_processes(),
            sk.ratio_vs_full(),
            fz.avg_elements(),
            t.num_processes(),
            worst
        );
        csv.row([
            e.name.clone(),
            t.num_processes().to_string(),
            format!("{:.4}", sk.ratio_vs_full()),
            format!("{:.2}", fz.avg_elements()),
            t.num_processes().to_string(),
            worst.to_string(),
        ]);
    }
    let _ = writeln!(
        report,
        "(paper: differential techniques saved no more than ~3× in their corpus; FZ vectors\n\
         are small but precedence search cost is unbounded — worst case linear in messages)"
    );
    ctx.save("related_work.csv", &csv);
    report
}

/// **A1** — clustering-algorithm ablation: Figure-3 greedy vs unnormalized
/// greedy vs k-medoid, at the paper's recommended size 13 (actual-elements
/// encoding, since k-medoid does not bound cluster sizes).
pub fn ablation_clustering(ctx: &Ctx) -> String {
    use cts_core::cluster::{Encoding, SpaceReport};
    let suite = ctx.suite();
    let subset: Vec<&SuiteEntry> = suite.iter().take(10).collect();
    let max_cs = 13;
    let mut report = String::new();
    let mut csv = Csv::new([
        "trace",
        "greedy",
        "unnormalized",
        "kmedoid",
        "kmedoid_max_cluster",
    ]);
    let _ = writeln!(
        report,
        "\n== A1: static clustering ablation at maxCS={max_cs} (actual-element ratios) ==\n\
         trace                                    greedy  unnorm  kmedoid  kmed-maxc"
    );
    for e in &subset {
        let t = &e.trace;
        let matrix = CommMatrix::from_trace(t);
        let enc = Encoding::Actual {
            n: t.num_processes() as usize,
        };
        let ratio_of = |k: StrategyKind| -> f64 {
            SpaceReport::measure(&k.run(t, &matrix, max_cs), enc).ratio
        };
        let greedy = ratio_of(StrategyKind::StaticGreedy);
        let unnorm = ratio_of(StrategyKind::StaticUnnormalized);
        let kmed = ratio_of(StrategyKind::KMedoid);
        let kmed_clusters = cts_core::clustering::kmedoid(
            &matrix,
            (t.num_processes() as usize).div_ceil(max_cs),
            20,
        );
        let _ = writeln!(
            report,
            "{:<40} {:>6.3}  {:>6.3}  {:>7.3}  {:>9}",
            e.name,
            greedy,
            unnorm,
            kmed,
            kmed_clusters.max_cluster_size()
        );
        csv.row([
            e.name.clone(),
            format!("{greedy:.4}"),
            format!("{unnorm:.4}"),
            format!("{kmed:.4}"),
            kmed_clusters.max_cluster_size().to_string(),
        ]);
    }
    let _ = writeln!(
        report,
        "(§3.1: k-medoid picks cluster *counts*, not bounded sizes — one bloated cluster\n\
         and many sparse ones, so its timestamps approach Fidge/Mattern size)"
    );
    ctx.save("ablation_clustering.csv", &csv);
    report
}

/// **A2** — fixed contiguous clusters: sensitive both to the size choice and
/// to process numbering (relabeling destroys it; the greedy algorithm is
/// invariant).
pub fn ablation_contiguous(ctx: &Ctx) -> String {
    let sizes = ctx.sizes();
    let t = PlantedClusters {
        procs: if ctx.quick { 24 } else { 96 },
        groups: if ctx.quick { 4 } else { 12 },
        messages: if ctx.quick { 300 } else { 2000 },
        p_intra: 0.9,
    }
    .generate(80);
    // Relabel with a stride permutation that scatters each planted group.
    let n = t.num_processes();
    let stride = (0..n).map(|i| (i * 7 + 3) % n).collect::<Vec<_>>();
    let shuffled = t.relabel_processes(&stride);

    let cont_orig = sweep(&t, StrategyKind::Contiguous, &sizes);
    let cont_shuf = sweep(&shuffled, StrategyKind::Contiguous, &sizes);
    let greedy_orig = sweep(&t, StrategyKind::StaticGreedy, &sizes);
    let greedy_shuf = sweep(&shuffled, StrategyKind::StaticGreedy, &sizes);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "\n== A2: contiguous clusters vs process numbering =="
    );
    report.push_str(&plot_sweeps(
        "contiguous (original vs shuffled ids) and greedy",
        &[&cont_orig, &cont_shuf, &greedy_orig],
    ));
    let (s1, r1) = metrics::best(&cont_orig);
    let (s2, r2) = metrics::best(&cont_shuf);
    let (s3, r3) = metrics::best(&greedy_orig);
    let (s4, r4) = metrics::best(&greedy_shuf);
    let _ = writeln!(
        report,
        "best contiguous: original {r1:.3}@{s1}, shuffled {r2:.3}@{s2}\n\
         best greedy:     original {r3:.3}@{s3}, shuffled {r4:.3}@{s4}\n\
         (greedy is invariant to numbering: {} — contiguous degrades: {})",
        if (r3 - r4).abs() < 1e-9 { "yes" } else { "NO" },
        if r2 > r1 * 1.2 { "yes" } else { "marginal" }
    );
    let mut all = vec![cont_orig, cont_shuf, greedy_orig, greedy_shuf];
    all[1].trace_name = format!("{}+shuffled", all[1].trace_name);
    all[3].trace_name = format!("{}+shuffled", all[3].trace_name);
    ctx.save("ablation_contiguous.csv", &curves_csv(&all));
    report
}

/// **Extension** — the collect-then-cluster hybrid: ratio versus prefix
/// fraction at the recommended size 13.
pub fn ablation_hybrid(ctx: &Ctx) -> String {
    let suite = ctx.suite();
    let subset: Vec<&SuiteEntry> = suite.iter().take(6).collect();
    let fractions = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0];
    let mut report = String::new();
    let mut csv = Csv::new(["trace", "prefix_fraction", "ratio"]);
    let _ = writeln!(
        report,
        "\n== Hybrid (collect-then-cluster): ratio vs prefix fraction at maxCS=13 =="
    );
    for e in &subset {
        let t = &e.trace;
        let matrix = CommMatrix::from_trace(t);
        let _ = write!(report, "{:<40}", e.name);
        for &f in &fractions {
            let r = StrategyKind::Hybrid { prefix_fraction: f }
                .ratio(t, &matrix, 13)
                .ratio;
            let _ = write!(report, " {r:>6.3}");
            csv.row([e.name.clone(), f.to_string(), format!("{r:.4}")]);
        }
        let _ = writeln!(report);
    }
    let _ = writeln!(
        report,
        "(fractions: {fractions:?} — small prefixes already recover most of the static\n\
         clustering's benefit; fraction 1.0 degenerates to full-width stamps throughout)"
    );
    ctx.save("ablation_hybrid.csv", &csv);
    report
}

/// **Extension** — process migration (the paper's future-work variant 2) on
/// drifting-affinity workloads, versus the frozen merge-based strategies.
pub fn ablation_migration(ctx: &Ctx) -> String {
    use cts_core::cluster::{Encoding, MigratingEngine};
    use cts_workloads::synthetic::DriftingAffinity;
    let (procs, groups, msgs) = if ctx.quick {
        (12u32, 3u32, 150u32)
    } else {
        (60, 6, 1500)
    };
    let mut report = String::new();
    let mut csv = Csv::new([
        "drift_fraction",
        "merge_1st_ratio",
        "merge_nth_ratio",
        "migrating_ratio",
        "migrations",
    ]);
    let _ = writeln!(
        report,
        "\n== Migration extension: drifting affinity (N={procs}, maxCS={}) ==\n\
         drift   merge-1st  merge-Nth(5)  migrating  (migrations)",
        (procs / groups) as usize + 2
    );
    let max_cs = (procs / groups) as usize + 2;
    for drift in [0.0, 0.2, 0.5, 0.8] {
        let t = DriftingAffinity {
            procs,
            groups,
            messages_per_phase: msgs,
            drift_fraction: drift,
        }
        .generate(55);
        let matrix = CommMatrix::from_trace(&t);
        let enc = Encoding::paper_default(t.num_processes(), max_cs);
        let m1 = StrategyKind::MergeOnFirst.ratio(&t, &matrix, max_cs).ratio;
        let mn = StrategyKind::MergeOnNth { threshold: 5.0 }
            .ratio(&t, &matrix, max_cs)
            .ratio;
        // Migration layered on merge-on-1st (threshold 0), so the only
        // difference from the m1 column is the ability to re-home processes.
        let mig = MigratingEngine::run(&t, max_cs, 0.0, 6);
        let mig_ratio = mig.space(enc).ratio;
        let _ = writeln!(
            report,
            "{drift:>5.2}  {m1:>9.3}  {mn:>12.3}  {mig_ratio:>9.3}  ({})",
            mig.num_migrations()
        );
        csv.row([
            drift.to_string(),
            format!("{m1:.4}"),
            format!("{mn:.4}"),
            format!("{mig_ratio:.4}"),
            mig.num_migrations().to_string(),
        ]);
    }
    let _ = writeln!(
        report,
        "(migration matters as drift grows: merge-based clusters are frozen by the first\n\
         phase, the migrating engine follows the processes to their new partners)"
    );
    ctx.save("ablation_migration.csv", &csv);
    report
}

/// **Extension** — hierarchy depth: one explicit cluster level (the paper's
/// two-level structure) versus two (a three-level structure), on large
/// computations. Deeper hierarchies turn full-width cluster receives into
/// mid-width projections.
pub fn ablation_hierarchy(ctx: &Ctx) -> String {
    use cts_core::cluster::Encoding;
    use cts_core::hierarchy::HierarchicalTimestamps;
    let suite = ctx.suite();
    // The biggest computations benefit most; take the largest few.
    let mut entries: Vec<&SuiteEntry> = suite.iter().collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.trace.num_processes()));
    let picks: Vec<&SuiteEntry> = entries.into_iter().take(5).collect();
    let (c0, c1) = if ctx.quick { (4, 8) } else { (13, 60) };
    let mut report = String::new();
    let mut csv = Csv::new([
        "trace",
        "n",
        "flat_ratio",
        "deep_ratio",
        "flat_top_receives",
        "deep_top_receives",
    ]);
    let _ = writeln!(
        report,
        "\n== Hierarchy depth: caps [{c0}] vs [{c0},{c1}] (actual-element ratios) ==\n\
         trace                                    N    flat    deep   top-CRs flat→deep"
    );
    for e in picks {
        let t = &e.trace;
        let enc = Encoding::Actual {
            n: t.num_processes() as usize,
        };
        let flat = HierarchicalTimestamps::build_greedy(t, &[c0]);
        let deep = HierarchicalTimestamps::build_greedy(t, &[c0, c1]);
        let (rf, rd) = (flat.ratio(enc), deep.ratio(enc));
        let tf = *flat.receives_by_level().last().unwrap();
        let td = *deep.receives_by_level().last().unwrap();
        let _ = writeln!(
            report,
            "{:<40} {:>4}  {:>6.3}  {:>6.3}   {:>6} → {}",
            e.name,
            t.num_processes(),
            rf,
            rd,
            tf,
            td
        );
        csv.row([
            e.name.clone(),
            t.num_processes().to_string(),
            format!("{rf:.4}"),
            format!("{rd:.4}"),
            tf.to_string(),
            td.to_string(),
        ]);
    }
    let _ = writeln!(
        report,
        "(the extra level demotes full-width receives to mid-level projections; the\n\
         paper explores two levels and defers deeper hierarchies — this is them)"
    );
    ctx.save("ablation_hierarchy.csv", &csv);
    report
}

/// Run everything, in experiment-index order.
pub fn run_all(ctx: &Ctx) -> String {
    let mut out = String::new();
    out.push_str(&fig4(ctx));
    out.push_str(&fig5(ctx));
    out.push_str(&claims(ctx));
    out.push_str(&motivation(ctx));
    out.push_str(&related_work(ctx));
    out.push_str(&ablation_clustering(ctx));
    out.push_str(&ablation_contiguous(ctx));
    out.push_str(&ablation_hybrid(ctx));
    out.push_str(&ablation_migration(ctx));
    out.push_str(&ablation_hierarchy(ctx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx(tag: &str) -> Ctx {
        Ctx {
            out_dir: std::env::temp_dir().join(format!("cts-fig-test-{tag}")),
            workers: 2,
            quick: true,
        }
    }

    #[test]
    fn fig4_quick_produces_curves_and_csv() {
        let ctx = quick_ctx("fig4");
        let report = fig4(&ctx);
        assert!(report.contains("Figure 4"));
        assert!(ctx.out_dir.join("fig4.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }

    #[test]
    fn claims_quick_runs() {
        let ctx = quick_ctx("claims");
        let report = claims(&ctx);
        assert!(report.contains("C1"));
        assert!(report.contains("C4"));
        assert!(ctx.out_dir.join("suite_sweeps.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }

    #[test]
    fn motivation_quick_runs() {
        let ctx = quick_ctx("motivation");
        let report = motivation(&ctx);
        assert!(report.contains("M1"));
        assert!(report.contains("element ops per precedence query"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }

    #[test]
    fn related_and_ablations_quick_run() {
        let ctx = quick_ctx("rest");
        assert!(related_work(&ctx).contains("R1"));
        assert!(ablation_clustering(&ctx).contains("A1"));
        assert!(ablation_contiguous(&ctx).contains("A2"));
        assert!(ablation_hybrid(&ctx).contains("Hybrid"));
        assert!(ablation_migration(&ctx).contains("Migration"));
        assert!(ablation_hierarchy(&ctx).contains("Hierarchy"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
