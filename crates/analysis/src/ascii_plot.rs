//! Minimal terminal line plots for ratio curves — enough to eyeball the
//! shape of Figures 4 and 5 without leaving the terminal.

/// One named series of `(x, y)` points.
pub struct Series<'a> {
    pub name: &'a str,
    pub points: Vec<(f64, f64)>,
}

/// Render series onto a character grid. The y-axis is anchored at 0 (ratio
/// plots), the x-axis spans the data.
pub fn render(series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4);
    let markers = ['*', '+', 'o', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return "(no data)\n".into();
    }
    let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_max = all.iter().map(|p| p.1).fold(0.0f64, f64::max).max(1e-9);
    let x_span = (x_max - x_min).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let m = markers[si % markers.len()];
        for &(x, y) in &s.points {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - (y / y_max).clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[row][col.min(width - 1)] = m;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{:>8.3} ┐\n", y_max));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == height - 1 {
            format!("{:>8.3} ┴", 0.0)
        } else {
            "         │".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          {:<10.0}{:>width$.0}\n",
        x_min,
        x_max,
        width = width - 10
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "          {} {}\n",
            markers[si % markers.len()],
            s.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let s = vec![
            Series {
                name: "alpha",
                points: (0..20).map(|i| (i as f64, 0.1 + 0.01 * i as f64)).collect(),
            },
            Series {
                name: "beta",
                points: (0..20).map(|i| (i as f64, 0.4)).collect(),
            },
        ];
        let out = render(&s, 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('+'));
        assert!(out.contains("alpha"));
        assert!(out.contains("beta"));
        assert!(out.lines().count() >= 12);
    }

    #[test]
    fn empty_series_is_graceful() {
        let out = render(
            &[Series {
                name: "none",
                points: vec![],
            }],
            40,
            10,
        );
        assert!(out.contains("no data"));
    }

    #[test]
    #[should_panic]
    fn tiny_canvas_rejected() {
        render(&[], 4, 2);
    }
}
