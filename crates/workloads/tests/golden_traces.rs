//! Golden tests pinning the suite's generated traces.
//!
//! The standard suite stands in for the paper's corpus of captured
//! computations; its scientific value rests on being *replayable*. These
//! tests freeze (a) the first events of one computation per workload family
//! (SPMD, web, DCE, synthetic) and (b) per-family aggregate shapes, so any
//! change to the PRNG, the seed expansion, or a generator's draw sequence
//! that silently alters the corpus fails loudly. If a change here is
//! *intentional*, regenerate the constants with
//! `cargo test -p cts-workloads --test golden_traces -- --nocapture dump`
//! (the `dump_golden` test prints the current values).

use cts_model::{Event, EventKind};
use cts_workloads::dce::PoddedThreeTier;
use cts_workloads::drift::{PhaseShiftStencil, RebalancedWebTiers};
use cts_workloads::spmd::BlockedStencil1D;
use cts_workloads::synthetic::PlantedClusters;
use cts_workloads::web::ShardedWebServer;
use cts_workloads::Workload;

/// One representative per family, with the exact parameters and seed the
/// standard suite uses for its first entry of that family.
fn family_reps() -> Vec<(&'static str, Box<dyn Workload>, u64)> {
    vec![
        (
            "spmd",
            Box::new(BlockedStencil1D {
                procs: 64,
                iters: 12,
                block: 8,
            }),
            1,
        ),
        (
            "web",
            Box::new(ShardedWebServer {
                shards: 8,
                clients_per_shard: 6,
                workers_per_shard: 3,
                requests: 700,
                affinity: 0.9,
                redirect: 0.28,
            }),
            19,
        ),
        (
            "dce",
            Box::new(PoddedThreeTier {
                pods: 10,
                clients_per_pod: 4,
                transactions: 400,
                failover: 0.15,
            }),
            31,
        ),
        (
            "synthetic",
            Box::new(PlantedClusters {
                procs: 60,
                groups: 6,
                messages: 1200,
                p_intra: 0.95,
            }),
            43,
        ),
    ]
}

/// Compact, stable rendering of an event: `P<p>#<i>:<kind>`.
fn fmt_event(e: &Event) -> String {
    let kind = match e.kind {
        EventKind::Internal => "i".to_string(),
        EventKind::Send { to } => format!("s>{}", to.0),
        EventKind::Receive { from } => format!("r<{}#{}", from.process.0, from.index.0),
        EventKind::Sync { peer } => format!("y~{}#{}", peer.process.0, peer.index.0),
    };
    format!("P{}#{}:{}", e.process().0, e.index().0, kind)
}

fn first_events(w: &dyn Workload, seed: u64, n: usize) -> (String, usize, Vec<String>) {
    let t = w.generate(seed);
    let head = t.events().iter().take(n).map(fmt_event).collect();
    (t.name().to_string(), t.num_events(), head)
}

/// Run with `-- --nocapture dump` to print the constants below.
#[test]
fn dump_golden() {
    for (family, w, seed) in family_reps() {
        let (name, total, head) = first_events(w.as_ref(), seed, 10);
        println!("(\"{family}\", \"{name}\", {total}, &{head:?}),");
    }
    let suite = cts_workloads::suite::standard_suite();
    let total: usize = suite.iter().map(|e| e.trace.num_events()).sum();
    let msgs: usize = suite.iter().map(|e| e.trace.num_messages()).sum();
    let syncs: usize = suite.iter().map(|e| e.trace.num_sync_pairs()).sum();
    println!("suite totals: events {total}, messages {msgs}, sync pairs {syncs}");
}

/// Whole-corpus canary: the event/message/sync totals over all 54 standard
/// suite computations. Any draw-sequence change anywhere in any generator
/// moves at least one of these.
#[test]
fn golden_suite_totals() {
    let suite = cts_workloads::suite::standard_suite();
    assert_eq!(suite.len(), 54);
    let total: usize = suite.iter().map(|e| e.trace.num_events()).sum();
    let msgs: usize = suite.iter().map(|e| e.trace.num_messages()).sum();
    let syncs: usize = suite.iter().map(|e| e.trace.num_sync_pairs()).sum();
    assert_eq!((total, msgs, syncs), (338_320, 140_634, 16_100));
}

#[test]
fn golden_first_events_per_family() {
    #[rustfmt::skip]
    let expected: &[(&str, &str, usize, &[&str])] = &[
        // (family, trace name, total events, first 10 events)
        ("spmd", "pvm/blocked-stencil1d-64x12b8", 9504, &["P0#1:s>1", "P1#1:s>0", "P0#2:s>1", "P1#2:s>0", "P1#3:s>2", "P2#1:s>1", "P1#4:s>2", "P2#2:s>1", "P2#3:s>3", "P3#1:s>2"]),
        ("web", "web/sharded-8x(c6w3)r700", 7000, &["P0#1:s>6", "P6#1:r<0#1", "P6#2:s>9", "P9#1:r<6#2", "P9#2:s>10", "P10#1:r<9#2", "P10#2:s>9", "P9#3:r<10#2", "P9#4:s>0", "P0#2:r<9#4"]),
        ("dce", "dce/podded-three-tier-10x(c4)t400", 4000, &["P0#1:i", "P0#2:y~4#1", "P4#1:y~0#2", "P4#2:y~5#1", "P5#1:y~4#2", "P5#2:i", "P5#3:y~4#3", "P4#3:y~5#3", "P4#4:y~0#3", "P0#3:y~4#4"]),
        ("synthetic", "synthetic/planted-60g6i95", 2400, &["P21#1:s>39", "P39#1:r<21#1", "P48#1:s>24", "P24#1:r<48#1", "P10#1:s>22", "P22#1:r<10#1", "P42#1:s>54", "P54#1:r<42#1", "P57#1:s>33", "P33#1:r<57#1"]),
    ];
    for ((family, w, seed), (e_family, e_name, e_total, e_head)) in
        family_reps().into_iter().zip(expected)
    {
        assert_eq!(family, *e_family);
        let (name, total, head) = first_events(w.as_ref(), seed, e_head.len());
        assert_eq!(name, *e_name, "{family}: trace name changed");
        assert_eq!(total, *e_total, "{family}: event count changed");
        let head_ref: Vec<&str> = head.iter().map(String::as_str).collect();
        assert_eq!(head_ref, *e_head, "{family}: first events changed");
    }
}

/// The planted-drift fixtures used by the adaptive re-clustering tests and
/// the `--drift` soak (PR 9). One trace per family, pinning the event
/// count, the planted drift-epoch positions, and the first events — a
/// generator edit that moves a plant breaks the drift tests' premises, so
/// it must fail here first.
#[test]
fn golden_drift_families() {
    let stencil = PhaseShiftStencil {
        procs: 32,
        phases: 4,
        iters_per_phase: 6,
        block: 8,
    };
    let tiers = RebalancedWebTiers {
        clients: 12,
        frontends: 6,
        backends: 6,
        requests: 600,
        phases: 3,
    };
    #[rustfmt::skip]
    let expected: &[(&str, usize, &[u64], &[&str])] = &[
        ("drift/phase-stencil-32p4x6b8", 2304, &[576, 1152, 1728], &["P0#1:s>1", "P1#1:s>2", "P2#1:s>3", "P3#1:s>4", "P4#1:s>5", "P5#1:s>6", "P6#1:s>7", "P7#1:s>0", "P8#1:s>9", "P9#1:s>10"]),
        ("drift/rebalanced-tiers-c12f6b6r600p3", 4800, &[1600, 3200], &["P0#1:s>12", "P12#1:r<0#1", "P12#2:s>18", "P18#1:r<12#2", "P18#2:s>12", "P12#3:r<18#2", "P12#4:s>0", "P0#2:r<12#4", "P1#1:s>13", "P13#1:r<1#1"]),
    ];
    let reps: Vec<(Box<dyn Workload>, Vec<u64>)> = vec![
        (Box::new(stencil), stencil.drift_points()),
        (Box::new(tiers), tiers.drift_points()),
    ];
    for ((w, points), (e_name, e_total, e_points, e_head)) in reps.into_iter().zip(expected) {
        let (name, total, head) = first_events(w.as_ref(), 1, e_head.len());
        assert_eq!(name, *e_name, "drift trace name changed");
        assert_eq!(total, *e_total, "{name}: event count changed");
        assert_eq!(points, *e_points, "{name}: planted drift positions moved");
        let head_ref: Vec<&str> = head.iter().map(String::as_str).collect();
        assert_eq!(head_ref, *e_head, "{name}: first events changed");
        assert!(
            (*e_points).iter().all(|&pt| pt < total as u64),
            "{name}: a drift plant lies past the end of the trace"
        );
    }
}
