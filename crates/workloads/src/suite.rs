//! The standard 54-computation suite: this repository's stand-in for the
//! paper's corpus of "more than 50 different parallel and distributed
//! computations … including Java, PVM and DCE, with up to 300 processes".
//!
//! Entries are deterministic (fixed parameters and seeds), span process
//! counts from 56 to 300 (always comfortably above the maxCS sweep limit of 50, so the sweep can never trivially swallow a computation into one cluster — see DESIGN.md), and cover the same structural classes as the
//! paper's corpus: SPMD nearest-neighbour and scatter-gather (PVM), web-like
//! hub patterns (Java), synchronous business RPC (DCE), plus explicit
//! locality extremes the original corpus only contained implicitly.

use crate::dce::{AllSync, BusinessWorkflow, PoddedThreeTier};
use crate::spmd::{
    BlockedStencil1D, Butterfly, ConvoyRing, CowichanPhases, RowMajorStencil2D, StagedPipeline,
    TeamScatterGather, TreeAllreduce,
};
use crate::synthetic::{Hierarchy, Hotspot, PlantedClusters, UniformRandom};
use crate::web::{Microservices, ShardedWebServer, WebServer};
use crate::Workload;
use cts_model::Trace;

/// Which of the paper's three environments (plus our explicit synthetic
/// class) a computation belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Env {
    Pvm,
    Java,
    Dce,
    Synthetic,
}

/// One computation of the suite.
pub struct SuiteEntry {
    pub name: String,
    pub env: Env,
    pub trace: Trace,
}

fn entry(env: Env, w: &dyn Workload, seed: u64) -> SuiteEntry {
    let trace = w.generate(seed);
    SuiteEntry {
        name: trace.name().to_string(),
        env,
        trace,
    }
}

/// The full 54-computation standard suite. Deterministic; ~400k events
/// total; generation takes well under a second.
pub fn standard_suite() -> Vec<SuiteEntry> {
    use Env::*;

    // ---- PVM / SPMD (18) ----
    let mut v = vec![entry(
        Pvm,
        &BlockedStencil1D {
            procs: 64,
            iters: 12,
            block: 8,
        },
        1,
    )];
    v.push(entry(
        Pvm,
        &BlockedStencil1D {
            procs: 96,
            iters: 8,
            block: 12,
        },
        2,
    ));
    v.push(entry(
        Pvm,
        &BlockedStencil1D {
            procs: 128,
            iters: 6,
            block: 8,
        },
        3,
    ));
    v.push(entry(
        Pvm,
        &RowMajorStencil2D {
            rows: 8,
            cols: 8,
            iters: 8,
        },
        4,
    ));
    v.push(entry(
        Pvm,
        &RowMajorStencil2D {
            rows: 10,
            cols: 10,
            iters: 6,
        },
        5,
    ));
    v.push(entry(
        Pvm,
        &RowMajorStencil2D {
            rows: 12,
            cols: 12,
            iters: 4,
        },
        6,
    ));
    v.push(entry(
        Pvm,
        &ConvoyRing {
            procs: 60,
            rounds: 25,
            convoy: 6,
        },
        7,
    ));
    v.push(entry(
        Pvm,
        &ConvoyRing {
            procs: 96,
            rounds: 15,
            convoy: 8,
        },
        8,
    ));
    v.push(entry(
        Pvm,
        &TeamScatterGather {
            teams: 8,
            workers_per_team: 10,
            rounds: 16,
            work: 2,
        },
        9,
    ));
    v.push(entry(
        Pvm,
        &TeamScatterGather {
            teams: 12,
            workers_per_team: 10,
            rounds: 10,
            work: 1,
        },
        10,
    ));
    v.push(entry(
        Pvm,
        &BlockedStencil1D {
            procs: 72,
            iters: 10,
            block: 9,
        },
        11,
    ));
    v.push(entry(
        Pvm,
        &TreeAllreduce {
            procs: 127,
            iters: 10,
        },
        12,
    ));
    v.push(entry(
        Pvm,
        &Butterfly {
            log2_procs: 6,
            iters: 8,
        },
        13,
    ));
    v.push(entry(
        Pvm,
        &RowMajorStencil2D {
            rows: 12,
            cols: 8,
            iters: 6,
        },
        14,
    ));
    v.push(entry(
        Pvm,
        &StagedPipeline {
            stages: 60,
            items: 40,
            group: 6,
        },
        15,
    ));
    v.push(entry(
        Pvm,
        &StagedPipeline {
            stages: 96,
            items: 24,
            group: 8,
        },
        16,
    ));
    v.push(entry(
        Pvm,
        &CowichanPhases {
            procs: 64,
            repeats: 5,
        },
        17,
    ));
    v.push(entry(
        Pvm,
        &CowichanPhases {
            procs: 96,
            repeats: 3,
        },
        18,
    ));

    // ---- Java / web-like (12) ----
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 8,
            clients_per_shard: 6,
            workers_per_shard: 3,
            requests: 700,
            affinity: 0.9,
            redirect: 0.28,
        },
        19,
    ));
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 12,
            clients_per_shard: 4,
            workers_per_shard: 2,
            requests: 860,
            affinity: 0.8,
            redirect: 0.30,
        },
        20,
    ));
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 8,
            clients_per_shard: 6,
            workers_per_shard: 3,
            requests: 800,
            affinity: 0.7,
            redirect: 0.22,
        },
        21,
    ));
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 16,
            clients_per_shard: 4,
            workers_per_shard: 3,
            requests: 1000,
            affinity: 0.95,
            redirect: 0.20,
        },
        22,
    ));
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 10,
            clients_per_shard: 5,
            workers_per_shard: 2,
            requests: 900,
            affinity: 0.6,
            redirect: 0.25,
        },
        23,
    ));
    v.push(entry(
        Java,
        &ShardedWebServer {
            shards: 24,
            clients_per_shard: 6,
            workers_per_shard: 4,
            requests: 1100,
            affinity: 0.85,
            redirect: 0.25,
        },
        24,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![8, 16, 32],
            requests: 90,
            fanout: 2,
        },
        25,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![12, 24, 48],
            requests: 70,
            fanout: 2,
        },
        26,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![16, 32, 64],
            requests: 60,
            fanout: 2,
        },
        27,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![4, 8, 16, 32],
            requests: 60,
            fanout: 2,
        },
        28,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![10, 20, 40],
            requests: 90,
            fanout: 3,
        },
        29,
    ));
    v.push(entry(
        Java,
        &Microservices {
            tiers: vec![20, 40, 80],
            requests: 50,
            fanout: 2,
        },
        30,
    ));

    // ---- DCE / business RPC (9) ----
    v.push(entry(
        Dce,
        &PoddedThreeTier {
            pods: 10,
            clients_per_pod: 4,
            transactions: 400,
            failover: 0.15,
        },
        31,
    ));
    v.push(entry(
        Dce,
        &PoddedThreeTier {
            pods: 16,
            clients_per_pod: 4,
            transactions: 450,
            failover: 0.12,
        },
        32,
    ));
    v.push(entry(
        Dce,
        &PoddedThreeTier {
            pods: 16,
            clients_per_pod: 3,
            transactions: 500,
            failover: 0.20,
        },
        33,
    ));
    v.push(entry(
        Dce,
        &PoddedThreeTier {
            pods: 25,
            clients_per_pod: 4,
            transactions: 500,
            failover: 0.20,
        },
        34,
    ));
    v.push(entry(
        Dce,
        &PoddedThreeTier {
            pods: 50,
            clients_per_pod: 4,
            transactions: 600,
            failover: 0.15,
        },
        35,
    ));
    v.push(entry(
        Dce,
        &BusinessWorkflow {
            offices: 8,
            staff: 10,
            cases: 200,
        },
        36,
    ));
    v.push(entry(
        Dce,
        &BusinessWorkflow {
            offices: 12,
            staff: 11,
            cases: 220,
        },
        37,
    ));
    v.push(entry(
        Dce,
        &BusinessWorkflow {
            offices: 20,
            staff: 6,
            cases: 300,
        },
        38,
    ));
    v.push(entry(
        Dce,
        &AllSync {
            procs: 60,
            communications: 800,
            partners: 6,
        },
        39,
    ));

    // ---- Synthetic locality extremes (15) ----
    v.push(entry(
        Synthetic,
        &UniformRandom {
            procs: 64,
            messages: 1200,
        },
        40,
    ));
    v.push(entry(
        Synthetic,
        &UniformRandom {
            procs: 96,
            messages: 1800,
        },
        41,
    ));
    v.push(entry(
        Synthetic,
        &UniformRandom {
            procs: 128,
            messages: 2500,
        },
        42,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 60,
            groups: 6,
            messages: 1200,
            p_intra: 0.95,
        },
        43,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 96,
            groups: 12,
            messages: 2000,
            p_intra: 0.9,
        },
        44,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 120,
            groups: 10,
            messages: 2400,
            p_intra: 0.8,
        },
        45,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 72,
            groups: 6,
            messages: 1500,
            p_intra: 0.6,
        },
        46,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 144,
            groups: 12,
            messages: 2600,
            p_intra: 0.99,
        },
        47,
    ));
    v.push(entry(
        Synthetic,
        &PlantedClusters {
            procs: 288,
            groups: 24,
            messages: 3600,
            p_intra: 0.9,
        },
        48,
    ));
    v.push(entry(
        Synthetic,
        &Hotspot {
            procs: 64,
            rounds: 15,
        },
        49,
    ));
    v.push(entry(
        Synthetic,
        &Hotspot {
            procs: 100,
            rounds: 12,
        },
        50,
    ));
    v.push(entry(
        Synthetic,
        &Hierarchy {
            procs: 63,
            branching: 3,
            messages: 1200,
        },
        51,
    ));
    v.push(entry(
        Synthetic,
        &Hierarchy {
            procs: 121,
            branching: 3,
            messages: 1800,
        },
        52,
    ));
    v.push(entry(
        Synthetic,
        &Hierarchy {
            procs: 85,
            branching: 4,
            messages: 1400,
        },
        53,
    ));
    v.push(entry(
        Synthetic,
        &Hierarchy {
            procs: 259,
            branching: 6,
            messages: 2600,
        },
        54,
    ));

    v
}

/// A reduced suite (small process/event counts) for unit and property tests
/// where the full suite would be needlessly slow in debug builds.
pub fn mini_suite() -> Vec<SuiteEntry> {
    use Env::*;
    vec![
        entry(
            Pvm,
            &BlockedStencil1D {
                procs: 8,
                iters: 3,
                block: 4,
            },
            1,
        ),
        entry(
            Pvm,
            &RowMajorStencil2D {
                rows: 3,
                cols: 3,
                iters: 2,
            },
            2,
        ),
        entry(
            Pvm,
            &TeamScatterGather {
                teams: 2,
                workers_per_team: 3,
                rounds: 4,
                work: 1,
            },
            3,
        ),
        entry(Pvm, &TreeAllreduce { procs: 7, iters: 3 }, 4),
        entry(
            Java,
            &WebServer {
                clients: 4,
                workers: 3,
                requests: 30,
                affinity: 0.8,
            },
            5,
        ),
        entry(
            Java,
            &Microservices {
                tiers: vec![2, 4],
                requests: 12,
                fanout: 2,
            },
            6,
        ),
        entry(
            Dce,
            &PoddedThreeTier {
                pods: 2,
                clients_per_pod: 2,
                transactions: 20,
                failover: 0.1,
            },
            7,
        ),
        entry(
            Dce,
            &AllSync {
                procs: 8,
                communications: 40,
                partners: 2,
            },
            8,
        ),
        entry(
            Synthetic,
            &UniformRandom {
                procs: 10,
                messages: 60,
            },
            9,
        ),
        entry(
            Synthetic,
            &PlantedClusters {
                procs: 12,
                groups: 3,
                messages: 80,
                p_intra: 0.9,
            },
            10,
        ),
        entry(
            Synthetic,
            &Hotspot {
                procs: 9,
                rounds: 4,
            },
            11,
        ),
        entry(
            Synthetic,
            &Hierarchy {
                procs: 13,
                branching: 3,
                messages: 70,
            },
            12,
        ),
    ]
}

/// The two sample computations shown in Figures 4 and 5. The paper's lower
/// panels come from a smooth, locality-rich SPMD run; the upper panels are
/// its observed worst case, a large hub-dominated computation where the
/// static algorithm can trail merge-on-1st by a few percent.
pub fn figure_pair() -> (Trace, Trace) {
    let worst = ShardedWebServer {
        shards: 10,
        clients_per_shard: 3,
        workers_per_shard: 1,
        requests: 900,
        affinity: 0.45,
        redirect: 0.35,
    }
    .generate(23);
    let smooth = RowMajorStencil2D {
        rows: 10,
        cols: 10,
        iters: 8,
    }
    .generate(5);
    (worst, smooth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_54_unique_entries() {
        let s = standard_suite();
        assert_eq!(s.len(), 54);
        let names: HashSet<_> = s.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), 54, "duplicate names in suite");
    }

    #[test]
    fn suite_spans_the_papers_scale() {
        let s = standard_suite();
        let max_n = s.iter().map(|e| e.trace.num_processes()).max().unwrap();
        let min_n = s.iter().map(|e| e.trace.num_processes()).min().unwrap();
        assert_eq!(max_n, 300, "largest computation should have 300 processes");
        assert!(
            min_n >= 56,
            "suite computations must exceed the maxCS sweep range (got {min_n})"
        );
        for e in &s {
            assert!(e.trace.num_events() > 100, "{} too small", e.name);
            assert!(
                e.trace.num_events() < 40_000,
                "{} too large for the sweep harness",
                e.name
            );
        }
    }

    #[test]
    fn suite_covers_all_environments() {
        let s = standard_suite();
        for env in [Env::Pvm, Env::Java, Env::Dce, Env::Synthetic] {
            assert!(s.iter().filter(|e| e.env == env).count() >= 9);
        }
    }

    #[test]
    fn mini_suite_is_small() {
        for e in mini_suite() {
            assert!(e.trace.num_events() < 1_500, "{}", e.name);
            assert!(e.trace.num_processes() <= 16);
        }
    }

    #[test]
    fn figure_pair_shapes() {
        let (worst, smooth) = figure_pair();
        assert_eq!(smooth.num_processes(), 100);
        assert_eq!(worst.num_processes(), 60);
        assert!(worst.num_events() > 1000);
    }
}
