//! Web-like applications: the paper's Java corpus was "web-like
//! applications, including various web-server executions". Hub-and-spoke
//! locality with moderate randomness.

use crate::{rng, Workload};
use cts_model::{ProcessId, Trace, TraceBuilder};
use cts_util::prng::Rng;

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// An acceptor/worker-pool web server with a shared backend.
///
/// Process layout: `[clients… | acceptor | workers… | backend]`. Each request:
/// client → acceptor → worker → backend → worker → client. With probability
/// `affinity` a client's request is dispatched to the same worker as its
/// previous one (session affinity), which is what gives the computation its
/// communication locality.
#[derive(Clone, Copy, Debug)]
pub struct WebServer {
    pub clients: u32,
    pub workers: u32,
    /// Total requests issued (spread round-robin over clients).
    pub requests: u32,
    /// Probability of reusing the client's previous worker.
    pub affinity: f64,
}

impl WebServer {
    fn acceptor(&self) -> u32 {
        self.clients
    }
    fn worker(&self, w: u32) -> u32 {
        self.clients + 1 + w
    }
    fn backend(&self) -> u32 {
        self.clients + 1 + self.workers
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.clients + self.workers + 2
    }
}

impl Workload for WebServer {
    fn name(&self) -> String {
        format!(
            "web/server-c{}w{}r{}a{:02}",
            self.clients,
            self.workers,
            self.requests,
            (self.affinity * 100.0) as u32
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.clients >= 1 && self.workers >= 1);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        let mut last_worker: Vec<Option<u32>> = vec![None; self.clients as usize];
        for req in 0..self.requests {
            let client = req % self.clients;
            // client -> acceptor
            let t1 = b.send(p(client), p(self.acceptor())).unwrap();
            b.receive(p(self.acceptor()), t1).unwrap();
            // acceptor dispatches, honouring session affinity
            let w = match last_worker[client as usize] {
                Some(w) if r.gen_bool(self.affinity) => w,
                _ => r.gen_range(0..self.workers),
            };
            last_worker[client as usize] = Some(w);
            let t2 = b.send(p(self.acceptor()), p(self.worker(w))).unwrap();
            b.receive(p(self.worker(w)), t2).unwrap();
            b.internal(p(self.worker(w))).unwrap();
            // worker <-> backend
            let t3 = b.send(p(self.worker(w)), p(self.backend())).unwrap();
            b.receive(p(self.backend()), t3).unwrap();
            let t4 = b.send(p(self.backend()), p(self.worker(w))).unwrap();
            b.receive(p(self.worker(w)), t4).unwrap();
            // worker -> client (response)
            let t5 = b.send(p(self.worker(w)), p(client)).unwrap();
            b.receive(p(client), t5).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Tiered microservices: requests enter tier 0 and fan out to services in
/// deeper tiers, with responses flowing back. Call targets are sticky per
/// (caller, tier) pair, giving layered locality.
#[derive(Clone, Debug)]
pub struct Microservices {
    /// Service count per tier, e.g. `[4, 8, 16]`.
    pub tiers: Vec<u32>,
    pub requests: u32,
    /// Downstream calls per request per hop.
    pub fanout: u32,
}

impl Microservices {
    fn base(&self, tier: usize) -> u32 {
        self.tiers[..tier].iter().sum()
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.tiers.iter().sum()
    }
}

impl Workload for Microservices {
    fn name(&self) -> String {
        let shape: Vec<String> = self.tiers.iter().map(u32::to_string).collect();
        format!("web/micro-{}-r{}", shape.join("_"), self.requests)
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.tiers.len() >= 2, "need at least two tiers");
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        // Sticky downstream choice per (service, slot).
        let mut sticky: std::collections::HashMap<(u32, u32), u32> = Default::default();
        for req in 0..self.requests {
            let entry = self.base(0) + (req % self.tiers[0]);
            // Depth-first call chain with per-hop fanout 1..=fanout.
            let mut stack = vec![(entry, 0usize)];
            let mut returns: Vec<(u32, u32)> = Vec::new(); // (callee, caller)
            while let Some((svc, tier)) = stack.pop() {
                b.internal(p(svc)).unwrap();
                if tier + 1 < self.tiers.len() {
                    let calls = 1 + (r.gen_range(0..self.fanout.max(1)));
                    for slot in 0..calls {
                        let next = *sticky.entry((svc, slot)).or_insert_with(|| {
                            self.base(tier + 1) + r.gen_range(0..self.tiers[tier + 1])
                        });
                        let tok = b.send(p(svc), p(next)).unwrap();
                        b.receive(p(next), tok).unwrap();
                        stack.push((next, tier + 1));
                        returns.push((next, svc));
                    }
                }
            }
            // Responses bubble back (reverse call order).
            for (callee, caller) in returns.into_iter().rev() {
                let tok = b.send(p(callee), p(caller)).unwrap();
                b.receive(p(caller), tok).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::comm::CommGraph;
    use cts_model::stats::TraceStats;

    #[test]
    fn webserver_message_count() {
        let w = WebServer {
            clients: 3,
            workers: 2,
            requests: 12,
            affinity: 0.9,
        };
        let t = w.generate(7);
        // 5 messages per request.
        assert_eq!(t.num_messages(), 12 * 5);
        assert_eq!(t.num_processes(), w.procs());
    }

    #[test]
    fn webserver_affinity_raises_locality() {
        let sticky = WebServer {
            clients: 6,
            workers: 6,
            requests: 120,
            affinity: 0.95,
        };
        let diffuse = WebServer {
            affinity: 0.0,
            ..sticky
        };
        let ls = TraceStats::compute(&sticky.generate(1)).locality_top3;
        let ld = TraceStats::compute(&diffuse.generate(1)).locality_top3;
        assert!(
            ls >= ld,
            "affinity should concentrate communication: {ls} vs {ld}"
        );
    }

    #[test]
    fn webserver_hub_is_the_acceptor() {
        let w = WebServer {
            clients: 4,
            workers: 3,
            requests: 40,
            affinity: 0.5,
        };
        let t = w.generate(3);
        let g = CommGraph::from_trace(&t);
        // The acceptor hears from every client and talks to every worker.
        assert_eq!(g.degree(ProcessId(w.acceptor())), (4 + 3) as usize);
    }

    #[test]
    fn microservices_partition_by_tier() {
        let w = Microservices {
            tiers: vec![2, 3, 4],
            requests: 10,
            fanout: 2,
        };
        let t = w.generate(11);
        assert_eq!(t.num_processes(), 9);
        assert!(t.num_messages() > 0);
        // Calls only cross adjacent tiers.
        let m = cts_model::comm::CommMatrix::from_trace(&t);
        assert_eq!(m.count(ProcessId(0), ProcessId(1)), 0); // same tier
        assert_eq!(m.count(ProcessId(0), ProcessId(5)), 0); // tier 0 -> 2
    }

    #[test]
    fn microservices_deterministic() {
        let w = Microservices {
            tiers: vec![2, 2],
            requests: 5,
            fanout: 1,
        };
        assert_eq!(w.generate(5).events(), w.generate(5).events());
    }
}

/// A sharded web service: each shard has its own acceptor, worker pool and
/// backend, with clients bound to a shard (the deployment shape of a scaled
/// web tier). A small fraction of requests are redirected cross-shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardedWebServer {
    pub shards: u32,
    pub clients_per_shard: u32,
    pub workers_per_shard: u32,
    /// Total requests, round-robin over all clients.
    pub requests: u32,
    /// Session affinity to the previous worker, within the shard.
    pub affinity: f64,
    /// Probability a request is redirected to another shard's acceptor.
    pub redirect: f64,
}

impl ShardedWebServer {
    fn shard_size(&self) -> u32 {
        self.clients_per_shard + self.workers_per_shard + 2
    }
    fn client(&self, s: u32, c: u32) -> u32 {
        s * self.shard_size() + c
    }
    fn acceptor(&self, s: u32) -> u32 {
        s * self.shard_size() + self.clients_per_shard
    }
    fn worker(&self, s: u32, w: u32) -> u32 {
        s * self.shard_size() + self.clients_per_shard + 1 + w
    }
    fn backend(&self, s: u32) -> u32 {
        s * self.shard_size() + self.clients_per_shard + 1 + self.workers_per_shard
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.shards * self.shard_size()
    }
}

impl Workload for ShardedWebServer {
    fn name(&self) -> String {
        format!(
            "web/sharded-{}x(c{}w{})r{}",
            self.shards, self.clients_per_shard, self.workers_per_shard, self.requests
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.shards >= 2 && self.clients_per_shard >= 1 && self.workers_per_shard >= 1);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        let total_clients = self.shards * self.clients_per_shard;
        let mut last_worker: Vec<Option<u32>> = vec![None; total_clients as usize];
        for req in 0..self.requests {
            let flat = req % total_clients;
            let home = flat / self.clients_per_shard;
            let c = self.client(home, flat % self.clients_per_shard);
            // Occasionally the request lands on a foreign shard.
            let s = if r.gen_bool(self.redirect) {
                (home + 1 + r.gen_range(0..self.shards - 1)) % self.shards
            } else {
                home
            };
            let t1 = b.send(p(c), p(self.acceptor(s))).unwrap();
            b.receive(p(self.acceptor(s)), t1).unwrap();
            let w = match last_worker[flat as usize] {
                Some(w) if s == home && r.gen_bool(self.affinity) => w,
                _ => r.gen_range(0..self.workers_per_shard),
            };
            if s == home {
                last_worker[flat as usize] = Some(w);
            }
            let t2 = b.send(p(self.acceptor(s)), p(self.worker(s, w))).unwrap();
            b.receive(p(self.worker(s, w)), t2).unwrap();
            let t3 = b.send(p(self.worker(s, w)), p(self.backend(s))).unwrap();
            b.receive(p(self.backend(s)), t3).unwrap();
            let t4 = b.send(p(self.backend(s)), p(self.worker(s, w))).unwrap();
            b.receive(p(self.worker(s, w)), t4).unwrap();
            let t5 = b.send(p(self.worker(s, w)), p(c)).unwrap();
            b.receive(p(c), t5).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use cts_model::comm::CommMatrix;
    use cts_model::ProcessId;

    #[test]
    fn shards_are_mostly_isolated() {
        let w = ShardedWebServer {
            shards: 3,
            clients_per_shard: 3,
            workers_per_shard: 2,
            requests: 180,
            affinity: 0.9,
            redirect: 0.0,
        };
        let t = w.generate(7);
        assert_eq!(t.num_processes(), 21);
        let m = CommMatrix::from_trace(&t);
        // With zero redirects, shard 0's client never reaches shard 1's
        // acceptor.
        assert_eq!(
            m.count(ProcessId(w.client(0, 0)), ProcessId(w.acceptor(1))),
            0
        );
        // Its own acceptor, it does.
        assert!(m.count(ProcessId(w.client(0, 0)), ProcessId(w.acceptor(0))) > 0);
    }

    #[test]
    fn redirects_bridge_shards() {
        let w = ShardedWebServer {
            shards: 2,
            clients_per_shard: 2,
            workers_per_shard: 2,
            requests: 300,
            affinity: 0.5,
            redirect: 0.3,
        };
        let t = w.generate(9);
        let m = CommMatrix::from_trace(&t);
        let cross: u64 = (0..2u32)
            .map(|c| m.count(ProcessId(w.client(0, c)), ProcessId(w.acceptor(1))))
            .sum();
        assert!(cross > 0, "expected some redirected requests");
    }

    #[test]
    fn deterministic() {
        let w = ShardedWebServer {
            shards: 2,
            clients_per_shard: 2,
            workers_per_shard: 1,
            requests: 40,
            affinity: 0.8,
            redirect: 0.1,
        };
        assert_eq!(w.generate(1).events(), w.generate(1).events());
    }
}
