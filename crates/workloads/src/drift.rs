//! Planted-drift workloads: traces whose communication locality *changes
//! mid-computation* at known positions.
//!
//! The paper's corpus is (implicitly) stationary — each computation keeps
//! one communication structure for its whole life, which is what lets a
//! merge-once dynamic strategy lock clusters in early and never regret it.
//! Real long-running systems re-block their data decomposition between
//! solver phases and re-balance request routing between service tiers, so
//! the partner a process talks to most is a function of *time*. These
//! generators plant exactly that: a first-phase locality the adaptive
//! engine will happily cluster, then one or more announced phase changes
//! that make the planted clustering wrong.
//!
//! Every family exposes `drift_points()` — the exact event-count positions
//! (0-based offsets into the delivery order) where the planted structure
//! changes. Tests use them to check the drift detector reacts *after* a
//! plant and not before, and the golden tests pin them alongside the event
//! counts so a generator edit cannot silently move the plants.

use crate::Workload;
use cts_model::{ProcessId, Trace, TraceBuilder};

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// Phase-change SPMD: a blocked ring exchange whose blocking is re-offset
/// every phase.
///
/// Within a phase, process `i` belongs to the block `(i + offset) / block`
/// (offset = `phase * block / 2`, wrapping) and each iteration sends one
/// message around its block's ring, then computes. Re-blocking by half a
/// block each phase means every process's ring neighbours change at every
/// phase boundary — the planted drift a static or merge-once clustering
/// cannot follow.
///
/// Events per iteration: `2n` message halves + `n` internals; a phase is
/// `iters_per_phase` iterations, so drift is planted every
/// `3 * procs * iters_per_phase` events.
#[derive(Clone, Copy, Debug)]
pub struct PhaseShiftStencil {
    pub procs: u32,
    pub phases: u32,
    pub iters_per_phase: u32,
    /// Block size; must divide `procs` and be >= 2.
    pub block: u32,
}

impl PhaseShiftStencil {
    /// Ring successor of `i` under the blocking of `phase`.
    fn ring_next(&self, i: u32, phase: u32) -> u32 {
        let n = self.procs;
        let off = (phase * self.block / 2) % n;
        // Position in the shifted space; blocks tile that space exactly.
        let shifted = (i + off) % n;
        let base = shifted - shifted % self.block;
        let next_shifted = base + (shifted + 1 - base) % self.block;
        (next_shifted + n - off) % n
    }

    /// 0-based event offsets of the phase boundaries (one per phase change,
    /// so `phases - 1` entries).
    pub fn drift_points(&self) -> Vec<u64> {
        let per_phase = 3 * self.procs as u64 * self.iters_per_phase as u64;
        (1..self.phases as u64).map(|ph| ph * per_phase).collect()
    }
}

impl Workload for PhaseShiftStencil {
    fn name(&self) -> String {
        format!(
            "drift/phase-stencil-{}p{}x{}b{}",
            self.procs, self.phases, self.iters_per_phase, self.block
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(
            self.block >= 2 && n.is_multiple_of(self.block),
            "block must tile procs"
        );
        let mut b = TraceBuilder::new(n);
        for ph in 0..self.phases {
            for _ in 0..self.iters_per_phase {
                let mut tokens = Vec::new();
                for i in 0..n {
                    let dst = self.ring_next(i, ph);
                    tokens.push((dst, b.send(p(i), p(dst)).unwrap()));
                }
                for (dst, tok) in tokens {
                    b.receive(p(dst), tok).unwrap();
                }
                for i in 0..n {
                    b.internal(p(i)).unwrap();
                }
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Re-balancing web tiers: clients call frontends, frontends call backends
/// — and the frontend→backend routing table is rotated at every phase
/// boundary, as an autoscaler re-balancing the backend pool would.
///
/// Processes are laid out `[clients | frontends | backends]`. Each request
/// is exactly 8 events (client→frontend, frontend→backend, and the two
/// replies, each a send + receive). Client `c` always calls frontend
/// `c % frontends`; in phase `k`, frontend `f` calls backend
/// `(f + k) % backends`. The client↔frontend edges are stationary (the
/// clusters worth keeping), the frontend↔backend edges drift (the
/// migrations worth making).
#[derive(Clone, Copy, Debug)]
pub struct RebalancedWebTiers {
    pub clients: u32,
    pub frontends: u32,
    pub backends: u32,
    /// Total requests, round-robin over the clients.
    pub requests: u32,
    /// Routing phases; requests split into `phases` equal segments.
    pub phases: u32,
}

impl RebalancedWebTiers {
    pub fn procs(&self) -> u32 {
        self.clients + self.frontends + self.backends
    }
    fn frontend(&self, f: u32) -> u32 {
        self.clients + f
    }
    fn backend(&self, bk: u32) -> u32 {
        self.clients + self.frontends + bk
    }
    fn requests_per_phase(&self) -> u32 {
        self.requests / self.phases
    }

    /// 0-based event offsets of the routing changes (`phases - 1` entries;
    /// each request is exactly 8 events).
    pub fn drift_points(&self) -> Vec<u64> {
        let per_phase = 8 * self.requests_per_phase() as u64;
        (1..self.phases as u64).map(|ph| ph * per_phase).collect()
    }
}

impl Workload for RebalancedWebTiers {
    fn name(&self) -> String {
        format!(
            "drift/rebalanced-tiers-c{}f{}b{}r{}p{}",
            self.clients, self.frontends, self.backends, self.requests, self.phases
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        assert!(self.clients >= 1 && self.frontends >= 1 && self.backends >= 2);
        assert!(self.phases >= 1 && self.requests.is_multiple_of(self.phases));
        let mut b = TraceBuilder::new(self.procs());
        let rpp = self.requests_per_phase();
        for r in 0..self.requests {
            let phase = r / rpp;
            let c = r % self.clients;
            let f = self.frontend(c % self.frontends);
            let bk = self.backend((c % self.frontends + phase) % self.backends);
            let t1 = b.send(p(c), p(f)).unwrap();
            b.receive(p(f), t1).unwrap();
            let t2 = b.send(p(f), p(bk)).unwrap();
            b.receive(p(bk), t2).unwrap();
            let t3 = b.send(p(bk), p(f)).unwrap();
            b.receive(p(f), t3).unwrap();
            let t4 = b.send(p(f), p(c)).unwrap();
            b.receive(p(c), t4).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_shift_ring_stays_within_shifted_block() {
        let w = PhaseShiftStencil {
            procs: 8,
            phases: 3,
            iters_per_phase: 2,
            block: 4,
        };
        // Phase 0 blocks: {0..3} {4..7}; the ring never crosses them.
        for i in 0..8 {
            let nxt = w.ring_next(i, 0);
            assert_eq!(i / 4, nxt / 4, "phase-0 ring crossed a block: {i}->{nxt}");
        }
        // Phase 1 is offset by 2: {6,7,0,1} {2,3,4,5} — process 1's
        // successor wraps to 6, which phase 0 never produced.
        assert_eq!(w.ring_next(1, 1), 6);
    }

    #[test]
    fn drift_points_match_generated_lengths() {
        let s = PhaseShiftStencil {
            procs: 8,
            phases: 3,
            iters_per_phase: 2,
            block: 4,
        };
        let t = s.generate(1);
        assert_eq!(t.num_events() as u64, 3 * 8 * 2 * 3);
        assert_eq!(s.drift_points(), vec![48, 96]);
        let w = RebalancedWebTiers {
            clients: 4,
            frontends: 2,
            backends: 3,
            requests: 12,
            phases: 3,
        };
        let t = w.generate(1);
        assert_eq!(t.num_events() as u64, 8 * 12);
        assert_eq!(w.drift_points(), vec![32, 64]);
        assert!(t.num_events() as u64 > *w.drift_points().last().unwrap());
    }

    #[test]
    fn rebalanced_tiers_routing_changes_exactly_at_plants() {
        let w = RebalancedWebTiers {
            clients: 2,
            frontends: 2,
            backends: 4,
            requests: 8,
            phases: 2,
        };
        let t = w.generate(7);
        // The backend targeted by frontend 0 differs across the plant.
        let backend_of = |req: usize| {
            // Event layout: request r occupies events [8r, 8r+8); the
            // backend receive is the 4th event of the request.
            match t.events()[8 * req + 3].kind {
                cts_model::EventKind::Receive { .. } => t.events()[8 * req + 3].process().0,
                _ => unreachable!("request layout changed"),
            }
        };
        assert_eq!(backend_of(0), w.backend(0));
        assert_eq!(backend_of(4), w.backend(1));
    }
}
